"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of the simulator with one clause
while still distinguishing configuration mistakes from invariant
violations detected at run time.
The hierarchy spans every layer of the paper reproduction (Sections 2-5).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The simulation entered a state that violates the system model."""


class UnknownHostError(SimulationError):
    """A message or operation referenced a host id that does not exist."""


class NotConnectedError(SimulationError):
    """An operation required a connected mobile host but it was not."""


class MutualExclusionViolation(SimulationError):
    """Two processes were observed inside the critical region at once."""


class FairnessViolation(SimulationError):
    """An ordering guarantee of a mutual exclusion algorithm was broken."""


class ProtocolError(SimulationError):
    """A protocol message arrived that the receiving state cannot accept."""


class InvariantViolationError(SimulationError):
    """An online invariant monitor observed at least one violation."""


class PerfGateError(ReproError):
    """A perf scenario exceeded one of its resource gates (RSS growth
    or retained allocations) -- see :mod:`repro.perf.harness`."""
