"""System-level message kinds and payloads of the mobility protocol.

The join/leave(r)/disconnect/reconnect vocabulary of the paper's Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

MOBILITY_SCOPE = "mobility"

KIND_LEAVE = "sys.leave"
KIND_JOIN = "sys.join"
KIND_DISCONNECT = "sys.disconnect"
KIND_RECONNECT = "sys.reconnect"
KIND_HANDOFF_REQUEST = "sys.handoff_request"
KIND_HANDOFF_REPLY = "sys.handoff_reply"
KIND_FIND_DISCONNECT_QUERY = "sys.find_disconnect_query"
KIND_FIND_DISCONNECT_REPLY = "sys.find_disconnect_reply"


@dataclass(frozen=True)
class LeavePayload:
    """``leave(r)``: the last downlink sequence number received."""

    mh_id: str
    last_received_seq: int


@dataclass(frozen=True)
class JoinPayload:
    """``join(mh_id)``, optionally naming the previous MSS for handoff."""

    mh_id: str
    prev_mss_id: Optional[str]


@dataclass(frozen=True)
class DisconnectPayload:
    """``disconnect(r)``: like leave, but sets the disconnected flag."""

    mh_id: str
    last_received_seq: int


@dataclass(frozen=True)
class ReconnectPayload:
    """``reconnect(mh_id, prev_mss_id)``.

    ``prev_mss_id`` may be ``None`` when the MH cannot remember where it
    disconnected; the new MSS must then query every fixed host.
    """

    mh_id: str
    prev_mss_id: Optional[str]


@dataclass(frozen=True)
class HandoffRequest:
    """New MSS asks the previous MSS for the MH's algorithm state."""

    mh_id: str
    new_mss_id: str
    clearing_disconnect: bool = False


@dataclass(frozen=True)
class HandoffReply:
    """Previous MSS hands over per-protocol state for the MH."""

    mh_id: str
    state: Dict[str, object] = field(default_factory=dict)
    was_disconnected: bool = False


@dataclass(frozen=True)
class FindDisconnectQuery:
    """Broadcast query: 'did MH disconnect in your cell?'."""

    mh_id: str
    reply_to: str


@dataclass(frozen=True)
class FindDisconnectReply:
    """Positive answer to :class:`FindDisconnectQuery`."""

    mh_id: str
    mss_id: str
