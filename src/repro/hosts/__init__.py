"""Host entities (substrate S6): mobile hosts and support stations.

The classes here implement the mobility protocol of Section 2 verbatim:

* ``leave(r)`` -- a departing MH reports the sequence number of the last
  message received on the MSS->MH channel and then neither sends nor
  receives in the old cell;
* ``join(mh_id, prev_mss_id)`` -- an arriving MH identifies itself and
  (when the algorithm needs handoff) names its previous MSS;
* *handoff* -- the new MSS pulls algorithm-specific per-MH state from
  the previous MSS;
* ``disconnect(r)`` / ``reconnect(mh_id, prev_mss_id)`` -- like a move,
  except the old MSS keeps a "disconnected" flag for the MH and answers
  searches with the disconnected status until the flag is cleared by the
  reconnect handoff.  A MH that cannot name its previous MSS forces the
  new MSS to query every fixed host.
"""

from repro.hosts.base import Host
from repro.hosts.mh import HostState, MobileHost
from repro.hosts.mss import HandoffParticipant, MobileSupportStation

__all__ = [
    "HandoffParticipant",
    "Host",
    "HostState",
    "MobileHost",
    "MobileSupportStation",
]
