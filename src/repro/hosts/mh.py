"""The mobile host: lifecycle, doze mode, wireless sending helpers.

The MH side of the paper's Section 2 mobility protocol.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.errors import NotConnectedError, SimulationError
from repro.hosts.base import Host
from repro.hosts.system import (
    DisconnectPayload,
    JoinPayload,
    KIND_DISCONNECT,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_RECONNECT,
    LeavePayload,
    MOBILITY_SCOPE,
    ReconnectPayload,
)
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class HostState(str, Enum):
    """Lifecycle states of a mobile host."""

    CONNECTED = "connected"
    IN_TRANSIT = "in_transit"
    DISCONNECTED = "disconnected"


class MobileHost(Host):
    """A host that can move between cells while retaining its identity.

    The MH implements its side of the Section 2 mobility protocol:
    it announces departures with ``leave(r)``, arrivals with
    ``join(mh_id, prev_mss_id)``, and voluntary disconnections with
    ``disconnect(r)`` / ``reconnect(...)``.  While in transit or
    disconnected it neither sends nor receives (enforced by the
    network's delivery checks).

    Doze mode is orthogonal to connectivity: a dozing MH still receives
    messages, but each delivery is counted as a *doze interruption* --
    the quantity the paper's R1-vs-R2 comparison argues about.
    """

    def __init__(self, host_id: str, network: "Network") -> None:
        super().__init__(host_id, network)
        self.state = HostState.DISCONNECTED
        self.current_mss_id: Optional[str] = None
        #: MSS of the cell where this MH disconnected (valid while
        #: :attr:`state` is DISCONNECTED).
        self.disconnect_mss_id: Optional[str] = None
        #: incremented on every (re)attachment; lets the network drop
        #: in-flight downlink messages from a previous residence.
        self.session = 0
        #: last downlink sequence number received in the current cell --
        #: the ``r`` reported by ``leave(r)`` / ``disconnect(r)``.
        self.last_received_seq = 0
        self.dozing = False
        self.doze_interruptions = 0
        self.moves_completed = 0
        #: ``True`` while detached because the serving MSS crashed (set
        #: by :meth:`orphan`, cleared on reconnect).
        self.orphaned = False
        #: ``True`` while this host itself is down (set by :meth:`crash`,
        #: cleared by :meth:`recover`).
        self.crashed = False
        #: MSS of the cell most recently left, valid while IN_TRANSIT --
        #: the only station that can vouch for a host that dies mid-move.
        self._transit_prev_mss_id: Optional[str] = None
        self._attach_listeners: list = []

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------

    @property
    def is_connected(self) -> bool:
        return self.state is HostState.CONNECTED

    @property
    def is_disconnected(self) -> bool:
        return self.state is HostState.DISCONNECTED

    @property
    def in_transit(self) -> bool:
        return self.state is HostState.IN_TRANSIT

    # ------------------------------------------------------------------
    # Attachment and movement
    # ------------------------------------------------------------------

    def add_attach_listener(self, listener) -> None:
        """Invoke ``listener()`` each time this MH (re)attaches to a
        cell -- after a move's join or after a reconnect.  Protocol
        clients use this to flush work deferred while detached (e.g. the
        L2 ``release_resource`` a disconnected holder owes)."""
        self._attach_listeners.append(listener)

    def _notify_attached(self) -> None:
        for listener in self._attach_listeners:
            listener()

    def attach_initial(self, mss_id: str) -> None:
        """Place the MH in its first cell at simulation setup.

        Bypasses the join message exchange: initial placement is part of
        constructing the system, not of its execution.
        """
        if self.state is not HostState.DISCONNECTED or self.session != 0:
            raise SimulationError(
                f"{self.host_id}: attach_initial after lifecycle started"
            )
        mss = self.network.mss(mss_id)
        self.session += 1
        self.state = HostState.CONNECTED
        self.current_mss_id = mss_id
        self.last_received_seq = 0
        mss.admit_initial(self.host_id)
        self.network.notify_mh_joined(self.host_id, mss_id)

    def move_to(self, new_mss_id: str) -> None:
        """Leave the current cell and join ``new_mss_id`` after transit.

        Sends ``leave(r)`` on the uplink, transitions to IN_TRANSIT (no
        sending or receiving), and schedules the ``join`` at the new MSS
        after the configured transit time.
        """
        if not self.is_connected:
            raise NotConnectedError(
                f"{self.host_id} cannot move while {self.state.value}"
            )
        self.network.mss(new_mss_id)  # validate destination exists
        trace = self.network._trace
        if trace.enabled:
            appender = self.network._batch_mh_leave
            if appender is not None:
                leave_id = appender(
                    MOBILITY_SCOPE, self.host_id, self.current_mss_id,
                    None, None,
                    {"r": self.last_received_seq, "to": new_mss_id},
                )
            else:
                leave_id = trace.emit(
                    "mh.leave",
                    scope=MOBILITY_SCOPE,
                    src=self.host_id,
                    dst=self.current_mss_id,
                    r=self.last_received_seq,
                    to=new_mss_id,
                )
            # Inline trace.context(leave_id): moves are hot enough for
            # the context-object allocation to show up in profiles.
            stack = trace._stack
            stack.append(leave_id)
            try:
                self._send_system(
                    KIND_LEAVE,
                    LeavePayload(self.host_id, self.last_received_seq),
                )
            finally:
                stack.pop()
        else:
            self._send_system(
                KIND_LEAVE,
                LeavePayload(self.host_id, self.last_received_seq),
            )
        prev_mss_id = self.current_mss_id
        self.state = HostState.IN_TRANSIT
        self.current_mss_id = None
        self._transit_prev_mss_id = prev_mss_id
        self.network.scheduler.schedule(
            self.network.config.transit_time,
            self._arrive,
            new_mss_id,
            prev_mss_id,
        )

    def _arrive(self, new_mss_id: str, prev_mss_id: Optional[str]) -> None:
        if self.crashed:
            # The host died mid-transit; the join it was carrying dies
            # with it.  Recovery goes through crash()/recover() instead.
            return
        if self.network.is_mss_crashed(new_mss_id):
            # The destination cell went dark during transit: its join
            # message would vanish, leaving the MH invisible forever.
            # Keep moving to the nearest live cell instead.
            self.network.metrics.record_fault("mh.rerouted_join")
            rerouted = self.network.next_alive_mss(new_mss_id)
            self.network.scheduler.schedule(
                self.network.config.transit_time,
                self._arrive,
                rerouted if rerouted is not None else new_mss_id,
                prev_mss_id,
            )
            return
        self.session += 1
        self.state = HostState.CONNECTED
        self.current_mss_id = new_mss_id
        self._transit_prev_mss_id = None
        self.last_received_seq = 0
        self.moves_completed += 1
        trace = self.network._trace
        if trace.enabled:
            appender = self.network._batch_mh_join
            if appender is not None:
                join_id = appender(
                    MOBILITY_SCOPE, self.host_id, new_mss_id,
                    None, None, {"prev": prev_mss_id},
                )
            else:
                join_id = trace.emit(
                    "mh.join",
                    scope=MOBILITY_SCOPE,
                    src=self.host_id,
                    dst=new_mss_id,
                    prev=prev_mss_id,
                )
            stack = trace._stack
            stack.append(join_id)
            try:
                self._send_system(
                    KIND_JOIN, JoinPayload(self.host_id, prev_mss_id)
                )
                self._notify_attached()
            finally:
                stack.pop()
        else:
            self._send_system(
                KIND_JOIN, JoinPayload(self.host_id, prev_mss_id)
            )
            self._notify_attached()

    def disconnect(self) -> None:
        """Voluntarily detach: ``disconnect(r)`` to the local MSS."""
        if not self.is_connected:
            raise NotConnectedError(
                f"{self.host_id} cannot disconnect while {self.state.value}"
            )
        trace = self.network._trace
        if trace.enabled:
            disc_id = trace.emit(
                "mh.disconnect",
                scope=MOBILITY_SCOPE,
                src=self.host_id,
                dst=self.current_mss_id,
                r=self.last_received_seq,
            )
            with trace.context(disc_id):
                self._send_system(
                    KIND_DISCONNECT,
                    DisconnectPayload(self.host_id, self.last_received_seq),
                )
        else:
            self._send_system(
                KIND_DISCONNECT,
                DisconnectPayload(self.host_id, self.last_received_seq),
            )
        self.disconnect_mss_id = self.current_mss_id
        self.state = HostState.DISCONNECTED
        self.current_mss_id = None

    def orphan(self) -> None:
        """Detach silently because the serving MSS crashed.

        Unlike :meth:`disconnect`, no ``disconnect(r)`` message is sent
        (there is nobody to receive it) and no MSS records the
        disconnection.  The fault injector later drives the reconnect
        without a previous-MSS hint.  No-op unless currently connected.
        """
        if not self.is_connected:
            return
        if self.network._trace_on:
            self.network._trace.emit(
                "mh.orphaned",
                scope=MOBILITY_SCOPE,
                src=self.host_id,
                mss=self.current_mss_id,
            )
        self.disconnect_mss_id = self.current_mss_id
        self.state = HostState.DISCONNECTED
        self.current_mss_id = None
        self.orphaned = True

    def crash(self, amnesia: bool = False) -> None:
        """Kill this host: all volatile state is lost and the radio goes
        silent.

        No ``disconnect(r)`` is sent -- a dead host sends nothing -- but
        the serving cell notices the silence and records the MH as
        disconnected, exactly as Section 2's flag would after a voluntary
        disconnect.  That flag is what lets recovery reuse the ordinary
        reconnect machinery: a non-amnesiac host reconnects naming its
        old MSS (handoff pull); with ``amnesia=True`` it forgets even
        where it was and the new MSS falls back to the broadcast
        ``find_disconnect`` query.  A host that dies mid-transit is
        flagged at the cell it last left (the join in flight dies with
        it).  No-op if already crashed.
        """
        if self.crashed:
            return
        vouching_mss = (
            self.current_mss_id if self.is_connected
            else self._transit_prev_mss_id if self.in_transit
            else self.disconnect_mss_id
        )
        if self.network._trace_on:
            self.network._trace.emit(
                "mh.crash",
                scope=MOBILITY_SCOPE,
                src=self.host_id,
                mss=vouching_mss,
                amnesia=amnesia,
            )
        if vouching_mss is not None:
            self.network.mss(vouching_mss).note_mh_vanished(self.host_id)
        self.crashed = True
        self.state = HostState.DISCONNECTED
        self.current_mss_id = None
        self._transit_prev_mss_id = None
        self.orphaned = False
        #: invalidate every in-flight downlink toward the dead host.
        self.session += 1
        self.last_received_seq = 0
        self.disconnect_mss_id = None if amnesia else vouching_mss

    def recover(self, mss_id: str) -> None:
        """Bring a crashed host back up, reattaching at ``mss_id``.

        Recovery is just the Section 2 reconnect: with a remembered
        ``disconnect_mss_id`` the new MSS pulls handoff state directly;
        an amnesiac host reconnects without naming a previous MSS and
        the broadcast query finds its disconnect flag.
        """
        if not self.crashed:
            raise SimulationError(
                f"{self.host_id} cannot recover: not crashed"
            )
        self.crashed = False
        self.reconnect(mss_id, supply_prev=self.disconnect_mss_id is not None)

    def reconnect(self, mss_id: str, supply_prev: bool = True) -> None:
        """Reattach at ``mss_id``.

        When ``supply_prev`` is false the reconnect message omits the
        previous MSS id, forcing the new MSS to query every fixed host
        to find where the MH disconnected (Section 2).
        """
        if not self.is_disconnected:
            raise NotConnectedError(
                f"{self.host_id} cannot reconnect while {self.state.value}"
            )
        if self.crashed:
            raise NotConnectedError(
                f"{self.host_id} cannot reconnect while crashed"
            )
        self.network.mss(mss_id)  # validate destination exists
        if self.network.is_mss_crashed(mss_id):
            # Reconnecting into a dark cell would leave the MH believing
            # it is attached while no station serves it; pick the
            # nearest live cell instead.
            rerouted = self.network.next_alive_mss(mss_id)
            if rerouted is None:
                raise NotConnectedError(
                    f"{self.host_id} cannot reconnect: no MSS is alive"
                )
            self.network.metrics.record_fault("mh.rerouted_reconnect")
            mss_id = rerouted
        prev = self.disconnect_mss_id if supply_prev else None
        self.session += 1
        self.state = HostState.CONNECTED
        self.current_mss_id = mss_id
        self.last_received_seq = 0
        self.orphaned = False
        trace = self.network._trace
        if trace.enabled:
            rec_id = trace.emit(
                "mh.reconnect",
                scope=MOBILITY_SCOPE,
                src=self.host_id,
                dst=mss_id,
                prev=prev,
            )
            with trace.context(rec_id):
                self._send_system(
                    KIND_RECONNECT, ReconnectPayload(self.host_id, prev)
                )
                self._notify_attached()
        else:
            self._send_system(
                KIND_RECONNECT, ReconnectPayload(self.host_id, prev)
            )
            self._notify_attached()

    # ------------------------------------------------------------------
    # Doze mode
    # ------------------------------------------------------------------

    def doze(self) -> None:
        """Enter doze mode (reduced activity; deliveries count as
        interruptions)."""
        self.dozing = True

    def wake(self) -> None:
        """Leave doze mode."""
        self.dozing = False

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def send_to_mss(self, kind: str, payload: object, scope: str) -> None:
        """Send a protocol message to the current local MSS (uplink)."""
        if not self.is_connected:
            raise NotConnectedError(
                f"{self.host_id} cannot send while {self.state.value}"
            )
        message = Message(
            kind=kind,
            src=self.host_id,
            dst=self.current_mss_id,
            payload=payload,
            scope=scope,
        )
        self.network.send_wireless_up(self.host_id, message)

    def note_downlink_delivery(self, seq: Optional[int]) -> None:
        """Record the sequence number of a successfully received
        downlink message (called by the network)."""
        if seq is not None:
            self.last_received_seq = seq

    def handle_message(self, message: Message) -> None:
        if self.dozing:
            self.doze_interruptions += 1
        super().handle_message(message)

    def _send_system(self, kind: str, payload: object) -> None:
        # leave/disconnect go out while still attached; join/reconnect
        # right after the state flip -- in all four cases the MH counts
        # as connected, so the plain uplink applies.
        message = Message(
            kind=kind,
            src=self.host_id,
            dst=self.current_mss_id,
            payload=payload,
            scope=MOBILITY_SCOPE,
        )
        self.network.send_wireless_up(self.host_id, message)
