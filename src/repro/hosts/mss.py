"""The mobile support station: cell management and handoff.

The MSS side of the paper's Section 2 mobility protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.errors import ProtocolError
from repro.hosts.base import Host
from repro.hosts.system import (
    DisconnectPayload,
    FindDisconnectQuery,
    FindDisconnectReply,
    HandoffReply,
    HandoffRequest,
    JoinPayload,
    KIND_DISCONNECT,
    KIND_FIND_DISCONNECT_QUERY,
    KIND_FIND_DISCONNECT_REPLY,
    KIND_HANDOFF_REPLY,
    KIND_HANDOFF_REQUEST,
    KIND_JOIN,
    KIND_LEAVE,
    KIND_RECONNECT,
    LeavePayload,
    MOBILITY_SCOPE,
    ReconnectPayload,
)
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

JoinListener = Callable[[str, Optional[str]], None]
LeaveListener = Callable[[str], None]


class HandoffParticipant:
    """Interface for protocols that keep per-MH state at MSSs.

    When a MH moves (or reconnects), the new MSS pulls state from the
    previous one; each registered participant contributes its share
    under its own name.
    """

    #: unique name keying this participant's share of the handoff state.
    name = "participant"

    def handoff_state(self, mh_id: str) -> object:
        """State to transfer for ``mh_id`` (``None`` when there is none).

        Called at the *previous* MSS; the participant should drop its
        local copy when it returns state.
        """
        return None

    def install_handoff_state(self, mh_id: str, state: object) -> None:
        """Install transferred state at the *new* MSS."""


class MobileSupportStation(Host):
    """A fixed host serving one wireless cell.

    Maintains the list of local MHs, the per-MH "disconnected" flags of
    Section 2, and runs the handoff procedure when an arriving MH names
    its previous MSS.  Protocol objects subscribe to join/leave/
    disconnect events and register :class:`HandoffParticipant` shares.
    """

    def __init__(self, host_id: str, network: "Network") -> None:
        super().__init__(host_id, network)
        self.local_mhs: Set[str] = set()
        #: MHs that disconnected in this cell and have not reconnected.
        self.disconnected_mhs: Set[str] = set()
        #: set by the fault injector while this station is down; a
        #: crashed MSS neither receives nor transmits.
        self.crashed = False
        self._join_listeners: List[JoinListener] = []
        self._leave_listeners: List[LeaveListener] = []
        self._disconnect_listeners: List[LeaveListener] = []
        self._handoff_participants: Dict[str, HandoffParticipant] = {}
        self.register_handler(KIND_LEAVE, self._on_leave)
        self.register_handler(KIND_JOIN, self._on_join)
        self.register_handler(KIND_DISCONNECT, self._on_disconnect)
        self.register_handler(KIND_RECONNECT, self._on_reconnect)
        self.register_handler(KIND_HANDOFF_REQUEST, self._on_handoff_request)
        self.register_handler(KIND_HANDOFF_REPLY, self._on_handoff_reply)
        self.register_handler(
            KIND_FIND_DISCONNECT_QUERY, self._on_find_disconnect_query
        )
        self.register_handler(
            KIND_FIND_DISCONNECT_REPLY, self._on_find_disconnect_reply
        )

    def handle_message(self, message: Message) -> None:
        if self.crashed:
            # A crashed station consumes nothing: messages already in
            # flight toward it (wired or wireless) vanish on arrival.
            self.network.metrics.record_fault("msg.to_crashed_mss")
            if self.network._trace_on:
                self.network._trace.emit(
                    "fault.drop",
                    scope=message.scope,
                    src=message.src,
                    dst=self.host_id,
                    kind=message.kind,
                    parent=message.trace_id,
                    reason="msg.to_crashed_mss",
                )
            return
        super().handle_message(message)

    # ------------------------------------------------------------------
    # Protocol attachment points
    # ------------------------------------------------------------------

    def add_join_listener(self, listener: JoinListener) -> None:
        """Invoke ``listener(mh_id, prev_mss_id)`` after each join."""
        self._join_listeners.append(listener)

    def add_leave_listener(self, listener: LeaveListener) -> None:
        """Invoke ``listener(mh_id)`` after each leave."""
        self._leave_listeners.append(listener)

    def add_disconnect_listener(self, listener: LeaveListener) -> None:
        """Invoke ``listener(mh_id)`` after each local disconnect."""
        self._disconnect_listeners.append(listener)

    def add_handoff_participant(
        self, participant: HandoffParticipant
    ) -> None:
        """Register a protocol's share of per-MH handoff state."""
        if participant.name in self._handoff_participants:
            raise ProtocolError(
                f"{self.host_id}: handoff participant "
                f"{participant.name!r} already registered"
            )
        self._handoff_participants[participant.name] = participant

    # ------------------------------------------------------------------
    # Cell membership
    # ------------------------------------------------------------------

    def admit_initial(self, mh_id: str) -> None:
        """Admit a MH during simulation setup (no join message)."""
        self.local_mhs.add(mh_id)

    def is_local(self, mh_id: str) -> bool:
        """Whether ``mh_id`` is currently in this cell.

        Consults the population store for passive (array-backed) MHs,
        so protocols probing cell membership never force a promotion.
        """
        if mh_id in self.local_mhs:
            return True
        population = self.network.population
        return population is not None and population.passive_local(
            mh_id, self.host_id
        )

    def note_mh_vanished(self, mh_id: str) -> None:
        """The cell noticed ``mh_id`` go silent (the host crashed).

        Models the station's local liveness detection: no message is
        exchanged, but the MH is recorded as disconnected here so that a
        later reconnect -- direct or via the broadcast
        ``find_disconnect`` query -- finds the Section 2 flag.  A crashed
        station keeps no such state (its sets were already cleared).
        """
        if self.crashed:
            return
        self.local_mhs.discard(mh_id)
        self.disconnected_mhs.add(mh_id)
        for listener in self._disconnect_listeners:
            listener(mh_id)

    # ------------------------------------------------------------------
    # Sending helpers
    # ------------------------------------------------------------------

    def send_fixed(self, dst_mss_id: str, kind: str, payload: object,
                   scope: str) -> None:
        """Send a message to another MSS over the static network."""
        self.network.send_fixed(
            Message(
                kind=kind,
                src=self.host_id,
                dst=dst_mss_id,
                payload=payload,
                scope=scope,
            )
        )

    def send_to_local_mh(
        self, mh_id: str, kind: str, payload: object, scope: str
    ) -> None:
        """One wireless hop to a MH currently in this cell."""
        self.network.send_wireless_down(
            self.host_id,
            mh_id,
            Message(
                kind=kind,
                src=self.host_id,
                dst=mh_id,
                payload=payload,
                scope=scope,
            ),
        )

    def send_to_mh(
        self,
        mh_id: str,
        kind: str,
        payload: object,
        scope: str,
        on_delivered=None,
        on_disconnected=None,
    ) -> None:
        """Deliver to a MH wherever it is (search + forward + wireless)."""
        self.network.send_to_mh(
            self.host_id,
            mh_id,
            Message(
                kind=kind,
                src=self.host_id,
                dst=mh_id,
                payload=payload,
                scope=scope,
            ),
            on_delivered=on_delivered,
            on_disconnected=on_disconnected,
        )

    def broadcast_fixed(self, kind: str, payload: object, scope: str) -> None:
        """Send to every other MSS (M-1 fixed messages)."""
        for mss_id in self.network.mss_ids():
            if mss_id != self.host_id:
                self.send_fixed(mss_id, kind, payload, scope)

    # ------------------------------------------------------------------
    # Mobility protocol handlers
    # ------------------------------------------------------------------

    def _on_leave(self, message: Message) -> None:
        payload: LeavePayload = message.payload
        self.local_mhs.discard(payload.mh_id)
        for listener in self._leave_listeners:
            listener(payload.mh_id)

    def _on_join(self, message: Message) -> None:
        payload: JoinPayload = message.payload
        self.local_mhs.add(payload.mh_id)
        self.network.notify_mh_joined(payload.mh_id, self.host_id)
        if payload.prev_mss_id and payload.prev_mss_id != self.host_id:
            self.send_fixed(
                payload.prev_mss_id,
                KIND_HANDOFF_REQUEST,
                HandoffRequest(payload.mh_id, self.host_id),
                MOBILITY_SCOPE,
            )
        for listener in self._join_listeners:
            listener(payload.mh_id, payload.prev_mss_id)

    def _on_disconnect(self, message: Message) -> None:
        payload: DisconnectPayload = message.payload
        self.local_mhs.discard(payload.mh_id)
        self.disconnected_mhs.add(payload.mh_id)
        for listener in self._disconnect_listeners:
            listener(payload.mh_id)

    def _on_reconnect(self, message: Message) -> None:
        payload: ReconnectPayload = message.payload
        self.local_mhs.add(payload.mh_id)
        self.network.notify_mh_joined(payload.mh_id, self.host_id)
        if payload.prev_mss_id is not None:
            if payload.prev_mss_id == self.host_id:
                self.disconnected_mhs.discard(payload.mh_id)
            else:
                self.send_fixed(
                    payload.prev_mss_id,
                    KIND_HANDOFF_REQUEST,
                    HandoffRequest(
                        payload.mh_id, self.host_id,
                        clearing_disconnect=True,
                    ),
                    MOBILITY_SCOPE,
                )
        else:
            # The MH could not name its previous MSS: query every fixed
            # host to find the cell where it disconnected (Section 2).
            self.broadcast_fixed(
                KIND_FIND_DISCONNECT_QUERY,
                FindDisconnectQuery(payload.mh_id, self.host_id),
                MOBILITY_SCOPE,
            )
        for listener in self._join_listeners:
            listener(payload.mh_id, payload.prev_mss_id)

    def _on_handoff_request(self, message: Message) -> None:
        request: HandoffRequest = message.payload
        state = {}
        for name, participant in self._handoff_participants.items():
            share = participant.handoff_state(request.mh_id)
            if share is not None:
                state[name] = share
        was_disconnected = request.mh_id in self.disconnected_mhs
        self.disconnected_mhs.discard(request.mh_id)
        network = self.network
        if network._trace_on:
            appender = network._batch_mss_handoff
            gate = network._gate_mss_handoff
            if appender is not None:
                # Batched hub (never recording -- see call_site_batch):
                # no monitor consumes this site's detail payload, so
                # the row skips the mh_id/shares dict (and the sorted()
                # that would feed it) entirely.
                appender(MOBILITY_SCOPE, self.host_id,
                         request.new_mss_id)
            elif gate is not None:
                # Sampling hub: resolve the cadence inline so a skipped
                # handoff event costs two list ops (and skips the
                # sorted() below) instead of a full emit.
                counter = gate[0]
                c = counter[0] - 1
                due = c <= 0
                counter[0] = gate[1] if due else c
                if due:
                    network._trace.emit_gated(
                        "mss.handoff",
                        True,
                        scope=MOBILITY_SCOPE,
                        src=self.host_id,
                        dst=request.new_mss_id,
                        mh_id=request.mh_id,
                        shares=sorted(state),
                    )
            else:
                network._trace.emit(
                    "mss.handoff",
                    scope=MOBILITY_SCOPE,
                    src=self.host_id,
                    dst=request.new_mss_id,
                    mh_id=request.mh_id,
                    shares=sorted(state),
                )
        self.send_fixed(
            request.new_mss_id,
            KIND_HANDOFF_REPLY,
            HandoffReply(request.mh_id, state, was_disconnected),
            MOBILITY_SCOPE,
        )

    def _on_handoff_reply(self, message: Message) -> None:
        reply: HandoffReply = message.payload
        for name, share in reply.state.items():
            participant = self._handoff_participants.get(name)
            if participant is not None:
                participant.install_handoff_state(reply.mh_id, share)

    def _on_find_disconnect_query(self, message: Message) -> None:
        query: FindDisconnectQuery = message.payload
        if query.mh_id in self.disconnected_mhs:
            self.send_fixed(
                query.reply_to,
                KIND_FIND_DISCONNECT_REPLY,
                FindDisconnectReply(query.mh_id, self.host_id),
                MOBILITY_SCOPE,
            )

    def _on_find_disconnect_reply(self, message: Message) -> None:
        reply: FindDisconnectReply = message.payload
        self.send_fixed(
            reply.mss_id,
            KIND_HANDOFF_REQUEST,
            HandoffRequest(
                reply.mh_id, self.host_id, clearing_disconnect=True
            ),
            MOBILITY_SCOPE,
        )
