"""Base class shared by mobile hosts and support stations.

Both host roles of the paper's Section 2 model build on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.errors import ProtocolError, SimulationError
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

Handler = Callable[[Message], None]


class Host:
    """A named message-handling endpoint.

    Protocols attach behaviour by registering one handler per message
    kind; the host dispatches on exact kind match.  Kinds are namespaced
    by protocol (``"l2.request"``), so independent protocols can coexist
    on the same host without collisions.
    """

    def __init__(self, host_id: str, network: "Network") -> None:
        if not host_id:
            raise SimulationError("host_id must be a nonempty string")
        self.host_id = host_id
        self.network = network
        self._handlers: Dict[str, Handler] = {}

    def register_handler(self, kind: str, handler: Handler) -> None:
        """Register ``handler`` for messages of ``kind``.

        Re-registering a kind is an error: it almost always means two
        protocol instances were attached to the same host.
        """
        if kind in self._handlers:
            raise SimulationError(
                f"{self.host_id}: handler for {kind!r} already registered"
            )
        self._handlers[kind] = handler

    def unregister_handler(self, kind: str) -> None:
        """Remove the handler for ``kind`` (no-op if absent)."""
        self._handlers.pop(kind, None)

    def handle_message(self, message: Message) -> None:
        """Dispatch an arriving message to its registered handler.

        When tracing is enabled, a ``recv`` event (parented to the
        message's send event) is recorded and pushed as the causal
        context around the handler, so everything the handler does --
        sends, state changes -- traces back to this receipt.
        """
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise ProtocolError(
                f"{self.host_id}: no handler for message kind "
                f"{message.kind!r} (from {message.src})"
            )
        network = self.network
        trace = network._trace
        if trace.enabled:
            appender = network._batch_recv
            gate = network._gate_recv
            if appender is not None:
                # Batched hub: one ledger-row append instead of a full
                # emit (see MonitorHub.call_site_batch).
                recv_id = appender(
                    message.scope, message.src, self.host_id,
                    message.kind, message.trace_id,
                )
            elif gate is not None:
                # Sampling hub: resolve the cadence inline (see
                # MonitorHub.call_site_gate) so a skipped receive costs
                # two list ops instead of a full emit.
                counter = gate[0]
                c = counter[0] - 1
                if c > 0 and not (
                    gate[2] and message.kind.endswith(gate[2])
                ):
                    counter[0] = c
                    handler(message)
                    return
                due = c <= 0
                counter[0] = gate[1] if due else c
                recv_id = trace.emit_gated(
                    "recv",
                    due,
                    scope=message.scope,
                    src=message.src,
                    dst=self.host_id,
                    kind=message.kind,
                    parent=message.trace_id,
                )
            else:
                recv_id = trace.emit(
                    "recv",
                    scope=message.scope,
                    src=message.src,
                    dst=self.host_id,
                    kind=message.kind,
                    parent=message.trace_id,
                )
            # Inline trace.context(recv_id): the with-statement plus
            # context-object allocation is measurable at this call rate.
            stack = trace._stack
            stack.append(recv_id)
            try:
                handler(message)
            finally:
                stack.pop()
        else:
            handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.host_id})"
