"""Curated performance scenarios for the benchmark harness.

Each scenario is a self-contained, fully deterministic simulation run
mirroring one of the ``benchmarks/bench_*.py`` workloads.  Scenarios
return the number of scheduler events they processed; the harness
divides by wall time to get the events/sec figure every ``BENCH_*.json``
entry and the CI regression gate are built on.

Determinism matters twice here: repeated runs of one scenario must
process the *same* number of events (the harness asserts this, so a
perf run doubles as a substrate-determinism check), and optimizations
to the substrate must never change the count (wall time is the only
thing allowed to move).
Includes the resource-gated scale scenarios of ROADMAP item 2 (docs/scaling.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.facade import Simulation
from repro.faults import FaultPlan, LinkFault, MhCrash
from repro.metrics import CostModel
from repro.mobility import UniformMobility
from repro.mutex import CriticalResource, L2Mutex
from repro.net import ConstantLatency, NetworkConfig
from repro.net.messages import Message
from repro.sim import PoissonProcess, Scheduler, make_scheduler
from repro.workload import MutexWorkload

#: cost model shared by every scenario (same as ``benchmarks/conftest``).
COSTS = CostModel(c_fixed=1.0, c_wireless=5.0, c_search=10.0)


def _make_sim(n_mss: int, n_mh: int, seed: int, **kwargs) -> Simulation:
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    return Simulation(
        n_mss=n_mss,
        n_mh=n_mh,
        seed=seed,
        cost_model=COSTS,
        config=config,
        **kwargs,
    )


def loaded_system(n_mss: int, n_mh: int, duration: float = 150.0,
                  request_rate: float = 0.05, move_rate: float = 0.02,
                  monitors=None, scheduler: str = "heap",
                  monitor_sampling=None, monitor_mode: str = "event",
                  capture_timing: bool = False) -> int:
    """The ``bench_scale.py`` workload: L2 mutex traffic plus mobility.

    This is the harness's headline scenario (at M=10, N=200): a system
    saturated with mutual-exclusion requests while every MH wanders,
    exercising the fixed-network send path, the wireless cell, the
    scheduler, and the metrics counters together.  With ``monitors``
    set, the same workload runs under the online invariant monitors
    (which must not change the event count -- only the wall time), so
    the harness prices the monitoring overhead directly --
    ``monitor_mode="batched"`` prices the ledger/drain pipeline the
    same way.  ``capture_timing`` additionally instruments the network
    send paths and publishes the per-subsystem wall-time split for the
    harness to attach to the BENCH record (costs a ``perf_counter``
    pair per message, so only ``smoke_ledger`` opts in).
    """
    sim = _make_sim(n_mss, n_mh, seed=3, monitors=monitors,
                    scheduler=scheduler, monitor_sampling=monitor_sampling,
                    monitor_mode=monitor_mode)
    if capture_timing:
        from repro.obs import instrument_network
        from repro.obs.timing import publish_run

        timers = (sim.monitor_hub.timers if sim.monitor_hub is not None
                  else None)
        if timers is None:  # pragma: no cover - timing needs monitors
            raise ValueError("capture_timing requires monitors")
        instrument_network(sim.network, timers)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=request_rate,
                             rng=random.Random(4))
    mobility = UniformMobility(sim.network, sim.mh_ids, move_rate,
                               rng=random.Random(5))
    sim.run(until=duration)
    workload.stop()
    mobility.stop()
    sim.drain()
    resource.assert_no_overlap()
    sim.assert_invariants()
    if capture_timing:
        publish_run(sim.monitor_hub.timers.snapshot())
    return sim.scheduler.events_processed


def search_messaging(n_mss: int, n_mh: int, duration: float = 120.0,
                     rate: float = 0.4) -> int:
    """Broadcast-search ``send_to_mh`` traffic with mobility.

    Mirrors the location-strategy benches (``bench_a1`` /
    ``bench_e7``): MSSs keep sending application messages to moving
    MHs, so every delivery pays a search, a forward, and a wireless
    hop -- the paper's C_search / C_wireless tradeoff as a hot loop.
    """
    sim = _make_sim(n_mss, n_mh, seed=11, search="broadcast")
    rng = random.Random(13)
    delivered = [0]
    for i in range(n_mh):
        sim.mh(i).register_handler("app.ping", lambda msg: None)

    def send_one() -> None:
        src = sim.mss_id(rng.randrange(n_mss))
        dst = sim.mh_id(rng.randrange(n_mh))
        message = Message(src=src, dst=dst, kind="app.ping",
                          scope="perf", payload=None)
        sim.network.send_to_mh(
            src, dst, message,
            on_delivered=lambda _m: delivered.__setitem__(0, delivered[0] + 1),
        )

    driver = PoissonProcess(sim.scheduler, rate, send_one,
                            rng=random.Random(17))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.02,
                               rng=random.Random(19))
    sim.run(until=duration)
    driver.stop()
    mobility.stop()
    sim.drain()
    if delivered[0] == 0:
        raise AssertionError("search_messaging delivered nothing")
    return sim.scheduler.events_processed


def reliable_churn(n_mss: int, n_mh: int, duration: float = 120.0) -> int:
    """Lossy fixed links under the reliable transport (``bench_a8``'s
    regime, minus crashes): every send arms a retransmit timer that an
    ack later cancels, making this the cancellation-heavy workload the
    scheduler's lazy-deletion path is optimized for."""
    plan = FaultPlan(
        link_faults=(LinkFault(drop=0.05),),
        seed=23,
        reliable=True,
        retransmit_timeout=4.0,
    )
    sim = _make_sim(n_mss, n_mh, seed=29)
    from repro.faults import apply_fault_plan

    apply_fault_plan(sim.network, plan)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.05, rng=random.Random(31))
    sim.run(until=duration)
    workload.stop()
    sim.drain()
    return sim.scheduler.events_processed


def recovery_churn(n_mss: int, n_mh: int, duration: float = 300.0,
                   crash_every: float = 12.0) -> int:
    """MH crash/recovery cycles under distance-based checkpointing.

    Hosts keep producing recoverable work (checkpoint uplinks, meta
    riding every handoff) while a staggered plan crashes them round
    robin and brings each back 8 time units later -- so the run
    continuously exercises the save path, the stale-state purges at
    crash time, and the trail-walking fetch/restore at recovery.
    """
    from repro.recovery import CounterClient

    crashes = []
    t, i = 20.0, 0
    while t + 8.0 < duration - 20.0:
        crashes.append(MhCrash(f"mh-{i % n_mh}", at=t,
                               recover_at=t + 8.0,
                               amnesia=(i % 3 == 0)))
        t += crash_every
        i += 1
    plan = FaultPlan(mh_crashes=tuple(crashes), seed=41)
    sim = _make_sim(n_mss, n_mh, seed=43, fault_plan=plan,
                    recovery="distance:2")
    counter = CounterClient(sim.recovery)
    rng = random.Random(47)

    def work_one() -> None:
        mh_id = sim.mh_id(rng.randrange(n_mh))
        if not sim.network.mobile_host(mh_id).crashed:
            counter.note_work(mh_id)

    driver = PoissonProcess(sim.scheduler, 2.0, work_one,
                            rng=random.Random(53))
    mobility = UniformMobility(sim.network, sim.mh_ids, 0.05,
                               rng=random.Random(59))
    sim.run(until=duration)
    driver.stop()
    mobility.stop()
    sim.drain()
    if sim.recovery.checkpoints_taken == 0 or not sim.recovery.restored:
        raise AssertionError("recovery_churn recovered nothing")
    return sim.scheduler.events_processed


def crowd_churn(n_mss: int, n_mh: int, duration: float = 200.0,
                tick: float = 10.0, n_active: int = 16) -> int:
    """Array-backed population at scale: crowd churn + small active set.

    The headline workload for ROADMAP item 2: ``n_mh`` hosts live in
    the :class:`~repro.scale.PopulationStore` (parallel arrays, no
    python objects), a :class:`~repro.scale.CrowdChurn` driver applies
    mass move/disconnect/reconnect waves against the arrays, and a
    small promoted set of ``n_active`` hosts runs real L2 mutex
    traffic on the object path.  Memory is the quantity under test --
    the harness's RSS-growth and retained-allocation gates are what
    make this scenario a *scaling* check rather than a speed check.
    """
    sim = _make_sim(n_mss, n_mh, seed=61, population_store=True,
                    max_active=max(64, 2 * n_active))
    from repro.scale import CrowdChurn

    churn = CrowdChurn(
        sim.population, sim.scheduler,
        tick=tick, move_fraction=0.01,
        disconnect_fraction=0.002, reconnect_fraction=0.5,
        rng=random.Random(67),
    )
    churn.start()
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    active_ids = [sim.mh_id(i) for i in range(n_active)]
    workload = MutexWorkload(sim.network, mutex, active_ids,
                             request_rate=0.05, rng=random.Random(71))
    sim.run(until=duration)
    churn.stop()
    workload.stop()
    sim.drain()
    resource.assert_no_overlap()
    if churn.moved == 0 or churn.disconnected == 0:
        raise AssertionError("crowd_churn churned nothing")
    if sim.population.active_count > sim.population.max_active:
        raise AssertionError("crowd_churn exceeded the active-set cap")
    return sim.scheduler.events_processed


def cancel_storm(n_events: int = 400_000) -> int:
    """Pure scheduler stress: schedule in waves, cancel most events
    before they fire.  Isolates heap push/pop and the lazy-cancellation
    counter from any protocol logic."""
    sched = Scheduler()
    fired = [0]

    def bump() -> None:
        fired[0] += 1

    rng = random.Random(37)
    pending = []
    for i in range(n_events):
        event = sched.schedule(1.0 + (i % 977) * 0.001, bump)
        pending.append(event)
        if len(pending) >= 64:
            # Cancel ~three quarters of each wave, deterministically.
            for victim in pending:
                if rng.random() < 0.75:
                    victim.cancel()
            pending.clear()
            sched.run(until=sched.now + 0.25)
    sched.drain(max_events=n_events + 1)
    if fired[0] == 0:
        raise AssertionError("cancel_storm fired nothing")
    return sched.events_processed


def scheduler_density(n_pending: int = 20_000, n_events: int = 300_000,
                      scheduler: str = "heap") -> int:
    """Pure scheduler throughput at high event density.

    Holds ``n_pending`` events in the queue at all times (every fired
    event posts a replacement at a deterministic pseudo-random offset)
    and fires ``n_events`` of them.  This is the regime ROADMAP item 3
    targets: the binary heap pays O(log n_pending) C-level sift
    comparisons per operation, while the calendar queue's bucket scan
    stays O(1) amortized -- run under both kinds to price the gap.
    """
    sched = make_scheduler(scheduler)
    rng = random.Random(101)
    uniform = rng.random
    post = sched.post

    def fire() -> None:
        post(uniform() * 100.0 + 0.001, fire)

    for _ in range(n_pending):
        post(uniform() * 100.0, fire)
    sched.run(max_events=n_events)
    if sched.events_processed != n_events:  # pragma: no cover - guard
        raise AssertionError("scheduler_density drained early")
    return sched.events_processed


@dataclass(frozen=True)
class Scenario:
    """One named, deterministic perf workload.

    Attributes:
        name: registry key (also the ``BENCH_*.json`` key).
        description: one-line summary shown by ``--list``.
        run: zero-argument callable; returns events processed.
        smoke: cheap enough for the CI ``perf-smoke`` regression gate.
        tags: free-form labels (``"mutex"``, ``"search"``, ...).
        max_rss_growth_kb: when set, the harness fails the run if RSS
            grows by more than this many KiB across the scenario's
            repeats (a memory gate, not a speed gate).
        max_retained_blocks_per_kevent: when set, the harness fails
            the run if, after ``gc.collect()``, the scenario retained
            more than this many allocated blocks per thousand events
            processed (catches per-MH leaks that RSS alone can hide).
    """

    name: str
    description: str
    run: Callable[[], int]
    smoke: bool = False
    tags: Tuple[str, ...] = field(default=())
    max_rss_growth_kb: Optional[int] = None
    max_retained_blocks_per_kevent: Optional[float] = None


SCENARIOS: Dict[str, Scenario] = {}


def _register(scenario: Scenario) -> None:
    if scenario.name in SCENARIOS:  # pragma: no cover - registry bug
        raise ValueError(f"duplicate scenario: {scenario.name}")
    SCENARIOS[scenario.name] = scenario


_register(Scenario(
    name="scale_m10_n200",
    description="bench_scale loaded system at M=10, N=200 "
                "(L2 mutex + mobility)",
    run=lambda: loaded_system(10, 200, 1200.0),
    tags=("mutex", "mobility", "headline"),
))
_register(Scenario(
    name="scale_m16_n320",
    description="bench_scale loaded system at M=16, N=320",
    run=lambda: loaded_system(16, 320, 400.0),
    tags=("mutex", "mobility"),
))
_register(Scenario(
    name="smoke_mutex",
    description="small loaded system (M=6, N=40) for the CI gate",
    run=lambda: loaded_system(6, 40, 2000.0),
    smoke=True,
    tags=("mutex", "mobility", "smoke"),
))
_register(Scenario(
    name="smoke_monitors",
    description="the smoke_mutex workload under the full default "
                "invariant-monitor set (prices monitoring overhead)",
    run=lambda: loaded_system(6, 40, 2000.0, monitors=True),
    smoke=True,
    tags=("mutex", "mobility", "monitor", "smoke"),
))
_register(Scenario(
    name="smoke_calendar",
    description="the smoke_mutex workload on the calendar-queue "
                "scheduler (byte-identical event stream)",
    run=lambda: loaded_system(6, 40, 2000.0, scheduler="calendar"),
    smoke=True,
    tags=("mutex", "mobility", "scheduler", "smoke"),
))
_register(Scenario(
    name="smoke_monitors_sampled",
    description="the smoke_monitors workload with monitor sampling at "
                "the default rate (prices sampled observability)",
    run=lambda: loaded_system(6, 40, 2000.0, monitors=True,
                              monitor_sampling=True),
    smoke=True,
    tags=("mutex", "mobility", "monitor", "smoke"),
))
_register(Scenario(
    name="smoke_full_stack",
    description="the smoke_monitors workload with the whole perf stack "
                "on at once: calendar queue, free-list pools, batched "
                "exact monitors (the BENCH_9 headline; gated against "
                "smoke_calendar and smoke_monitors by the obs-overhead "
                "CI job -- see tools/check_obs_overhead.py)",
    run=lambda: loaded_system(6, 40, 2000.0, monitors=True,
                              monitor_mode="batched",
                              scheduler="calendar"),
    smoke=True,
    tags=("mutex", "monitor", "scheduler", "obs", "smoke"),
))
_register(Scenario(
    name="smoke_ledger",
    description="the smoke_monitors workload under batched exact "
                "monitors with per-subsystem timing capture "
                "(scheduler/network/drain/monitor wall split in "
                "subsystem_wall_s)",
    run=lambda: loaded_system(6, 40, 2000.0, monitors=True,
                              monitor_mode="batched",
                              capture_timing=True),
    smoke=True,
    tags=("mutex", "monitor", "obs", "smoke"),
))
_register(Scenario(
    name="smoke_pooled",
    description="the smoke_mutex workload under the event/envelope "
                "free-list pools' retained-allocation gate",
    run=lambda: loaded_system(6, 40, 2000.0),
    smoke=True,
    tags=("mutex", "pool", "smoke"),
    # The pools bound their free lists (scheduler events 4096, trace
    # events 64, rel acks 256), so steady-state retention must stay
    # tiny relative to the ~500k events this workload fires.
    max_retained_blocks_per_kevent=500.0,
))
_register(Scenario(
    name="sched_density_heap",
    description="pure scheduler at 20k pending events, binary heap",
    run=lambda: scheduler_density(20_000, 300_000, "heap"),
    smoke=True,
    tags=("scheduler", "smoke"),
))
_register(Scenario(
    name="sched_density_calendar",
    description="pure scheduler at 20k pending events, calendar queue",
    run=lambda: scheduler_density(20_000, 300_000, "calendar"),
    smoke=True,
    tags=("scheduler", "smoke"),
))
_register(Scenario(
    name="smoke_scale",
    description="array-backed population at N=100k: crowd churn + "
                "16 active hosts, under RSS and allocation gates",
    run=lambda: crowd_churn(64, 100_000, 200.0),
    smoke=True,
    tags=("scale", "mobility", "smoke"),
    # N=100k of array state is ~7 MB; 256 MB of growth headroom
    # catches any accidental fall-back to per-MH python objects
    # (~1 KB each -> ~100 MB+) while staying far above allocator
    # noise on CI runners.
    max_rss_growth_kb=262_144,
    max_retained_blocks_per_kevent=2_000.0,
))
_register(Scenario(
    name="scale_1m",
    description="array-backed population at N=1M (not a smoke test; "
                "see docs/scaling.md for the recipe)",
    run=lambda: crowd_churn(256, 1_000_000, 100.0, tick=20.0),
    tags=("scale", "mobility"),
    max_rss_growth_kb=1_048_576,
    max_retained_blocks_per_kevent=20_000.0,
))
_register(Scenario(
    name="smoke_search",
    description="broadcast-search send_to_mh traffic (M=6, N=30) "
                "for the CI gate",
    run=lambda: search_messaging(6, 30, 600.0, rate=2.0),
    smoke=True,
    tags=("search", "smoke"),
))
_register(Scenario(
    name="smoke_recovery",
    description="MH crash/recovery churn under distance-based "
                "checkpointing (M=6, N=24) for the CI gate",
    run=lambda: recovery_churn(6, 24, 2400.0),
    smoke=True,
    tags=("faults", "recovery", "smoke"),
))
_register(Scenario(
    name="reliable_churn",
    description="lossy links under the reliable transport "
                "(retransmit-timer cancellation churn)",
    run=lambda: reliable_churn(8, 60, 300.0),
    tags=("faults", "reliable"),
))
_register(Scenario(
    name="cancel_storm",
    description="pure scheduler stress: waves of mostly-cancelled "
                "events",
    run=lambda: cancel_storm(400_000),
    tags=("scheduler",),
))


def scenario_names(smoke_only: bool = False) -> List[str]:
    """Registry keys, in registration order."""
    return [
        name for name, scenario in SCENARIOS.items()
        if scenario.smoke or not smoke_only
    ]
