"""Performance harness: curated scenarios, BENCH records, regression
gates.

See :mod:`repro.perf.scenarios` for the workloads and
:mod:`repro.perf.harness` for measurement and comparison; the shell
entry point is ``tools/perf_harness.py`` (docs in
``docs/performance.md``).
Keeps the reproduction's substrate speed from eroding (ROADMAP perf arc).
"""

from repro.perf.harness import (
    SCHEMA,
    Delta,
    ScenarioResult,
    calibrate,
    check_regressions,
    compare,
    delta_table,
    find_previous_bench,
    load_bench,
    run_scenario,
    run_suite,
    write_bench,
)
from repro.perf.scenarios import SCENARIOS, Scenario, scenario_names

__all__ = [
    "Delta",
    "SCENARIOS",
    "SCHEMA",
    "Scenario",
    "ScenarioResult",
    "calibrate",
    "check_regressions",
    "compare",
    "delta_table",
    "find_previous_bench",
    "load_bench",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "write_bench",
]
