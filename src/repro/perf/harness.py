"""The benchmark harness: measure, persist, compare, gate.

Runs curated :mod:`repro.perf.scenarios` workloads under
``time.perf_counter``, reports events/sec and peak RSS, writes the
machine-readable ``BENCH_<n>.json`` trajectory files checked into the
repository root, and renders delta tables against earlier records.

Two comparisons are supported:

* **raw** -- events/sec against events/sec.  Meaningful when both
  records come from the same machine (e.g. the before/after pair
  embedded in one ``BENCH_*.json``).
* **normalized** -- each record's events/sec is divided by its own
  ``calibration_ops_per_sec``, a pure-interpreter spin measured in the
  same process that is independent of the simulator's code.  The ratio
  of normalized scores cancels machine speed to first order, which is
  what the CI regression gate uses so a slow runner does not read as a
  regression (and a fast one does not mask it).  The calibration loop
  deliberately avoids the scheduler/network code under test, so a
  substrate regression cannot hide in its own yardstick.

Determinism doubles as integrity checking: a scenario must process the
same number of events on every repeat, and :func:`run_scenario` raises
if it does not.
Keeps the reproduction's substrate speed from eroding (ROADMAP perf arc).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import re
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, PerfGateError
from repro.obs.timing import consume_last_run
from repro.perf.scenarios import SCENARIOS, Scenario

try:  # pragma: no cover - absent on non-unix platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: schema version of the BENCH json files.
SCHEMA = 1

_BENCH_NAME_RE = re.compile(r"^BENCH_(\d+)\.json$")


def _peak_rss_kb() -> Optional[int]:
    """Process-lifetime peak RSS in KiB (``None`` where unsupported).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize
    to KiB.  Being process-lifetime, per-scenario values are a running
    maximum -- still useful for spotting memory blowups.
    """
    if _resource is None:
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def _current_rss_kb() -> Optional[int]:
    """Instantaneous RSS in KiB (``None`` where /proc is unavailable).

    Unlike :func:`_peak_rss_kb` this is not monotonic, which is what
    the RSS-growth gate needs for its *before* reading: growth is
    measured from the footprint just before the scenario, not from the
    process-lifetime peak some earlier scenario may have set.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-linux
        pass
    return _peak_rss_kb()


def calibrate(iterations: int = 300_000) -> float:
    """Machine-speed yardstick: pure-interpreter ops/sec.

    A fixed mix of dict stores, integer arithmetic, and method-free
    loop overhead -- deliberately *not* the scheduler or network, so
    the yardstick is immune to regressions in the code under test.
    """
    best = float("inf")
    for _ in range(3):
        bucket: Dict[int, int] = {}
        acc = 0
        start = time.perf_counter()
        for i in range(iterations):
            acc += i
            bucket[i & 1023] = acc
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return iterations / best


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's measurement (best-of-``repeats`` wall time).

    ``rss_growth_kb`` is how far RSS rose above the pre-scenario
    footprint across all repeats; ``retained_blocks_per_kevent`` is the
    post-``gc.collect()`` allocated-block delta per thousand events.
    Both are the quantities the scale gates bound (``None`` where the
    platform cannot measure them).
    """

    name: str
    wall_time_s: float
    events: int
    events_per_sec: float
    peak_rss_kb: Optional[int]
    repeats: int
    rss_growth_kb: Optional[int] = None
    retained_blocks_per_kevent: Optional[float] = None
    #: per-subsystem wall-time split (scheduler/network/monitor/drain
    #: seconds) published by scenarios that opt into timing capture
    #: (``smoke_ledger``); ``None`` everywhere else.
    subsystem_wall_s: Optional[Dict[str, float]] = None

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "wall_time_s": round(self.wall_time_s, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "peak_rss_kb": self.peak_rss_kb,
            "repeats": self.repeats,
            "rss_growth_kb": self.rss_growth_kb,
            "retained_blocks_per_kevent": (
                round(self.retained_blocks_per_kevent, 1)
                if self.retained_blocks_per_kevent is not None
                else None
            ),
        }
        if self.subsystem_wall_s is not None:
            record["subsystem_wall_s"] = {
                section: round(seconds, 6)
                for section, seconds in sorted(
                    self.subsystem_wall_s.items()
                )
            }
        return record


def resolve(name: str) -> Scenario:
    """Look up a scenario by registry name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}"
        ) from None


def run_scenario(
    scenario, repeats: int = 3
) -> ScenarioResult:
    """Measure one scenario (by name or :class:`Scenario`).

    Runs ``repeats`` times, keeps the best wall time (the standard
    noise-rejection choice for CPU-bound benchmarks), and raises if the
    event count is not identical across repeats -- a nondeterministic
    scenario cannot anchor a perf trajectory.

    Scenarios with resource gates set
    (:attr:`~repro.perf.scenarios.Scenario.max_rss_growth_kb`,
    :attr:`~repro.perf.scenarios.Scenario.max_retained_blocks_per_kevent`)
    additionally raise :class:`~repro.errors.PerfGateError` when a
    gate is exceeded -- that is the N=100k/N=1M memory check of
    ROADMAP item 2.
    """
    if isinstance(scenario, str):
        scenario = resolve(scenario)
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    gated = (
        scenario.max_rss_growth_kb is not None
        or scenario.max_retained_blocks_per_kevent is not None
    )
    events: Optional[int] = None
    if gated:
        # One untimed warm-up run so one-time costs (lazy imports --
        # notably numpy inside repro.scale -- interned strings, code
        # objects) are paid before the measurement window opens; the
        # gates are after leaks *per run*, not import footprints.
        events = scenario.run()
    gc.collect()
    rss_before = _current_rss_kb()
    blocks_before = sys.getallocatedblocks()
    best = float("inf")
    subsystem_wall: Optional[Dict[str, float]] = None
    for _ in range(repeats):
        start = time.perf_counter()
        processed = scenario.run()
        elapsed = time.perf_counter() - start
        if events is None:
            events = processed
        elif processed != events:
            raise ConfigurationError(
                f"scenario {scenario.name!r} is nondeterministic: "
                f"{events} then {processed} events"
            )
        published = consume_last_run()
        if elapsed < best:
            best = elapsed
            # Keep the split from the best repeat so the numbers in the
            # BENCH record describe the wall time recorded next to them.
            if published is not None:
                subsystem_wall = published
    assert events is not None
    gc.collect()
    retained_blocks = sys.getallocatedblocks() - blocks_before
    peak_rss = _peak_rss_kb()
    rss_growth: Optional[int] = None
    if peak_rss is not None and rss_before is not None:
        rss_growth = max(0, peak_rss - rss_before)
    retained_per_kevent = (
        retained_blocks / (events / 1000.0) if events else 0.0
    )
    if (
        scenario.max_rss_growth_kb is not None
        and rss_growth is not None
        and rss_growth > scenario.max_rss_growth_kb
    ):
        raise PerfGateError(
            f"{scenario.name}: RSS grew {rss_growth} KiB, gate is "
            f"{scenario.max_rss_growth_kb} KiB"
        )
    if (
        scenario.max_retained_blocks_per_kevent is not None
        and retained_per_kevent > scenario.max_retained_blocks_per_kevent
    ):
        raise PerfGateError(
            f"{scenario.name}: retained {retained_per_kevent:.1f} "
            f"blocks/kevent after gc, gate is "
            f"{scenario.max_retained_blocks_per_kevent}"
        )
    return ScenarioResult(
        name=scenario.name,
        wall_time_s=best,
        events=events,
        events_per_sec=events / best if best > 0 else float("inf"),
        peak_rss_kb=peak_rss,
        repeats=repeats,
        rss_growth_kb=rss_growth,
        retained_blocks_per_kevent=retained_per_kevent,
        subsystem_wall_s=subsystem_wall,
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    progress=None,
) -> Dict[str, object]:
    """Run a set of scenarios and assemble a BENCH record.

    Args:
        names: scenario names (default: the full registry).
        repeats: repeats per scenario (best-of).
        progress: optional callable receiving one line per scenario.
    """
    if names is None:
        names = list(SCENARIOS)
    record: Dict[str, object] = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_ops_per_sec": round(calibrate(), 1),
        "scenarios": {},
    }
    for name in names:
        result = run_scenario(name, repeats=repeats)
        record["scenarios"][name] = result.to_json()
        if progress is not None:
            progress(
                f"{name:<18} {result.events:>9} events  "
                f"{result.wall_time_s:>8.3f}s  "
                f"{result.events_per_sec:>10.0f} ev/s"
            )
    return record


def write_bench(record: Dict[str, object], path: str) -> None:
    """Write one BENCH record as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict[str, object]:
    """Load a BENCH record, validating the schema version."""
    with open(path, encoding="utf-8") as fh:
        record = json.load(fh)
    if record.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported BENCH schema {record.get('schema')!r}"
        )
    return record


def find_previous_bench(directory: str = ".") -> Optional[str]:
    """Path of the highest-numbered ``BENCH_<n>.json`` in ``directory``,
    or ``None`` when the perf trajectory is empty."""
    best_n = -1
    best_path = None
    for entry in os.listdir(directory):
        match = _BENCH_NAME_RE.match(entry)
        if match and int(match.group(1)) > best_n:
            best_n = int(match.group(1))
            best_path = os.path.join(directory, entry)
    return best_path


@dataclass(frozen=True)
class Delta:
    """One scenario's current-vs-baseline comparison."""

    name: str
    baseline_eps: float
    current_eps: float
    raw_ratio: float
    normalized_ratio: Optional[float]

    @property
    def raw_pct(self) -> float:
        """Raw speedup in percent (+ faster, - slower)."""
        return (self.raw_ratio - 1.0) * 100.0


def compare(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[Delta]:
    """Per-scenario deltas for every scenario present in both records."""
    deltas: List[Delta] = []
    cur_cal = current.get("calibration_ops_per_sec")
    base_cal = baseline.get("calibration_ops_per_sec")
    cur_scenarios = current["scenarios"]
    for name, base in baseline["scenarios"].items():
        cur = cur_scenarios.get(name)
        if cur is None:
            continue
        base_eps = float(base["events_per_sec"])
        cur_eps = float(cur["events_per_sec"])
        normalized = None
        if cur_cal and base_cal:
            normalized = (cur_eps / float(cur_cal)) / (
                base_eps / float(base_cal)
            )
        deltas.append(Delta(
            name=name,
            baseline_eps=base_eps,
            current_eps=cur_eps,
            raw_ratio=cur_eps / base_eps if base_eps else float("inf"),
            normalized_ratio=normalized,
        ))
    return deltas


def delta_table(deltas: Sequence[Delta]) -> str:
    """Render deltas as an aligned text table."""
    header = (
        f"{'scenario':<18}{'baseline ev/s':>15}{'current ev/s':>15}"
        f"{'raw':>9}{'normalized':>12}"
    )
    lines = [header, "-" * len(header)]
    for delta in deltas:
        norm = (
            f"{(delta.normalized_ratio - 1) * 100:+.1f}%"
            if delta.normalized_ratio is not None
            else "n/a"
        )
        lines.append(
            f"{delta.name:<18}{delta.baseline_eps:>15.0f}"
            f"{delta.current_eps:>15.0f}{delta.raw_pct:>+8.1f}%"
            f"{norm:>12}"
        )
    return "\n".join(lines)


def check_regressions(
    deltas: Sequence[Delta],
    max_regression: float = 0.30,
    normalized: bool = True,
) -> List[str]:
    """Failure messages for scenarios slower than the tolerance.

    ``max_regression=0.30`` fails anything below 70% of the baseline's
    (normalized) events/sec.  Returns an empty list when all pass.
    """
    if not 0.0 < max_regression < 1.0:
        raise ConfigurationError("max_regression must be in (0, 1)")
    failures: List[str] = []
    floor = 1.0 - max_regression
    for delta in deltas:
        ratio = (
            delta.normalized_ratio
            if normalized and delta.normalized_ratio is not None
            else delta.raw_ratio
        )
        if ratio < floor:
            kind = (
                "normalized"
                if normalized and delta.normalized_ratio is not None
                else "raw"
            )
            failures.append(
                f"{delta.name}: {kind} events/sec at "
                f"{ratio:.2f}x of baseline (floor {floor:.2f}x)"
            )
    return failures
