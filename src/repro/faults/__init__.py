"""Fault injection: dropping the "reliable FIFO network" assumption.

The paper proves its algorithms correct assuming a reliable, sequenced
fixed network and crash-free support stations.  This package makes both
assumptions *optional*:

* :class:`FaultPlan` declares what goes wrong -- probabilistic or
  scheduled message drop, duplication and extra delay on wired links,
  wired-network partitions, and MSS crash/recovery events;
* :class:`FaultInjector` executes a plan against a
  :class:`~repro.net.Network`;
* :func:`apply_fault_plan` wires a plan onto a network, installing both
  the injector and (when ``plan.reliable``) the reliable-delivery layer
  (:class:`~repro.net.reliable.ReliableTransport`) that restores
  FIFO-exactly-once delivery on top of the now-lossy links.

Every existing algorithm and benchmark can run under a plan unchanged:
the hooks live inside the network, below the protocol API.
"""

from repro.faults.injector import FaultDecision, FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    MhCrash,
    MssCrash,
    Partition,
)

__all__ = [
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "MhCrash",
    "MssCrash",
    "Partition",
    "apply_fault_plan",
]


def apply_fault_plan(network, plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` on ``network``; returns the bound injector.

    Installs the :class:`FaultInjector` and, when ``plan.reliable`` is
    true, the reliable-delivery layer with the plan's retransmission
    knobs.
    """
    import random

    injector = FaultInjector(plan)
    network.install_faults(injector)
    if plan.reliable:
        network.install_reliable(
            timeout=plan.retransmit_timeout,
            backoff=plan.retransmit_backoff,
            max_retries=plan.max_retransmits,
            jitter=plan.retransmit_jitter,
            max_delay=plan.retransmit_max_delay,
            # Seeded independently of both the simulation RNG and the
            # injector's fault RNG, so enabling jitter perturbs only
            # the retransmit timers.
            rng=random.Random(f"rel.jitter:{plan.seed}"),
        )
    return injector
