"""Declarative fault plans.

A :class:`FaultPlan` is a pure-data description of every deviation from
the paper's Section 2 guarantees that a run should suffer: probabilistic
or scheduled message drop, duplication and extra delay on fixed-network
links, wired-link partitions, and MSS crash/recovery events.  Plans are
plain dataclasses so they can be built in code, round-tripped through
JSON (``--fault-plan`` on the CLI), and compared in tests.

The plan says *what* goes wrong; the :class:`~repro.faults.injector.
FaultInjector` executes it against a :class:`~repro.net.Network`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError


def _window_contains(start: float, end: Optional[float], now: float) -> bool:
    return now >= start and (end is None or now < end)


def _require_number(
    owner: str, name: str, value, allow_none: bool = False
) -> None:
    """Reject malformed (non-numeric) fields with a clear error."""
    if value is None and allow_none:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{owner}.{name} must be a number, got {value!r}"
        )


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic impairment of fixed-network links.

    Applies to every directed MSS pair matching ``src``/``dst`` (``None``
    matches any host) during ``[start, end)`` (``end=None`` means
    forever).  Each matching transmission independently suffers:

    * loss with probability ``drop``,
    * duplication with probability ``duplicate`` (one extra copy,
      delivered out of FIFO order -- exactly the hazard a reliable
      channel must suppress),
    * a deterministic ``extra_delay`` added to its latency draw.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    extra_delay: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "extra_delay", "start"):
            _require_number("LinkFault", name, getattr(self, name))
        _require_number("LinkFault", "end", self.end, allow_none=True)
        for name in ("drop", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"LinkFault.{name} must be a probability, got {value}"
                )
        if self.extra_delay < 0:
            raise ConfigurationError("extra_delay must be nonnegative")
        if self.start < 0:
            raise ConfigurationError("LinkFault.start must be nonnegative")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"LinkFault window is inverted or empty: "
                f"start={self.start} end={self.end}"
            )

    def applies(self, src: str, dst: str, now: float) -> bool:
        """Whether this fault covers a ``src -> dst`` message at ``now``."""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return _window_contains(self.start, self.end, now)


@dataclass(frozen=True)
class Partition:
    """A wired-network partition over a time window.

    ``groups`` are disjoint sets of MSS ids; while the partition is
    active, messages between members of *different* groups are dropped.
    MSSs not named in any group form one implicit extra group (they can
    still talk to each other, but to no named group).
    """

    groups: Tuple[Tuple[str, ...], ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        _require_number("Partition", "start", self.start)
        _require_number("Partition", "end", self.end, allow_none=True)
        seen: set = set()
        for group in self.groups:
            for mss_id in group:
                if not isinstance(mss_id, str):
                    raise ConfigurationError(
                        f"Partition groups must contain MSS id strings, "
                        f"got {mss_id!r}"
                    )
                if mss_id in seen:
                    raise ConfigurationError(
                        f"{mss_id} appears in two partition groups"
                    )
                seen.add(mss_id)
        if self.start < 0:
            raise ConfigurationError("Partition.start must be nonnegative")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError(
                f"Partition window is inverted or empty: "
                f"start={self.start} end={self.end}"
            )

    def severs(self, src: str, dst: str, now: float) -> bool:
        """Whether the partition blocks ``src -> dst`` at ``now``."""
        if not _window_contains(self.start, self.end, now):
            return False
        side_of = {}
        for index, group in enumerate(self.groups):
            for mss_id in group:
                side_of[mss_id] = index
        return side_of.get(src, -1) != side_of.get(dst, -1)


@dataclass(frozen=True)
class MssCrash:
    """One MSS crash (and optional recovery) event.

    A crashed MSS loses all volatile cell state (its ``local_mhs`` and
    disconnected flags), silently discards every message addressed to
    it, and sends nothing.  Its local MHs are orphaned and rejoin the
    system through the reconnect protocol after ``FaultPlan.
    rejoin_delay``.  ``recover_at=None`` means the crash is permanent.
    """

    mss_id: str
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        _require_number("MssCrash", "at", self.at)
        _require_number("MssCrash", "recover_at", self.recover_at,
                        allow_none=True)
        if self.at < 0:
            raise ConfigurationError("crash time must be nonnegative")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError(
                f"MssCrash window is inverted or empty: at={self.at} "
                f"recover_at={self.recover_at}"
            )


@dataclass(frozen=True)
class MhCrash:
    """One mobile-host crash (and optional recovery) event.

    A crashed MH loses all volatile protocol state, is silently detached
    from its cell (the cell marks it disconnected when the radio goes
    quiet), and neither sends nor receives until it recovers.  Recovery
    replays the Section 2 rejoin path: a non-amnesiac MH reconnects
    naming its old MSS (ordinary handoff pull); with ``amnesia=True``
    the MH forgets even *where* it was attached and rejoins with the
    broadcast ``find_disconnect`` query.  ``recover_at=None`` means the
    host never comes back.
    """

    mh_id: str
    at: float
    recover_at: Optional[float] = None
    amnesia: bool = False

    def __post_init__(self) -> None:
        _require_number("MhCrash", "at", self.at)
        _require_number("MhCrash", "recover_at", self.recover_at,
                        allow_none=True)
        if not isinstance(self.amnesia, bool):
            raise ConfigurationError(
                f"MhCrash.amnesia must be a boolean, got {self.amnesia!r}"
            )
        if self.at < 0:
            raise ConfigurationError("crash time must be nonnegative")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError(
                f"MhCrash window is inverted or empty: at={self.at} "
                f"recover_at={self.recover_at}"
            )


def _check_no_overlap(events: Iterable, label: str, key: str) -> None:
    """Reject two crash windows for the same host that overlap in time."""
    windows: Dict[str, list] = {}
    for event in events:
        windows.setdefault(getattr(event, key), []).append(
            (event.at, event.recover_at)
        )
    for host_id, spans in windows.items():
        spans.sort(key=lambda span: span[0])
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            if prev_end is None or start < prev_end:
                raise ConfigurationError(
                    f"overlapping {label} crash windows for {host_id}"
                )


def _entry_list(data: Dict[str, object], key: str) -> list:
    """The plan's ``key`` list, validated to actually be a list."""
    value = data.get(key, ())
    if isinstance(value, (str, bytes, dict)) or not hasattr(
        value, "__iter__"
    ):
        raise ConfigurationError(
            f"fault plan key {key!r} must be a list of objects, got "
            f"{type(value).__name__}"
        )
    return list(value)


def _build_entry(cls, entry, label: str, index: int):
    """Construct one nested fault dataclass with located errors."""
    if not isinstance(entry, dict):
        raise ConfigurationError(
            f"{label}[{index}] must be an object, got "
            f"{type(entry).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(entry) - known
    if unknown:
        raise ConfigurationError(
            f"{label}[{index}] has unknown keys {sorted(unknown)}; "
            f"known keys: {sorted(known)}"
        )
    try:
        return cls(**entry)
    except TypeError as exc:
        raise ConfigurationError(f"{label}[{index}]: {exc}") from None
    except ConfigurationError as exc:
        raise ConfigurationError(f"{label}[{index}]: {exc}") from None


def _build_partition(entry, index: int) -> Partition:
    if not isinstance(entry, dict):
        raise ConfigurationError(
            f"partitions[{index}] must be an object, got "
            f"{type(entry).__name__}"
        )
    unknown = set(entry) - {"groups", "start", "end"}
    if unknown:
        raise ConfigurationError(
            f"partitions[{index}] has unknown keys {sorted(unknown)}; "
            f"known keys: ['end', 'groups', 'start']"
        )
    groups = entry.get("groups", ())
    if isinstance(groups, (str, bytes)) or not hasattr(groups, "__iter__"):
        raise ConfigurationError(
            f"partitions[{index}].groups must be a list of lists"
        )
    try:
        return Partition(
            groups=tuple(tuple(group) for group in groups),
            start=entry.get("start", 0.0),
            end=entry.get("end"),
        )
    except ConfigurationError as exc:
        raise ConfigurationError(
            f"partitions[{index}]: {exc}"
        ) from None


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, and the recovery knobs.

    Attributes:
        link_faults: probabilistic drop/duplicate/delay rules.
        partitions: scheduled wired-network partitions.
        crashes: MSS crash/recovery events.
        mh_crashes: mobile-host crash/recovery events.
        seed: seed of the injector's private RNG (fault decisions are
            reproducible independently of the simulation's own RNG use).
        reliable: install the reliable-delivery layer
            (:class:`~repro.net.reliable.ReliableTransport`) so that
            fixed-network FIFO-exactly-once is *recovered* on top of the
            lossy links.  Disable to study raw algorithm behaviour
            outside the paper's assumptions.
        rejoin_delay: how long an orphaned MH takes to notice its MSS
            died and reconnect elsewhere.
        retransmit_timeout: reliable channel's initial retransmit timer.
        retransmit_backoff: exponential backoff factor per retry.
        max_retransmits: retry cap before the channel gives a message up.
        retransmit_jitter: fraction of each retransmit delay randomized
            (``0.2`` spreads every timer uniformly over ±20%), drawn
            from an RNG derived from ``seed``.  Desynchronizes the
            retransmit storm after a partition heals; ``0.0`` (the
            default) keeps the channel byte-identical to earlier
            releases.
        retransmit_max_delay: cap on the exponential backoff delay, so
            long outages do not push retry timers out to minutes.
            ``None`` (the default) leaves the backoff uncapped.
    """

    link_faults: Tuple[LinkFault, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[MssCrash, ...] = ()
    mh_crashes: Tuple[MhCrash, ...] = ()
    seed: int = 0
    reliable: bool = True
    rejoin_delay: float = 5.0
    retransmit_timeout: float = 4.0
    retransmit_backoff: float = 1.5
    max_retransmits: int = 10
    retransmit_jitter: float = 0.0
    retransmit_max_delay: Optional[float] = None

    def __post_init__(self) -> None:
        _check_no_overlap(self.crashes, "MSS", "mss_id")
        _check_no_overlap(self.mh_crashes, "MH", "mh_id")
        for name in ("rejoin_delay", "retransmit_timeout",
                     "retransmit_backoff", "retransmit_jitter"):
            _require_number("FaultPlan", name, getattr(self, name))
        _require_number("FaultPlan", "retransmit_max_delay",
                        self.retransmit_max_delay, allow_none=True)
        if self.rejoin_delay <= 0:
            raise ConfigurationError("rejoin_delay must be positive")
        if self.retransmit_timeout <= 0:
            raise ConfigurationError("retransmit_timeout must be positive")
        if self.retransmit_backoff < 1.0:
            raise ConfigurationError("retransmit_backoff must be >= 1")
        if self.max_retransmits < 0:
            raise ConfigurationError("max_retransmits must be nonnegative")
        if not 0.0 <= self.retransmit_jitter < 1.0:
            raise ConfigurationError(
                "retransmit_jitter must be in [0, 1), got "
                f"{self.retransmit_jitter}"
            )
        if (self.retransmit_max_delay is not None
                and self.retransmit_max_delay < self.retransmit_timeout):
            raise ConfigurationError(
                "retransmit_max_delay cannot be below retransmit_timeout"
            )

    # ------------------------------------------------------------------
    # Serialization (CLI --fault-plan, experiment configs)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Build a plan from a plain dict (parsed JSON).

        Raises :class:`~repro.errors.ConfigurationError` naming the
        offending entry on unknown keys, malformed values, or inverted
        time windows -- anywhere in the plan, including inside the
        nested fault lists.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        link_faults = tuple(
            _build_entry(LinkFault, entry, "link_faults", i)
            for i, entry in enumerate(_entry_list(data, "link_faults"))
        )
        partitions = tuple(
            _build_partition(entry, i)
            for i, entry in enumerate(_entry_list(data, "partitions"))
        )
        crashes = tuple(
            _build_entry(MssCrash, entry, "crashes", i)
            for i, entry in enumerate(_entry_list(data, "crashes"))
        )
        mh_crashes = tuple(
            _build_entry(MhCrash, entry, "mh_crashes", i)
            for i, entry in enumerate(_entry_list(data, "mh_crashes"))
        )
        scalars = {
            key: data[key]
            for key in known - {"link_faults", "partitions", "crashes",
                                "mh_crashes"}
            if key in data
        }
        return cls(
            link_faults=link_faults,
            partitions=partitions,
            crashes=crashes,
            mh_crashes=mh_crashes,
            **scalars,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
