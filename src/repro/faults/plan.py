"""Declarative fault plans.

A :class:`FaultPlan` is a pure-data description of every deviation from
the paper's Section 2 guarantees that a run should suffer: probabilistic
or scheduled message drop, duplication and extra delay on fixed-network
links, wired-link partitions, and MSS crash/recovery events.  Plans are
plain dataclasses so they can be built in code, round-tripped through
JSON (``--fault-plan`` on the CLI), and compared in tests.

The plan says *what* goes wrong; the :class:`~repro.faults.injector.
FaultInjector` executes it against a :class:`~repro.net.Network`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import ConfigurationError


def _window_contains(start: float, end: Optional[float], now: float) -> bool:
    return now >= start and (end is None or now < end)


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic impairment of fixed-network links.

    Applies to every directed MSS pair matching ``src``/``dst`` (``None``
    matches any host) during ``[start, end)`` (``end=None`` means
    forever).  Each matching transmission independently suffers:

    * loss with probability ``drop``,
    * duplication with probability ``duplicate`` (one extra copy,
      delivered out of FIFO order -- exactly the hazard a reliable
      channel must suppress),
    * a deterministic ``extra_delay`` added to its latency draw.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    extra_delay: float = 0.0
    src: Optional[str] = None
    dst: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"LinkFault.{name} must be a probability, got {value}"
                )
        if self.extra_delay < 0:
            raise ConfigurationError("extra_delay must be nonnegative")
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError("LinkFault window must end after start")

    def applies(self, src: str, dst: str, now: float) -> bool:
        """Whether this fault covers a ``src -> dst`` message at ``now``."""
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return _window_contains(self.start, self.end, now)


@dataclass(frozen=True)
class Partition:
    """A wired-network partition over a time window.

    ``groups`` are disjoint sets of MSS ids; while the partition is
    active, messages between members of *different* groups are dropped.
    MSSs not named in any group form one implicit extra group (they can
    still talk to each other, but to no named group).
    """

    groups: Tuple[Tuple[str, ...], ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.groups:
            for mss_id in group:
                if mss_id in seen:
                    raise ConfigurationError(
                        f"{mss_id} appears in two partition groups"
                    )
                seen.add(mss_id)
        if self.end is not None and self.end <= self.start:
            raise ConfigurationError("Partition window must end after start")

    def severs(self, src: str, dst: str, now: float) -> bool:
        """Whether the partition blocks ``src -> dst`` at ``now``."""
        if not _window_contains(self.start, self.end, now):
            return False
        side_of = {}
        for index, group in enumerate(self.groups):
            for mss_id in group:
                side_of[mss_id] = index
        return side_of.get(src, -1) != side_of.get(dst, -1)


@dataclass(frozen=True)
class MssCrash:
    """One MSS crash (and optional recovery) event.

    A crashed MSS loses all volatile cell state (its ``local_mhs`` and
    disconnected flags), silently discards every message addressed to
    it, and sends nothing.  Its local MHs are orphaned and rejoin the
    system through the reconnect protocol after ``FaultPlan.
    rejoin_delay``.  ``recover_at=None`` means the crash is permanent.
    """

    mss_id: str
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("crash time must be nonnegative")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError("recover_at must be after the crash")


@dataclass(frozen=True)
class MhCrash:
    """One mobile-host crash (and optional recovery) event.

    A crashed MH loses all volatile protocol state, is silently detached
    from its cell (the cell marks it disconnected when the radio goes
    quiet), and neither sends nor receives until it recovers.  Recovery
    replays the Section 2 rejoin path: a non-amnesiac MH reconnects
    naming its old MSS (ordinary handoff pull); with ``amnesia=True``
    the MH forgets even *where* it was attached and rejoins with the
    broadcast ``find_disconnect`` query.  ``recover_at=None`` means the
    host never comes back.
    """

    mh_id: str
    at: float
    recover_at: Optional[float] = None
    amnesia: bool = False

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("crash time must be nonnegative")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigurationError("recover_at must be after the crash")


def _check_no_overlap(events: Iterable, label: str, key: str) -> None:
    """Reject two crash windows for the same host that overlap in time."""
    windows: Dict[str, list] = {}
    for event in events:
        windows.setdefault(getattr(event, key), []).append(
            (event.at, event.recover_at)
        )
    for host_id, spans in windows.items():
        spans.sort(key=lambda span: span[0])
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            if prev_end is None or start < prev_end:
                raise ConfigurationError(
                    f"overlapping {label} crash windows for {host_id}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, and the recovery knobs.

    Attributes:
        link_faults: probabilistic drop/duplicate/delay rules.
        partitions: scheduled wired-network partitions.
        crashes: MSS crash/recovery events.
        mh_crashes: mobile-host crash/recovery events.
        seed: seed of the injector's private RNG (fault decisions are
            reproducible independently of the simulation's own RNG use).
        reliable: install the reliable-delivery layer
            (:class:`~repro.net.reliable.ReliableTransport`) so that
            fixed-network FIFO-exactly-once is *recovered* on top of the
            lossy links.  Disable to study raw algorithm behaviour
            outside the paper's assumptions.
        rejoin_delay: how long an orphaned MH takes to notice its MSS
            died and reconnect elsewhere.
        retransmit_timeout: reliable channel's initial retransmit timer.
        retransmit_backoff: exponential backoff factor per retry.
        max_retransmits: retry cap before the channel gives a message up.
    """

    link_faults: Tuple[LinkFault, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[MssCrash, ...] = ()
    mh_crashes: Tuple[MhCrash, ...] = ()
    seed: int = 0
    reliable: bool = True
    rejoin_delay: float = 5.0
    retransmit_timeout: float = 4.0
    retransmit_backoff: float = 1.5
    max_retransmits: int = 10

    def __post_init__(self) -> None:
        _check_no_overlap(self.crashes, "MSS", "mss_id")
        _check_no_overlap(self.mh_crashes, "MH", "mh_id")
        if self.rejoin_delay <= 0:
            raise ConfigurationError("rejoin_delay must be positive")
        if self.retransmit_timeout <= 0:
            raise ConfigurationError("retransmit_timeout must be positive")
        if self.retransmit_backoff < 1.0:
            raise ConfigurationError("retransmit_backoff must be >= 1")
        if self.max_retransmits < 0:
            raise ConfigurationError("max_retransmits must be nonnegative")

    # ------------------------------------------------------------------
    # Serialization (CLI --fault-plan, experiment configs)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable dict; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Build a plan from a plain dict (parsed JSON)."""
        known = {
            "link_faults", "partitions", "crashes", "mh_crashes", "seed",
            "reliable", "rejoin_delay", "retransmit_timeout",
            "retransmit_backoff", "max_retransmits",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        link_faults = tuple(
            LinkFault(**fault) for fault in data.get("link_faults", ())
        )
        partitions = tuple(
            Partition(
                groups=tuple(
                    tuple(group) for group in part.get("groups", ())
                ),
                start=part.get("start", 0.0),
                end=part.get("end"),
            )
            for part in data.get("partitions", ())
        )
        crashes = tuple(
            MssCrash(**crash) for crash in data.get("crashes", ())
        )
        mh_crashes = tuple(
            MhCrash(**crash) for crash in data.get("mh_crashes", ())
        )
        scalars = {
            key: data[key]
            for key in known - {"link_faults", "partitions", "crashes",
                                "mh_crashes"}
            if key in data
        }
        return cls(
            link_faults=link_faults,
            partitions=partitions,
            crashes=crashes,
            mh_crashes=mh_crashes,
            **scalars,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))
