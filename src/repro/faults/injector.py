"""The fault injector: executes a :class:`FaultPlan` against a network.

The injector is consulted by :class:`~repro.net.Network` on every
fixed-network transmission (drop / duplicate / delay / partition) and
drives the scheduled MSS crash and recovery events, including the
orphan-rejoin protocol: every MH local to a crashing MSS is silently
detached and, after ``FaultPlan.rejoin_delay``, re-registers at a
surviving MSS through the reconnect protocol of Section 2.

Protocol objects that keep per-MSS state (e.g. the R2 ring) subscribe
to crash/recovery events via :meth:`FaultInjector.add_crash_listener`
so they can discard state lost with the crashed station.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.errors import ConfigurationError, SimulationError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.messages import Message
    from repro.net.network import Network

CrashListener = Callable[[str], None]


@dataclass
class FaultDecision:
    """Outcome of consulting the injector for one transmission."""

    drop: bool = False
    reason: str = ""
    duplicates: int = 0
    extra_delay: float = 0.0


class FaultInjector:
    """Applies a :class:`FaultPlan` to a running simulation.

    Construct with a plan, then install on a network via
    :meth:`Network.install_faults` (or let
    :func:`repro.faults.apply_fault_plan` wire both the injector and the
    reliable layer).  All fault decisions draw from a private RNG seeded
    by ``plan.seed``, so a plan misbehaves identically on every run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.network: Optional["Network"] = None
        self.stats: Counter = Counter()
        #: whether any link fault can duplicate a fixed transmission;
        #: envelope pools consult this -- a duplicated delivery aliases
        #: the same object twice, so recycling would corrupt the copy.
        self.may_duplicate: bool = any(
            fault.duplicate for fault in plan.link_faults
        )
        self._rng = random.Random(plan.seed)
        self._crashed: Set[str] = set()
        self._crash_listeners: List[CrashListener] = []
        self._recovery_listeners: List[CrashListener] = []
        self._crash_times: Dict[str, float] = {}
        self._pending_orphans: Dict[str, Set[str]] = {}
        self._mh_crashed: Set[str] = set()
        self._mh_crash_listeners: List[CrashListener] = []
        self._mh_recovery_listeners: List[CrashListener] = []
        #: cell each crashed MH was (last) served by -- where it
        #: physically still sits, and so where it wakes up.
        self._mh_crash_cells: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, network: "Network") -> None:
        """Attach to ``network`` and schedule the plan's crash events.

        Called by :meth:`Network.install_faults`; do not call directly.
        """
        if self.network is not None:
            raise SimulationError("fault injector already bound")
        known_mss = set(network.mss_ids())
        for crash in self.plan.crashes:
            if crash.mss_id not in known_mss:
                raise ConfigurationError(
                    f"fault plan crashes unknown MSS {crash.mss_id!r}"
                )
        known_mh = set(network.mh_ids())
        for mh_crash in self.plan.mh_crashes:
            if mh_crash.mh_id not in known_mh:
                raise ConfigurationError(
                    f"fault plan crashes unknown MH {mh_crash.mh_id!r}"
                )
        self.network = network
        for crash in self.plan.crashes:
            network.scheduler.schedule_at(
                crash.at, self._crash, crash.mss_id
            )
            if crash.recover_at is not None:
                network.scheduler.schedule_at(
                    crash.recover_at, self._recover, crash.mss_id
                )
        for mh_crash in self.plan.mh_crashes:
            network.scheduler.schedule_at(
                mh_crash.at, self._crash_mh, mh_crash.mh_id,
                mh_crash.amnesia,
            )
            if mh_crash.recover_at is not None:
                network.scheduler.schedule_at(
                    mh_crash.recover_at, self._recover_mh, mh_crash.mh_id
                )

    def add_crash_listener(self, listener: CrashListener) -> None:
        """Invoke ``listener(mss_id)`` right after each MSS crash."""
        self._crash_listeners.append(listener)

    def add_recovery_listener(self, listener: CrashListener) -> None:
        """Invoke ``listener(mss_id)`` right after each MSS recovery."""
        self._recovery_listeners.append(listener)

    def add_mh_crash_listener(self, listener: CrashListener) -> None:
        """Invoke ``listener(mh_id)`` right after each MH crash."""
        self._mh_crash_listeners.append(listener)

    def add_mh_recovery_listener(self, listener: CrashListener) -> None:
        """Invoke ``listener(mh_id)`` right after each MH recovery
        (the host has already reattached when listeners run)."""
        self._mh_recovery_listeners.append(listener)

    def _dispatch(self, listeners: List[CrashListener],
                  host_id: str, event: str) -> None:
        """Run every listener; one raising must not silence the rest.

        A listener failure is a bug in a protocol's fault handling, not
        in the fault plan -- so it is surfaced as a structured fault
        event (and counted) rather than allowed to tear down the run or,
        worse, to skip the listeners registered after it.
        """
        for listener in listeners:
            try:
                listener(host_id)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self.stats["injector.listener_error"] += 1
                self.network.metrics.record_fault("injector.listener_error")
                if self.network._trace_on:
                    self.network._trace.emit(
                        "fault.listener_error",
                        src=host_id,
                        event=event,
                        listener=getattr(listener, "__qualname__",
                                         repr(listener)),
                        error=f"{type(exc).__name__}: {exc}",
                    )

    # ------------------------------------------------------------------
    # Queries from the network
    # ------------------------------------------------------------------

    def is_crashed(self, mss_id: str) -> bool:
        """Whether ``mss_id`` is currently down."""
        return mss_id in self._crashed

    def is_mh_crashed(self, mh_id: str) -> bool:
        """Whether mobile host ``mh_id`` is currently down."""
        return mh_id in self._mh_crashed

    def decide_fixed(self, message: "Message") -> FaultDecision:
        """Fault outcome for one fixed-network transmission."""
        now = self.network.scheduler.now
        for partition in self.plan.partitions:
            if partition.severs(message.src, message.dst, now):
                self.stats["fixed.partition_dropped"] += 1
                return FaultDecision(
                    drop=True, reason="fixed.partition_dropped"
                )
        decision = FaultDecision()
        for fault in self.plan.link_faults:
            if not fault.applies(message.src, message.dst, now):
                continue
            if fault.drop and self._rng.random() < fault.drop:
                self.stats["fixed.dropped"] += 1
                return FaultDecision(drop=True, reason="fixed.dropped")
            if fault.duplicate and self._rng.random() < fault.duplicate:
                decision.duplicates += 1
                self.stats["fixed.duplicated"] += 1
            decision.extra_delay += fault.extra_delay
        if decision.extra_delay:
            self.stats["fixed.delayed"] += 1
        return decision

    # ------------------------------------------------------------------
    # Crash / recovery execution
    # ------------------------------------------------------------------

    def _crash(self, mss_id: str) -> None:
        if mss_id in self._crashed:
            return
        network = self.network
        mss = network.mss(mss_id)
        self._crashed.add(mss_id)
        mss.crashed = True
        self.stats["mss.crash"] += 1
        network.metrics.record_fault("mss.crash")
        if network._trace_on:
            network._trace.emit(
                "fault.mss_crash",
                src=mss_id,
                orphans=sorted(mss.local_mhs),
            )
        self._crash_times[mss_id] = network.scheduler.now
        # Volatile cell state dies with the station.
        orphans = sorted(mss.local_mhs)
        mss.local_mhs.clear()
        mss.disconnected_mhs.clear()
        if orphans:
            self._pending_orphans[mss_id] = set(orphans)
        for index, mh_id in enumerate(orphans):
            network.mobile_host(mh_id).orphan()
            self.stats["mh.orphaned"] += 1
            network.metrics.record_fault("mh.orphaned")
            # Stagger the rejoins slightly so reconnect traffic does not
            # arrive as one synchronized burst.
            network.scheduler.schedule(
                self.plan.rejoin_delay + 0.1 * index,
                self._rejoin,
                mss_id,
                mh_id,
            )
        self._dispatch(self._crash_listeners, mss_id, "mss.crash")

    def _rejoin(self, crashed_mss_id: str, mh_id: str) -> None:
        network = self.network
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected and mh.orphaned and not mh.crashed:
            alive = [
                m for m in network.mss_ids() if m not in self._crashed
            ]
            if not alive:
                network.scheduler.schedule(
                    self.plan.rejoin_delay, self._rejoin,
                    crashed_mss_id, mh_id,
                )
                return
            # The previous MSS is (or was) dead, so the MH cannot rely
            # on it answering a handoff: reconnect without naming it,
            # which triggers the Section 2 broadcast query.
            target = self._rng.choice(alive)
            if network._trace_on:
                rejoin_id = network._trace.emit(
                    "fault.mh_rejoin",
                    src=mh_id,
                    dst=target,
                    crashed_mss=crashed_mss_id,
                )
                with network._trace.context(rejoin_id):
                    mh.reconnect(target, supply_prev=False)
            else:
                mh.reconnect(target, supply_prev=False)
            self.stats["mh.rejoined"] += 1
            network.metrics.record_fault("mh.rejoined")
        pending = self._pending_orphans.get(crashed_mss_id)
        if pending is not None:
            pending.discard(mh_id)
            if not pending:
                del self._pending_orphans[crashed_mss_id]
                network.metrics.record_recovery_time(
                    network.scheduler.now
                    - self._crash_times[crashed_mss_id]
                )

    def _recover(self, mss_id: str) -> None:
        if mss_id not in self._crashed:
            return
        self._crashed.discard(mss_id)
        self.network.mss(mss_id).crashed = False
        self.stats["mss.recover"] += 1
        self.network.metrics.record_fault("mss.recover")
        if self.network._trace_on:
            self.network._trace.emit("fault.mss_recover", src=mss_id)
        self._dispatch(self._recovery_listeners, mss_id, "mss.recover")

    # ------------------------------------------------------------------
    # MH crash / recovery execution
    # ------------------------------------------------------------------

    def _crash_mh(self, mh_id: str, amnesia: bool) -> None:
        if mh_id in self._mh_crashed:
            return
        network = self.network
        mh = network.mobile_host(mh_id)
        self._mh_crashed.add(mh_id)
        self.stats["mh.crash"] += 1
        network.metrics.record_fault("mh.crash")
        # Remember the cell the host physically sits in: amnesia wipes
        # the *host's* memory of it, not the geography.
        self._mh_crash_cells[mh_id] = (
            mh.current_mss_id if mh.is_connected
            else mh._transit_prev_mss_id if mh.in_transit
            else mh.disconnect_mss_id
        )
        self._crash_times[mh_id] = network.scheduler.now
        if network._trace_on:
            network._trace.emit(
                "fault.mh_crash",
                src=mh_id,
                mss=self._mh_crash_cells[mh_id],
                amnesia=amnesia,
            )
        mh.crash(amnesia=amnesia)
        network.notify_mh_crashed(mh_id)
        self._dispatch(self._mh_crash_listeners, mh_id, "mh.crash")

    def _recover_mh(self, mh_id: str) -> None:
        if mh_id not in self._mh_crashed:
            return
        network = self.network
        mh = network.mobile_host(mh_id)
        # Wake up in the cell where the host died; if that station is
        # (still) down, reconnect() reroutes to the nearest live one,
        # and only a host with no cell at all picks a random survivor.
        target = self._mh_crash_cells.pop(mh_id, None)
        if target is None or (target in self._crashed
                              and network.next_alive_mss(target) is None):
            alive = [
                m for m in network.mss_ids() if m not in self._crashed
            ]
            if not alive:
                self._mh_crash_cells[mh_id] = target
                network.scheduler.schedule(
                    self.plan.rejoin_delay, self._recover_mh, mh_id
                )
                return
            target = self._rng.choice(alive)
        self._mh_crashed.discard(mh_id)
        self.stats["mh.recover"] += 1
        network.metrics.record_fault("mh.recover")
        if network._trace_on:
            recover_id = network._trace.emit(
                "fault.mh_recover", src=mh_id, dst=target
            )
            with network._trace.context(recover_id):
                mh.recover(target)
        else:
            mh.recover(target)
        self._dispatch(self._mh_recovery_listeners, mh_id, "mh.recover")
