"""Exactly-once, totally ordered multicast delivery to mobile hosts.

Reproduces the companion system of the paper's reference [1].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hosts.mss import HandoffParticipant
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class Submit:
    """Sender's MSS -> sequencer: please order and flood this payload."""

    sender_mh_id: str
    payload: object


@dataclass(frozen=True)
class Store:
    """Sequencer -> every MSS: buffer message ``seq``."""

    seq: int
    sender_mh_id: str
    payload: object


@dataclass(frozen=True)
class Ack:
    """MSS -> sequencer: member has now delivered up to ``seq``."""

    mh_id: str
    seq: int


@dataclass(frozen=True)
class Prune:
    """Sequencer -> every MSS: all members delivered up to ``seq``."""

    seq: int


class _StateCarrier(HandoffParticipant):
    """Moves a member's delivery counter between MSSs via handoff."""

    def __init__(self, multicast: "ExactlyOnceMulticast",
                 mss_id: str) -> None:
        self.name = f"{multicast.scope}.state"
        self._multicast = multicast
        self._mss_id = mss_id

    def handoff_state(self, mh_id: str):
        # A handoff request can be stale: the member may have bounced
        # back to this cell before the request (issued for an earlier
        # departure) arrived.  The counter's rightful home is wherever
        # the member currently is -- never hand it to a stale requester,
        # or the state forks (a ghost copy regresses the counter and
        # breaks exactly-once).
        mss = self._multicast.network.mss(self._mss_id)
        if mss.is_local(mh_id):
            return None
        states = self._multicast.member_states[self._mss_id]
        if mh_id in states:
            return states.pop(mh_id)
        return None

    def install_handoff_state(self, mh_id: str, state) -> None:
        self._multicast._install_state(self._mss_id, mh_id, state)


class ExactlyOnceMulticast:
    """Totally ordered multicast with exactly-once delivery.

    Args:
        network: the simulated system.
        members: the multicast group (fixed membership).
        sequencer_mss_id: the fixed MSS that orders messages
            (default: the first registered MSS).
        gc: enable acknowledgement-driven garbage collection of the
            per-MSS buffers.
        scope: metrics scope for all of this protocol's traffic.
    """

    def __init__(
        self,
        network: "Network",
        members: List[str],
        sequencer_mss_id: Optional[str] = None,
        gc: bool = True,
        scope: str = "eom",
    ) -> None:
        if len(members) < 1:
            raise ConfigurationError("multicast needs at least one member")
        if len(set(members)) != len(members):
            raise ConfigurationError("members must be unique")
        self.network = network
        self.members = list(members)
        mss_ids = network.mss_ids()
        if sequencer_mss_id is None:
            sequencer_mss_id = mss_ids[0]
        if sequencer_mss_id not in mss_ids:
            raise ConfigurationError(
                f"unknown sequencer: {sequencer_mss_id}"
            )
        self.sequencer_mss_id = sequencer_mss_id
        self.gc_enabled = gc
        self.scope = scope
        self.kind_send = f"{scope}.send"
        self.kind_submit = f"{scope}.submit"
        self.kind_store = f"{scope}.store"
        self.kind_deliver = f"{scope}.deliver"
        self.kind_ack = f"{scope}.ack"
        self.kind_prune = f"{scope}.prune"
        #: next sequence number at the sequencer.
        self._next_seq = 0
        #: per-MSS buffered messages: mss -> {seq -> Store}.
        self.buffers: Dict[str, Dict[int, Store]] = {
            mss_id: {} for mss_id in mss_ids
        }
        #: per-MSS delivery counters for locally resident members.
        self.member_states: Dict[str, Dict[str, int]] = {
            mss_id: {} for mss_id in mss_ids
        }
        #: per-MSS "a delivery is in flight for member" flags.
        self._delivering: Dict[Tuple[str, str], bool] = {}
        #: sequencer-side highest acked seq per member.
        self._acked: Dict[str, int] = {m: 0 for m in self.members}
        self._pruned_upto = 0
        #: (time, member, seq, payload) per delivery, for verification.
        self.delivered: List[Tuple[float, str, int, object]] = []

        for mss_id in mss_ids:
            mss = network.mss(mss_id)
            mss.register_handler(self.kind_submit, self._on_submit)
            mss.register_handler(self.kind_store, self._on_store)
            mss.register_handler(self.kind_ack, self._on_ack)
            mss.register_handler(self.kind_prune, self._on_prune)
            mss.register_handler(self.kind_send, self._on_uplink)
            mss.add_handoff_participant(_StateCarrier(self, mss_id))
            mss.add_join_listener(
                lambda mh_id, prev, m=mss_id: self._on_join(m, mh_id)
            )
        for member in self.members:
            mh = network.mobile_host(member)
            mh.register_handler(self.kind_deliver, self._on_deliver)
            if mh.current_mss_id is None:
                raise ConfigurationError(
                    f"member {member} must be connected at setup"
                )
            self.member_states[mh.current_mss_id][member] = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def send(self, sender_mh_id: str, payload: object) -> None:
        """Multicast ``payload`` from a member MH to the whole group."""
        if sender_mh_id not in self.members:
            raise ConfigurationError(
                f"{sender_mh_id} is not a group member"
            )
        mh = self.network.mobile_host(sender_mh_id)
        mh.send_to_mss(
            self.kind_send, Submit(sender_mh_id, payload), self.scope
        )

    def delivered_seqs(self, mh_id: str) -> List[int]:
        """Sequence numbers delivered to ``mh_id``, in delivery order."""
        return [seq for (_, m, seq, _) in self.delivered if m == mh_id]

    def buffer_size(self, mss_id: str) -> int:
        """Buffered (not yet pruned) messages at ``mss_id``."""
        return len(self.buffers[mss_id])

    @property
    def messages_sent(self) -> int:
        """Messages sequenced so far."""
        return self._next_seq

    # ------------------------------------------------------------------
    # Sequencing and flooding
    # ------------------------------------------------------------------

    def _on_uplink(self, message: Message) -> None:
        submit: Submit = message.payload
        mss_id = message.dst
        if mss_id == self.sequencer_mss_id:
            self._sequence(submit)
        else:
            self.network.mss(mss_id).send_fixed(
                self.sequencer_mss_id, self.kind_submit, submit,
                self.scope,
            )

    def _on_submit(self, message: Message) -> None:
        self._sequence(message.payload)

    def _sequence(self, submit: Submit) -> None:
        self._next_seq += 1
        store = Store(self._next_seq, submit.sender_mh_id, submit.payload)
        sequencer = self.network.mss(self.sequencer_mss_id)
        for mss_id in self.network.mss_ids():
            if mss_id == self.sequencer_mss_id:
                continue
            sequencer.send_fixed(mss_id, self.kind_store, store,
                                 self.scope)
        self._store_at(self.sequencer_mss_id, store)

    def _on_store(self, message: Message) -> None:
        self._store_at(message.dst, message.payload)

    def _store_at(self, mss_id: str, store: Store) -> None:
        # FIFO channels from the sequencer guarantee a store can never
        # arrive after the prune covering it, so buffering is
        # unconditional.
        self.buffers[mss_id][store.seq] = store
        for member in list(self.member_states[mss_id]):
            self._catch_up(mss_id, member)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def _on_join(self, mss_id: str, mh_id: str) -> None:
        # The member's counter may already be here (reconnect in the
        # same cell where it disconnected): catch up immediately.  After
        # a move the counter arrives with the handoff reply instead.
        if mh_id in self.member_states[mss_id]:
            self._catch_up(mss_id, mh_id)

    def _install_state(self, mss_id: str, mh_id: str, state) -> None:
        """Install a member's counter at ``mss_id``, or forward it on.

        A rapid second move (or disconnect/reconnect) can outrun the
        first handoff: the counter then arrives at a MSS the member has
        already left, whose own handoff reply (sent earlier) carried
        nothing.  The counter chases the member: the late holder
        searches for its current residence and forwards the state over
        the fixed network.
        """
        mss = self.network.mss(mss_id)
        if mss.is_local(mh_id) or mh_id in mss.disconnected_mhs:
            states = self.member_states[mss_id]
            # Defensive merge: never regress a counter that is already
            # here (two chases can only exist transiently).
            states[mh_id] = max(states.get(mh_id, 0), state)
            self._catch_up(mss_id, mh_id)
            return

        def on_outcome(outcome) -> None:
            target = outcome.mss_id
            if target == mss_id:
                # Still in transit towards here (or bounced): retry.
                self.network.scheduler.schedule(
                    self.network.config.search_retry_delay,
                    self._install_state, mss_id, mh_id, state,
                )
                return
            if not self.network.search_protocol.includes_forward:
                self.network.search_protocol.record_forward(
                    self.network, self.scope
                )
            # The state travels one fixed hop to the located MSS.
            self.network.scheduler.schedule(
                self.network.config.fixed_latency(self.network.rng),
                self._install_state, target, mh_id, state,
            )

        self.network.search_protocol.search(
            self.network, mss_id, mh_id, self.scope, on_outcome
        )

    def _catch_up(self, mss_id: str, mh_id: str) -> None:
        """Deliver the next missing message to a local member, if any."""
        if self._delivering.get((mss_id, mh_id)):
            return
        states = self.member_states[mss_id]
        if mh_id not in states:
            return
        mss = self.network.mss(mss_id)
        if not mss.is_local(mh_id):
            return
        next_seq = states[mh_id] + 1
        store = self.buffers[mss_id].get(next_seq)
        if store is None:
            return
        self._delivering[(mss_id, mh_id)] = True
        self.network.send_wireless_down(
            mss_id,
            mh_id,
            Message(
                kind=self.kind_deliver,
                src=mss_id,
                dst=mh_id,
                payload=store,
                scope=self.scope,
            ),
            on_delivered=lambda msg, m=mss_id, h=mh_id, s=store.seq: (
                self._confirmed(m, h, s)
            ),
            on_lost=lambda msg, m=mss_id, h=mh_id: (
                self._delivery_lost(m, h)
            ),
        )

    def _confirmed(self, mss_id: str, mh_id: str, seq: int) -> None:
        self._delivering[(mss_id, mh_id)] = False
        states = self.member_states[mss_id]
        if mh_id not in states:
            # The counter left this cell between send and confirm (a
            # stale-handoff race); never resurrect a ghost copy here.
            return
        if states[mh_id] < seq:
            states[mh_id] = seq
            if self.gc_enabled:
                self.network.mss(mss_id).send_fixed(
                    self.sequencer_mss_id, self.kind_ack,
                    Ack(mh_id, seq), self.scope,
                )
        self._catch_up(mss_id, mh_id)

    def _delivery_lost(self, mss_id: str, mh_id: str) -> None:
        # The member left the cell mid-delivery: its counter did not
        # advance, so the new MSS will redeliver after handoff.
        self._delivering[(mss_id, mh_id)] = False

    def _on_deliver(self, message: Message) -> None:
        store: Store = message.payload
        self.delivered.append(
            (
                self.network.scheduler.now,
                message.dst,
                store.seq,
                store.payload,
            )
        )

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _on_ack(self, message: Message) -> None:
        ack: Ack = message.payload
        if ack.seq > self._acked.get(ack.mh_id, 0):
            self._acked[ack.mh_id] = ack.seq
        everyone = min(self._acked.values())
        if everyone > self._pruned_upto:
            self._pruned_upto = everyone
            sequencer = self.network.mss(self.sequencer_mss_id)
            for mss_id in self.network.mss_ids():
                if mss_id == self.sequencer_mss_id:
                    continue
                sequencer.send_fixed(
                    mss_id, self.kind_prune, Prune(everyone), self.scope
                )
            self._prune_at(self.sequencer_mss_id, everyone)

    def _on_prune(self, message: Message) -> None:
        prune: Prune = message.payload
        self._prune_at(message.dst, prune.seq)

    def _prune_at(self, mss_id: str, upto: int) -> None:
        buffer = self.buffers[mss_id]
        for seq in [s for s in buffer if s <= upto]:
            del buffer[seq]
