"""Exactly-once multicast to mobile hosts (the paper's reference [1]).

Section 2 of the paper notes that "some algorithms for mobile hosts
[1] may utilise a handoff procedure" -- [1] being Acharya & Badrinath,
*Delivering multicast messages in networks with mobile hosts*
(ICDCS 1993).  This package implements that companion system on top of
the same substrate, following the paper's structuring principle:

* a fixed *sequencer* MSS assigns a total order to multicast messages
  and floods them to every MSS, which buffers them;
* each MSS delivers buffered messages, in sequence, to the group
  members in its cell, advancing a per-member ``last delivered``
  counter on confirmed delivery;
* when a member moves (or reconnects), its counter travels to the new
  MSS through the standard handoff, and the new MSS *catches the member
  up* from its own buffer -- so every message is delivered exactly once
  no matter how often the member moves or disconnects;
* acknowledgements flow back to the sequencer, which garbage-collects
  buffer prefixes that every member has seen.

All the mobility pain (moves mid-delivery, wireless frames lost to a
departure, long disconnections) is absorbed by buffering + handoff; the
sender-side protocol is mobility-oblivious, as the structuring
principle prescribes.
"""

from repro.multicast.exactly_once import ExactlyOnceMulticast

__all__ = ["ExactlyOnceMulticast"]
