"""Lamport logical clocks (Lamport 1978, the paper's reference [11]).

Timestamps are ``(counter, node_id)`` pairs ordered lexicographically,
which yields the total order Lamport's mutual exclusion algorithm needs
(ties on the counter are broken by node id).
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class Timestamp(tuple):
    """A totally ordered Lamport timestamp.

    Subclasses ``tuple`` so every comparison is a C-level tuple
    comparison: the mutex request queue takes a ``min()`` over
    timestamps on each message arrival, and a Python-level ``__lt__``
    there dominated whole-simulation profiles.  The order is the same
    lexicographic ``(counter, node_id)`` the algorithm requires.
    """

    __slots__ = ()

    def __new__(cls, counter: int, node_id: str) -> "Timestamp":
        return tuple.__new__(cls, (counter, node_id))

    @property
    def counter(self) -> int:
        """The Lamport counter component."""
        return self[0]

    @property
    def node_id(self) -> str:
        """The tie-breaking node id component."""
        return self[1]

    def __repr__(self) -> str:
        return f"({self[0]}, {self[1]})"


class LamportClock:
    """A per-node logical clock.

    ``tick()`` stamps a local event (or a send); ``witness(ts)`` merges a
    received timestamp, advancing the local counter past it as Lamport's
    rules require.
    """

    def __init__(self, node_id: str) -> None:
        if not node_id:
            raise ConfigurationError("node_id must be nonempty")
        self.node_id = node_id
        self._counter = 0

    @property
    def counter(self) -> int:
        """Current value of the local counter."""
        return self._counter

    def tick(self) -> Timestamp:
        """Advance the clock for a local/send event; return the stamp."""
        self._counter += 1
        return Timestamp(self._counter, self.node_id)

    def witness(self, timestamp: Timestamp) -> Timestamp:
        """Merge a received timestamp and advance (receive event)."""
        self._counter = max(self._counter, timestamp.counter) + 1
        return Timestamp(self._counter, self.node_id)

    def peek(self) -> Timestamp:
        """Current stamp without advancing (for comparisons only)."""
        return Timestamp(self._counter, self.node_id)
