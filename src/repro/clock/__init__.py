"""Logical clocks (substrate S8).

Backs the Lamport substrate of the paper's Section 3 mutex algorithms.
"""

from repro.clock.lamport import LamportClock, Timestamp

__all__ = ["LamportClock", "Timestamp"]
