"""Logical clocks (substrate S8)."""

from repro.clock.lamport import LamportClock, Timestamp

__all__ = ["LamportClock", "Timestamp"]
