"""Append-only event ledgers: the batched tier's hot-path half.

One :class:`LedgerSite` exists per event type in a batched
:class:`~repro.monitor.hub.MonitorHub`.  Hot emit sites (the network
send/deliver paths, MSS handoff, mutex CS transitions, the reliable
transport) append one fixed-shape row tuple per event to the site's
plain-list segment -- no :class:`~repro.trace.events.TraceEvent` is
constructed, no monitor runs, nothing is looked up beyond the closure
the site handed out.  All sites share *one* hub-owned segment list, so
rows land already in global emission order (the same single-threaded
execution order that allocates the monotone event ids) and the drain
pass replays them through the monitors as-is -- no per-site collection,
no merge, no sort.

A row is the 10-tuple::

    (id, parent_id, time, scope, src, dst, kind, detail, category, site)

Slot 0 carries the hub-allocated event id.  The site object rides in
the last slot so the consume loop recovers the compiled dispatch plan
(and its ``mode`` specialization) without a dict lookup.
Part of the batched observability pipeline (ROADMAP item 3: exact
monitors off the hot path).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

__all__ = ["LedgerSite", "ROW_WIDTH"]

#: number of slots in a ledger row (documented layout above).
ROW_WIDTH = 10

#: consume-loop specializations, chosen once per site by the hub when
#: the standard monitor layout is detected.  GENERIC replays through
#: the site's plan with a scratch event; PLAIN has no explicit-interest
#: targets at all (wildcard folds only); RECV_STD is a ``recv`` whose
#: plan is exactly the standard FifoOrder + ReliableDelivery pair
#: (their per-row state transitions are inlined); SEND_GATED has a
#: single kind-suffix-gated target (e.g. ``send.fixed`` feeding
#: TokenUniqueness only for ``*.token`` kinds), so the common row pays
#: one ``endswith`` instead of a scratch build.
MODE_GENERIC = 0
MODE_PLAIN = 1
MODE_RECV_STD = 2
MODE_SEND_GATED = 3

#: health-counter classes, precompiled per etype for the fast consume
#: loop (mirrors HealthMonitor.on_event's etype tests exactly).
HEALTH_NONE = 0
HEALTH_SEND = 1
HEALTH_RECV = 2
HEALTH_FAULT = 3
HEALTH_CS_ENTER = 4

#: liveness classes, precompiled per etype (mirrors
#: LivenessMonitor.on_event + its send.wireless_up kind gate).
LIVENESS_TICK = 1
LIVENESS_WIRELESS_UP = 2
LIVENESS_RESUBMIT = 3
LIVENESS_CS_ENTER = 4
LIVENESS_TOKEN_ARRIVE = 5


def health_code(etype: str) -> int:
    """Which HealthMonitor counter ``etype`` increments (0 for none)."""
    if etype.startswith("send."):
        return HEALTH_SEND
    if etype == "recv":
        return HEALTH_RECV
    if etype.startswith("fault.") or etype == "wireless.lost":
        return HEALTH_FAULT
    if etype == "cs.enter":
        return HEALTH_CS_ENTER
    return HEALTH_NONE


def liveness_code(etype: str) -> int:
    """How LivenessMonitor consumes ``etype`` (1 = clock tick only)."""
    if etype == "send.wireless_up":
        return LIVENESS_WIRELESS_UP
    if etype == "r2.resubmit":
        return LIVENESS_RESUBMIT
    if etype == "cs.enter":
        return LIVENESS_CS_ENTER
    if etype == "token.arrive":
        return LIVENESS_TOKEN_ARRIVE
    return LIVENESS_TICK


class LedgerSite:
    """Compiled per-etype state for the batched tier.

    Holds everything the consume loop needs to replay a row with
    per-event semantics: the full ordered target
    tuple (generic replay), the explicit-interest-only plan (fast
    replay, where the trailing Liveness/Health wildcards are folded
    inline), and the precompiled liveness/health class codes.
    """

    __slots__ = (
        "etype",
        "filtered",
        "targets",
        "plan",
        "health_code",
        "liveness_code",
        "mode",
        "gate_fn",
        "gate_suffixes",
    )

    def __init__(
        self,
        etype: str,
        targets: Tuple[Tuple[Any, Optional[Tuple[str, ...]]], ...],
        plan: Optional[Tuple[Tuple[Any, Optional[Tuple[str, ...]]], ...]],
        filtered: bool,
    ) -> None:
        self.etype = etype
        self.filtered = filtered
        #: every target in per-event delivery order (explicit interests
        #: in registration order, then wildcards) as
        #: ``(on_event, kind_suffixes)`` pairs -- the generic replay.
        self.targets = targets
        #: explicit-interest targets only (wildcards folded inline by
        #: the fast consume loop); ``None`` when empty.
        self.plan = plan
        self.health_code = health_code(etype)
        self.liveness_code = liveness_code(etype)
        #: consume specialization (MODE_*); the hub upgrades it from
        #: GENERIC/PLAIN when the standard layout allows inlining.
        self.mode = MODE_PLAIN if plan is None else MODE_GENERIC
        #: MODE_SEND_GATED only: the single target and its suffixes.
        self.gate_fn = None
        self.gate_suffixes: Optional[Tuple[str, ...]] = None
