"""Live telemetry over HTTP: the observability pipeline's serve mode.

:class:`TelemetryServer` wraps a running :class:`~repro.Simulation`
(or a bare monitor hub) in a stdlib :class:`http.server` endpoint --
no third-party dependencies -- exposing the three routes dashboards
and scrapers expect (ROADMAP item 5, ``repro serve``):

* ``/metrics``   -- Prometheus text exposition: the latest
  :class:`~repro.monitor.health.HealthMonitor` sample plus the
  ``repro_obs_*`` families (per-subsystem wall time, ledger drains,
  rows replayed).
* ``/health``    -- one JSON object: liveness of the process, current
  sim-time, scheduler progress.
* ``/invariants`` -- one JSON object: per-monitor violation counts,
  how many ledger drains have run, how many rows they replayed, and
  ``certified_until`` -- the sim-time through which batched monitors
  have actually replayed (rows after it are still in the ledger).

The server runs on a daemon thread; handlers only *read* simulator
state, and reads are snapshot-free (GIL-consistent, best effort) so a
scrape never blocks or perturbs the event loop.  Everything here is
observational -- the paper's protocols (Sections 3-4) run identically
with or without a scraper attached.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro.monitor.health import HealthMonitor, escape_label_value

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """Serve ``/metrics``, ``/health`` and ``/invariants`` for a sim.

    Args:
        sim: the :class:`~repro.Simulation` to observe.  Monitoring is
            optional -- without a hub, ``/metrics`` exports only the
            scheduler families and ``/invariants`` reports zero
            monitors.
        host: bind address (default loopback).
        port: TCP port; ``0`` picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, sim, host: str = "127.0.0.1", port: int = 0) -> None:
        self.sim = sim
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self)
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound TCP port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._thread is not None:
            # shutdown() handshakes with serve_forever, so only call
            # it when the serving thread actually started.
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- payloads (also used directly by tests) -----------------------
    def metrics_text(self) -> str:
        """The ``/metrics`` page: health gauges + obs counters."""
        sim = self.sim
        hub = getattr(sim, "monitor_hub", None)
        parts = []
        if hub is not None:
            health = hub.monitor(HealthMonitor)
            if health is not None and health.samples:
                parts.append(health.to_prometheus())
        parts.append(self._obs_families())
        return "".join(parts)

    def _obs_families(self) -> str:
        sim = self.sim
        hub = getattr(sim, "monitor_hub", None)
        lines = [
            "# HELP repro_obs_sim_time Current simulated time.",
            "# TYPE repro_obs_sim_time gauge",
            f"repro_obs_sim_time {sim.scheduler.now}",
            "# HELP repro_obs_events_processed Events the scheduler "
            "has executed.",
            "# TYPE repro_obs_events_processed counter",
            f"repro_obs_events_processed "
            f"{sim.scheduler.events_processed}",
        ]
        if hub is not None:
            lines += [
                "# HELP repro_obs_ledger_drains_total Batched-ledger "
                "drain passes completed.",
                "# TYPE repro_obs_ledger_drains_total counter",
                f"repro_obs_ledger_drains_total {hub.drains}",
                "# HELP repro_obs_ledger_rows_total Ledger rows "
                "replayed through the monitors.",
                "# TYPE repro_obs_ledger_rows_total counter",
                f"repro_obs_ledger_rows_total {hub.rows_dispatched}",
                "# HELP repro_obs_certified_until Sim-time through "
                "which batched monitors have replayed.",
                "# TYPE repro_obs_certified_until gauge",
                f"repro_obs_certified_until {hub.certified_until}",
            ]
            timers = hub.timers.snapshot()
            if timers:
                lines += [
                    "# HELP repro_obs_wall_seconds Wall time spent "
                    "per subsystem section.",
                    "# TYPE repro_obs_wall_seconds counter",
                ]
                for section in sorted(timers):
                    label = escape_label_value(section)
                    lines.append(
                        f'repro_obs_wall_seconds{{section="{label}"}} '
                        f"{timers[section]:.6f}"
                    )
            lines += [
                "# HELP repro_obs_violations Invariant violations "
                "per monitor.",
                "# TYPE repro_obs_violations gauge",
            ]
            for monitor in hub.monitors:
                label = escape_label_value(monitor.name)
                lines.append(
                    f'repro_obs_violations{{monitor="{label}"}} '
                    f"{len(monitor.violations)}"
                )
        return "\n".join(lines) + "\n"

    def health_json(self) -> Dict[str, Any]:
        """The ``/health`` payload."""
        sim = self.sim
        return {
            "status": "ok",
            "sim_time": sim.scheduler.now,
            "events_processed": sim.scheduler.events_processed,
            "pending_events": sim.scheduler.pending_count,
            "monitoring": getattr(sim, "monitor_hub", None) is not None,
        }

    def invariants_json(self) -> Dict[str, Any]:
        """The ``/invariants`` payload."""
        sim = self.sim
        hub = getattr(sim, "monitor_hub", None)
        if hub is None:
            return {"monitors": {}, "ok": True, "drains": 0,
                    "rows_dispatched": 0, "certified_until": 0.0}
        monitors = {
            monitor.name: {
                "violations": len(monitor.violations),
                "latest": (
                    str(monitor.violations[-1])
                    if monitor.violations else None
                ),
            }
            for monitor in hub.monitors
        }
        return {
            "monitors": monitors,
            "ok": all(
                not monitor.violations for monitor in hub.monitors
            ),
            "drains": hub.drains,
            "rows_dispatched": hub.rows_dispatched,
            "certified_until": hub.certified_until,
        }


def _make_handler(server: TelemetryServer):
    """A request-handler class closed over one TelemetryServer."""

    class Handler(BaseHTTPRequestHandler):
        # Routes only read simulator state; mutation never happens
        # from the serving thread.
        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                body = server.metrics_text().encode("utf-8")
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/health":
                body = (json.dumps(server.health_json(), sort_keys=True)
                        + "\n").encode("utf-8")
                ctype = "application/json"
            elif path == "/invariants":
                body = (json.dumps(server.invariants_json(),
                                   sort_keys=True)
                        + "\n").encode("utf-8")
                ctype = "application/json"
            else:
                self.send_error(404, "unknown route")
                return
            self.send_response(200)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            # Scrapes are high-frequency; stay quiet on stderr.
            pass

    return Handler
