"""Batched observability: exact monitoring off the hot path.

The paper's two-tier cost argument (ICDCS 1994) is certified by the
invariant monitors in :mod:`repro.monitor`; this package takes their
per-event dispatch off the simulation's hot path without losing a
single event (ROADMAP item 3's "<10% observability" target) and runs
the result as a long-lived telemetry service (ROADMAP item 5):

* :mod:`repro.obs.ledger` -- the append-only per-etype ledger segments
  hot emit sites write fixed-shape row tuples into, drained in batch
  through :meth:`repro.monitor.hub.MonitorHub.consume_batch`.
* :mod:`repro.obs.timing` -- per-subsystem wall-time counters
  (scheduler / network / monitor / drain) exported into BENCH records
  and the ``/metrics`` endpoint.
* :mod:`repro.obs.service` -- the stdlib-only HTTP telemetry service
  behind ``repro serve``: ``/metrics`` (Prometheus text), ``/health``
  and ``/invariants`` (rolling certification from the drain pass).

Select the batched tier with ``Simulation(monitors=True,
monitor_mode="batched")``; see ``docs/observability.md`` for the three
fidelity tiers and the measured overhead of each.
"""

from __future__ import annotations

from repro.obs.ledger import LedgerSite
from repro.obs.service import TelemetryServer
from repro.obs.timing import WallTimers, instrument_network

__all__ = [
    "LedgerSite",
    "TelemetryServer",
    "WallTimers",
    "instrument_network",
]
