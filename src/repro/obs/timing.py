"""Per-subsystem wall-time counters for the observability pipeline.

:class:`WallTimers` is a tiny named-accumulator bag the batched
monitor hub, the facade and the telemetry service share.  The
canonical sections:

* ``scheduler`` -- wall time inside ``Simulation.run``/``drain`` minus
  the observability sections below (i.e. protocol + event-queue work).
* ``network``   -- wall time inside the instrumented send entry points
  (a subset of ``scheduler``; only measured when
  :func:`instrument_network` was installed, because the per-message
  wrapper is not free).
* ``drain``     -- collecting + ordering ledger rows.
* ``monitor``   -- replaying drained batches through the monitors.

The counters surface two ways: through the ``/metrics`` endpoint of
``repro serve`` (``repro_obs_wall_seconds{section=...}``) and, via
:func:`publish_run`/:func:`consume_last_run`, into the
``subsystem_wall_s`` field of BENCH records for scenarios that opt in
(``smoke_ledger``).  Part of the batched observability pipeline
(ROADMAP item 3) and the service mode (ROADMAP item 5).
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

__all__ = [
    "WallTimers",
    "instrument_network",
    "publish_run",
    "consume_last_run",
]


class WallTimers:
    """Named wall-time accumulators (seconds, monotonically growing)."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}

    def add(self, section: str, seconds: float) -> None:
        counters = self.counters
        counters[section] = counters.get(section, 0.0) + seconds

    def get(self, section: str) -> float:
        return self.counters.get(section, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, stable for JSON export."""
        return dict(self.counters)

    def reset(self) -> None:
        self.counters.clear()


def instrument_network(network, timers: WallTimers) -> None:
    """Shadow the network's send entry points with timed wrappers.

    Installs per-instance wrappers over ``send_fixed``,
    ``send_wireless_up`` and ``send_wireless_down`` that accumulate
    into ``timers["network"]``.  Deliberately opt-in (the serve loop
    and the ``smoke_ledger`` scenario): the wrapper costs a
    ``perf_counter`` pair per message, which the gated headline
    benchmarks must not pay.
    """
    for name in ("send_fixed", "send_wireless_up", "send_wireless_down"):
        original = getattr(network, name)

        def timed(*args, _original=original, _timers=timers, **kwargs):
            start = perf_counter()
            try:
                return _original(*args, **kwargs)
            finally:
                _timers.add("network", perf_counter() - start)

        setattr(network, name, timed)


#: snapshot of the most recent opt-in scenario run, picked up by the
#: perf harness right after the scenario returns.
_last_run: Optional[Dict[str, float]] = None


def publish_run(snapshot: Dict[str, float]) -> None:
    """Record one finished run's timer snapshot for the harness."""
    global _last_run
    _last_run = dict(snapshot)


def consume_last_run() -> Optional[Dict[str, float]]:
    """Pop the last published snapshot (``None`` when absent)."""
    global _last_run
    snapshot = _last_run
    _last_run = None
    return snapshot
