"""Health telemetry: periodic gauge snapshots of a running simulation.

:class:`HealthMonitor` samples a small set of gauges every
``interval`` sim-time units (piggybacked on the event stream — the
monitor never schedules anything): message throughput and in-flight
backlog, scheduler depth, per-MSS cell load, the oldest pending
request's age (from a co-registered
:class:`~repro.monitor.liveness.LivenessMonitor`) and the cumulative
violation count.  The series exports as JSONL (one sample per line,
deterministic key order) or as a Prometheus-style text page of the
latest sample — the two formats dashboards and scrapers expect.

Sampling is edge-triggered: the first event at or past the next
boundary takes the sample, so a quiet stretch produces one late sample
rather than a burst of identical ones.  ``finalize`` always appends a
closing sample so the series covers the whole run.
Part of the online monitoring layer (ROADMAP observability arc).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.monitor.base import Monitor
from repro.monitor.liveness import LivenessMonitor
from repro.trace.events import TraceEvent

__all__ = ["HealthMonitor", "escape_label_value"]


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value per the text exposition format.

    Backslash, double-quote and newline are the only characters the
    format requires escaping inside ``label="..."``; everything else
    passes through verbatim.  Shared by :meth:`HealthMonitor.to_prometheus`
    and the live ``/metrics`` endpoint
    (:mod:`repro.obs.service`).
    """
    return (
        value.replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class HealthMonitor(Monitor):
    """Periodic gauge snapshots, exported as JSONL or Prometheus text."""

    name = "health"
    interests = None  # gauges need the full event stream
    #: under sampling the send/recv counters become sampled counts
    #: (scale by the hub's stride to estimate totals); the per-sample
    #: gauges read ground truth from the scheduler/network and stay
    #: exact.  Documented in docs/performance.md.
    samplable = True

    def __init__(self, interval: float = 25.0) -> None:
        super().__init__()
        self.interval = float(interval)
        self.samples: List[Dict[str, Any]] = []
        self._next_sample = 0.0
        self._sends = 0
        self._recvs = 0
        self._faults = 0
        self._cs_entries = 0

    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        if etype.startswith("send."):
            self._sends += 1
        elif etype == "recv":
            self._recvs += 1
        elif etype.startswith("fault.") or etype == "wireless.lost":
            self._faults += 1
        elif etype == "cs.enter":
            self._cs_entries += 1
        if event.time >= self._next_sample:
            self.sample(event.time)
            self._next_sample = event.time + self.interval

    def sample(self, now: float) -> Dict[str, Any]:
        """Take one gauge snapshot at sim-time ``now``."""
        record: Dict[str, Any] = {
            "t": now,
            "sends": self._sends,
            "recvs": self._recvs,
            "in_flight": self._sends - self._recvs,
            "faults": self._faults,
            "cs_entries": self._cs_entries,
        }
        network = self.network
        if network is not None:
            scheduler = network.scheduler
            record["pending_events"] = scheduler.pending_count
            record["events_processed"] = scheduler.events_processed
            record["mss_load"] = {
                mss_id: len(network.mss(mss_id).local_mhs)
                for mss_id in network.mss_ids()
            }
        hub = self.hub
        if hub is not None:
            liveness = hub.monitor(LivenessMonitor)
            if liveness is not None:
                record["pending_requests"] = len(liveness.pending)
                record["oldest_pending_age"] = (
                    liveness.oldest_pending_age(now))
            record["violations"] = sum(
                len(m.violations) for m in hub.monitors)
        self.samples.append(record)
        return record

    def finalize(self, now: float) -> None:
        self.sample(now)

    # -- exports ------------------------------------------------------
    def to_jsonl(self) -> str:
        """The full time-series, one JSON object per line."""
        return "".join(
            json.dumps(sample, sort_keys=True) + "\n"
            for sample in self.samples
        )

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The latest sample as Prometheus text exposition format."""
        if not self.samples:
            return ""
        latest = self.samples[-1]
        lines: List[str] = []

        def gauge(name: str, value, help_text: str) -> None:
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} gauge")
            lines.append(f"{prefix}_{name} {value}")

        gauge("sim_time", latest["t"], "Simulated time of this sample.")
        gauge("sends_total", latest["sends"],
              "Messages transmitted so far.")
        gauge("recvs_total", latest["recvs"],
              "Messages received so far.")
        gauge("in_flight", latest["in_flight"],
              "Messages sent but not (yet) received.")
        gauge("faults_total", latest["faults"],
              "Injected fault decisions and wireless losses so far.")
        gauge("cs_entries_total", latest["cs_entries"],
              "Critical-section entries so far.")
        if "pending_events" in latest:
            gauge("scheduler_pending_events", latest["pending_events"],
                  "Events waiting in the scheduler queue.")
            gauge("scheduler_events_processed",
                  latest["events_processed"],
                  "Events the scheduler has executed.")
        if "pending_requests" in latest:
            gauge("pending_requests", latest["pending_requests"],
                  "Mutual-exclusion requests awaiting service.")
            gauge("oldest_pending_age", latest["oldest_pending_age"],
                  "Sim-time age of the oldest pending request.")
        if "violations" in latest:
            gauge("invariant_violations", latest["violations"],
                  "Invariant violations observed by all monitors.")
        if "mss_load" in latest:
            lines.append(f"# HELP {prefix}_mss_load Connected MHs per "
                         "support station.")
            lines.append(f"# TYPE {prefix}_mss_load gauge")
            for mss_id, load in sorted(latest["mss_load"].items()):
                label = escape_label_value(mss_id)
                lines.append(
                    f'{prefix}_mss_load{{mss="{label}"}} {load}')
        return "\n".join(lines) + "\n"
