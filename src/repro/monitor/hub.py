"""The monitor hub: fan-out from the trace stream to the monitors.

:class:`MonitorHub` *is* a tracer — it subclasses
:class:`~repro.trace.events.Tracer` and is installed as
``network.trace``, so every instrumentation point that already feeds
the trace layer feeds the monitors too, through the same
``_trace_on``-style guard that makes the whole layer free when off.
Events are dispatched through a compiled per-event-type table: the
first emit of each etype resolves, once, which monitors want it, which
are gated on a message-kind suffix, and which are sampled — so the
steady-state hot path is one dict lookup plus the delivery loop.

Two recording modes:

* ``record=True`` — behaves exactly like a :class:`Tracer` (the event
  list grows; exporters and walkthroughs keep working) *and* monitors
  run.  This is ``Simulation(trace=True, monitors=...)``.
* ``record=False`` — events are dispatched to the monitors and then
  dropped, so memory stays bounded on long runs.  The hub recycles the
  :class:`TraceEvent` objects through a :class:`repro.pool.Pool` free
  list (monitors are pure observers and never retain event objects),
  and skips constructing the event entirely when no monitor would see
  it.  This is ``Simulation(trace=False, monitors=...)``.

Sampling (``sample_rate < 1.0``, ROADMAP item 3's "observability for
<10%" goal): event types are thinned with a deterministic stride —
every ``round(1/rate)``-th occurrence is delivered, starting with the
first — but only for monitors that declare ``samplable = True`` and
only for etypes outside their ``critical_etypes``.  Safety monitors
with exact state machines keep seeing every event at any rate, so a
sampled run can *miss* a violation in a thinned high-rate stream but
can never report a false one.  ``etype_filters`` drops whole event
types outright (ids are still allocated, so causality chains are
byte-identical).

Offline replay: :func:`replay_events` drives the same monitors over a
recorded event list (for example a canonical scenario's trace), which
is how the ``repro monitor`` CLI certifies the walkthrough scenarios.
Part of the online monitoring layer (ROADMAP observability arc).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.monitor.base import Monitor, Violation
from repro.monitor.liveness import _REQUEST_SUFFIXES
from repro.obs.ledger import LedgerSite
from repro.obs.timing import WallTimers
from repro.pool import Pool
from repro.trace.events import TraceEvent, Tracer

__all__ = ["MonitorHub", "replay_events", "replay_events_batched"]

#: shared empty detail payload for scratch replay events; monitors are
#: pure observers and never retain or mutate the dict.
_EMPTY_DETAIL: Dict[str, Any] = {}


def _blank_event() -> TraceEvent:
    return TraceEvent(id=0, parent_id=None, time=0.0, etype="")


def _reset_event(event: TraceEvent) -> None:
    # Drop the payload dict so the free list cannot pin protocol
    # objects alive; scalar fields are overwritten on acquire.
    event.detail = None  # type: ignore[assignment]


def _fill(scratch: TraceEvent, row: tuple, etype: str) -> None:
    """Materialize one ledger row into the reused scratch event."""
    scratch.id = row[0]
    scratch.parent_id = row[1]
    scratch.time = row[2]
    scratch.etype = etype
    scratch.scope = row[3]
    scratch.src = row[4]
    scratch.dst = row[5]
    scratch.kind = row[6]
    detail = row[7]
    scratch.detail = detail if detail is not None else _EMPTY_DETAIL
    scratch.category = row[8]


def _startswith_mss(host_id: str) -> bool:
    """FifoOrderMonitor's unbound-network fallback for ``_is_mss``."""
    return host_id.startswith("mss")


class _Entry:
    """Compiled dispatch state for one event type.

    ``targets`` is an ordered tuple of ``(on_event, suffixes, sampled)``
    triples preserving the pre-compilation delivery order (explicit
    interests in registration order, then wildcards), so a run at
    ``sample_rate=1.0`` is byte-identical to the uncompiled hub.
    """

    __slots__ = (
        "targets",
        "filtered",
        "always",
        "gate_suffixes",
        "has_sampled",
        "stride",
        "counter",
    )

    def __init__(
        self,
        targets: Tuple[Tuple[Any, Optional[Tuple[str, ...]], bool], ...],
        filtered: bool,
        stride: int,
    ) -> None:
        self.targets = targets
        self.filtered = filtered
        #: at least one target is unconditional (no gate, not sampled),
        #: so the event object is always needed.
        self.always = any(
            suffixes is None and not sampled
            for _, suffixes, sampled in targets
        )
        gate: Tuple[str, ...] = ()
        for _, suffixes, _ in targets:
            if suffixes:
                gate += suffixes
        #: union of every target's kind-suffix gate; used to decide
        #: whether a skipped-sample event still needs constructing.
        self.gate_suffixes: Optional[Tuple[str, ...]] = gate or None
        self.has_sampled = any(sampled for _, _, sampled in targets)
        self.stride = stride
        #: countdown cell; primed at 1 so the first occurrence of every
        #: etype is always delivered.
        self.counter = [1]


class MonitorHub(Tracer):
    """A tracer that evaluates invariant monitors online.

    Monitors are pure observers fed from :meth:`emit` (online) or
    :meth:`dispatch` (offline replay).  The hub aggregates their
    violations and exposes one ``finalize()``/``ok``/``report()``
    surface for tests, the facade, and the CLI.

    Args:
        scheduler: clock source (``None`` for offline replay).
        monitors: the monitor instances to drive.
        record: keep the full event list (tracer behaviour) or drop
            events after dispatch (bounded memory).
        sample_rate: fraction of high-rate events delivered to
            ``samplable`` monitors — realized as a deterministic
            per-etype stride of ``round(1/sample_rate)``.  ``1.0``
            (default) delivers everything.
        etype_filters: event types dropped entirely (not recorded, not
            dispatched; ids still allocated).
        batch: run the batched-exact tier — emits append fixed-shape
            rows to per-etype ledgers (:mod:`repro.obs.ledger`) and
            the monitors consume them in drained batches with
            per-event semantics intact.  Mutually exclusive with
            sampling (``sample_rate`` must stay 1.0): batching keeps
            every event, sampling thins them.
        drain_interval: sim-time quantum between ledger drains in
            batched mode (drains also trigger on segment fill and
            always before ``finalize``/``report``/``violations``).
    """

    def __init__(
        self,
        scheduler,
        monitors: Sequence[Monitor],
        record: bool = True,
        sample_rate: float = 1.0,
        etype_filters: Sequence[str] = (),
        batch: bool = False,
        drain_interval: float = 50.0,
    ) -> None:
        super().__init__(scheduler)
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1]: {sample_rate}"
            )
        if batch and sample_rate != 1.0:
            raise ConfigurationError(
                "batched monitoring is exact by construction; it "
                "cannot be combined with sample_rate < 1.0"
            )
        if batch and not monitors:
            raise ConfigurationError(
                "batched monitoring needs at least one monitor"
            )
        self.record = record
        self.sample_rate = sample_rate
        self.stride = max(1, round(1.0 / sample_rate))
        self.etype_filters = frozenset(etype_filters)
        self.monitors: List[Monitor] = list(monitors)
        self.network = None
        self._finalized = False
        self._table: Dict[str, _Entry] = {}
        self._event_pool = Pool(
            _blank_event,
            reset=_reset_event,
            capacity=64,
            name="monitor.trace_events",
        )
        # -- batched-tier state (cheap to carry when off) --------------
        self._batch = batch
        self.drain_interval = float(drain_interval)
        self.timers = WallTimers()
        #: ledger drains performed / rows replayed, for /invariants.
        self.drains = 0
        self.rows_dispatched = 0
        #: sim-time through which the monitors have certified the run
        #: (the clock at the end of the last drain); rows emitted after
        #: this instant are still in the ledger awaiting replay.
        self.certified_until = 0.0
        self._sites: Dict[str, LedgerSite] = {}
        #: the shared append segment: every site's rows land here, so
        #: they are already in global emission order (the same order
        #: that allocates the monotone event ids) and the drain pass
        #: replays them without collecting or sorting.  Consumed in
        #: place and cleared, never swapped -- appender closures bind
        #: the list object directly.
        self._ledger: List[tuple] = []
        self._segment_cap = 8192
        self._drain_due = self.drain_interval
        self._draining = False
        self._scratch = _blank_event()
        for monitor in self.monitors:
            monitor.attach(self)
        # The fast consume loop folds the two standard wildcard
        # monitors (Liveness then Health, in that order, at the end of
        # the list) inline; any other wildcard layout replays through
        # the generic scratch-event loop instead.
        self._fast_consume = False
        self._liveness = None
        self._health = None
        self._liveness_step = 0.0
        self._fifo = None
        self._rel = None
        if batch:
            self._detect_fast_layout()

    # -- wiring -------------------------------------------------------
    def bind(self, network) -> None:
        """Give monitors ground-truth access to the live network."""
        self.network = network
        for monitor in self.monitors:
            monitor.bind(network)

    def monitor(self, cls) -> Optional[Monitor]:
        """The first registered monitor of class ``cls``, if any."""
        for monitor in self.monitors:
            if isinstance(monitor, cls):
                return monitor
        return None

    # -- dispatch-table compilation -----------------------------------
    def _compile(self, etype: str) -> _Entry:
        """Resolve, once, how events of ``etype`` are delivered."""
        ordered: List[Monitor] = [
            m
            for m in self.monitors
            if m.interests is not None and etype in m.interests
        ]
        ordered += [m for m in self.monitors if m.interests is None]
        sampling = self.stride > 1
        targets = []
        for monitor in ordered:
            suffixes = (
                monitor.kind_gates.get(etype) if monitor.kind_gates else None
            )
            # A kind-gated target is never sampled: the gate already
            # narrows it to the exact kinds its state machine consumes
            # (kind-scoped analogue of critical_etypes).
            sampled = (
                sampling
                and monitor.samplable
                and suffixes is None
                and etype not in monitor.critical_etypes
            )
            targets.append((monitor.on_event, suffixes, sampled))
        entry = _Entry(
            tuple(targets), etype in self.etype_filters, self.stride
        )
        self._table[etype] = entry
        return entry

    # -- batched tier: compilation ------------------------------------
    def _detect_fast_layout(self) -> None:
        """Decide whether drained batches may use the inline folds."""
        from repro.monitor.health import HealthMonitor
        from repro.monitor.liveness import LivenessMonitor
        from repro.monitor.safety import (
            FifoOrderMonitor,
            ReliableDeliveryMonitor,
        )

        monitors = self.monitors
        if (
            len(monitors) >= 2
            and type(monitors[-2]) is LivenessMonitor
            and type(monitors[-1]) is HealthMonitor
            and [m for m in monitors if m.interests is None]
            == [monitors[-2], monitors[-1]]
        ):
            self._liveness = monitors[-2]
            self._health = monitors[-1]
            self._liveness_step = self._liveness.check_interval
            self._fast_consume = True
            # Exact-type finds for the per-row inline transitions the
            # consume loop performs on the hottest sites; a subclass
            # (overridden on_event) never matches, so it replays
            # through the generic scratch path instead.
            for monitor in monitors:
                if type(monitor) is FifoOrderMonitor and self._fifo is None:
                    self._fifo = monitor
                if (type(monitor) is ReliableDeliveryMonitor
                        and self._rel is None):
                    self._rel = monitor

    def _compile_site(self, etype: str) -> LedgerSite:
        """Resolve, once, how batched rows of ``etype`` are replayed."""
        ordered: List[Monitor] = [
            m
            for m in self.monitors
            if m.interests is not None and etype in m.interests
        ]
        explicit_count = len(ordered)
        ordered += [m for m in self.monitors if m.interests is None]
        targets = tuple(
            (
                monitor.on_event,
                monitor.kind_gates.get(etype) if monitor.kind_gates
                else None,
            )
            for monitor in ordered
        )
        plan = targets[:explicit_count] or None
        site = LedgerSite(
            etype, targets, plan, etype in self.etype_filters
        )
        if self._fast_consume and plan is not None:
            from repro.obs.ledger import (
                HEALTH_RECV,
                HEALTH_SEND,
                LIVENESS_TICK,
                MODE_RECV_STD,
                MODE_SEND_GATED,
            )

            fifo, rel = self._fifo, self._rel
            if (
                etype == "recv"
                and fifo is not None
                and rel is not None
                and plan == ((fifo.on_event, None), (rel.on_event, None))
                and site.health_code == HEALTH_RECV
                and site.liveness_code == LIVENESS_TICK
            ):
                site.mode = MODE_RECV_STD
            elif (
                len(plan) == 1
                and plan[0][1] is not None
                and site.health_code == HEALTH_SEND
                and site.liveness_code == LIVENESS_TICK
            ):
                site.mode = MODE_SEND_GATED
                site.gate_fn = plan[0][0]
                site.gate_suffixes = plan[0][1]
        self._sites[etype] = site
        return site

    def call_site_batch(self, etype: str, category: Optional[str] = None):
        """Compiled ledger appender for one hot instrumentation point.

        Returns a closure ``append(scope, src, dst, kind=None,
        parent=None, detail=None) -> event_id`` that allocates the
        event id, stamps the caller-free context parent exactly like
        :meth:`emit`, appends one row to the hub's shared segment, and
        triggers a drain on segment fill.  (The sim-time drain quantum
        is checked only on the :meth:`emit` path and before any
        observation; drain cadence is semantically invisible, so the
        hottest sites skip the clock comparison.)  Returns ``None``
        when the hub is not batched -- or when it is recording, where
        sites must go through :meth:`emit` so rows keep the full
        detail payload the materialized trace needs -- and callers
        fall back to the gate/emit paths.
        """
        if not self._batch or self.record:
            return None
        site = self._sites.get(etype)
        if site is None:
            site = self._compile_site(etype)
        if site.filtered:
            def append_filtered(
                scope, src, dst, kind=None, parent=None, detail=None,
                _self=self,
            ):
                # Ids are still allocated so causality chains stay
                # identical across filter configurations.
                event_id = _self._next_id
                _self._next_id = event_id + 1
                return event_id

            return append_filtered
        from repro.obs.ledger import (
            HEALTH_SEND,
            LIVENESS_TICK,
            MODE_PLAIN,
            MODE_SEND_GATED,
        )

        if (
            self._fast_consume
            and site.health_code == HEALTH_SEND
            and site.liveness_code == LIVENESS_TICK
        ):
            # Plain ticking sends: the only consume-side effects are a
            # health send-count and a liveness clock tick, neither of
            # which needs anything beyond the timestamp.  The row is a
            # bare float (the consume loops type-switch on it), which
            # skips the parent resolution and the 10-slot tuple build
            # on the hottest send paths.  Kind-gated sites still write
            # a full row for the (rare) kinds their plan target
            # consumes -- e.g. ``*.token`` feeding TokenUniqueness.
            if site.mode == MODE_SEND_GATED:
                def append_send(
                    scope, src, dst, kind=None, parent=None, detail=None,
                    _self=self, _site=site, _rows=self._ledger,
                    _stack=self._stack, _scheduler=self.scheduler,
                    _category=category, _cap=self._segment_cap,
                    _gate=site.gate_suffixes,
                ):
                    event_id = _self._next_id
                    _self._next_id = event_id + 1
                    if kind is not None and kind.endswith(_gate):
                        if parent is None and _stack:
                            parent = _stack[-1]
                        _rows.append((
                            event_id, parent, _scheduler.now, scope,
                            src, dst, kind, detail, _category, _site,
                        ))
                    else:
                        _rows.append(_scheduler.now)
                    if len(_rows) >= _cap:
                        _self.drain_batches()
                    return event_id

                return append_send
            if site.mode == MODE_PLAIN:
                def append_plain_send(
                    scope, src, dst, kind=None, parent=None, detail=None,
                    _self=self, _rows=self._ledger,
                    _scheduler=self.scheduler, _cap=self._segment_cap,
                ):
                    event_id = _self._next_id
                    _self._next_id = event_id + 1
                    _rows.append(_scheduler.now)
                    if len(_rows) >= _cap:
                        _self.drain_batches()
                    return event_id

                return append_plain_send
        def append(
            scope, src, dst, kind=None, parent=None, detail=None,
            _self=self, _site=site, _rows=self._ledger,
            _stack=self._stack, _scheduler=self.scheduler,
            _category=category, _cap=self._segment_cap,
        ):
            if parent is None and _stack:
                parent = _stack[-1]
            event_id = _self._next_id
            _self._next_id = event_id + 1
            _rows.append((
                event_id, parent, _scheduler.now, scope, src, dst,
                kind, detail, _category, _site,
            ))
            if len(_rows) >= _cap:
                _self.drain_batches()
            return event_id

        return append

    # -- batched tier: drain ------------------------------------------
    def drain_batches(self) -> int:
        """Replay every pending ledger row through the monitors.

        The shared segment is already in global emission order (appends
        happen in the single-threaded execution order that allocates
        the event ids), so the drain hands it straight to
        :meth:`consume_batch` and clears it in place afterwards --
        appender closures keep their direct binding to the list object.
        Returns the number of rows replayed.  Reentrant calls (a
        monitor running inside the replay) are no-ops.
        """
        if not self._batch or self._draining:
            return 0
        rows = self._ledger
        if self.scheduler is not None:
            self._drain_due = self.scheduler.now + self.drain_interval
        count = len(rows)
        if count == 0:
            return 0
        started = perf_counter()
        self._draining = True
        try:
            self.consume_batch(rows)
        finally:
            self._draining = False
        consumed = perf_counter()
        del rows[:]
        self.drains += 1
        self.rows_dispatched += count
        if self.scheduler is not None:
            self.certified_until = self.scheduler.now
        timers = self.timers
        timers.add("monitor", consumed - started)
        timers.add("drain", perf_counter() - consumed)
        return count

    def consume_batch(self, rows: Sequence[tuple]) -> None:
        """Replay one ordered batch of ledger rows with per-event
        semantics (delivery order, trace ids, violation attribution
        all match the per-event dispatch path)."""
        if self._fast_consume and not self.record:
            self._consume_fast(rows)
        else:
            self._consume_generic(rows)

    def _consume_generic(self, rows: Sequence[tuple]) -> None:
        """Scratch-event replay for any monitor layout.

        In ``record=True`` runs this also materializes the real
        :class:`TraceEvent` list, so a batched traced run keeps the
        exporters and walkthroughs working.
        """
        record = self.record
        events = self.events
        scratch = self._scratch
        for row in rows:
            site = row[9]
            kind = row[6]
            detail = row[7]
            if record:
                event = TraceEvent(
                    id=row[0],
                    parent_id=row[1],
                    time=row[2],
                    etype=site.etype,
                    scope=row[3],
                    category=row[8],
                    src=row[4],
                    dst=row[5],
                    kind=kind,
                    detail=detail if detail is not None else {},
                )
                events.append(event)
            else:
                event = scratch
                event.id = row[0]
                event.parent_id = row[1]
                event.time = row[2]
                event.etype = site.etype
                event.scope = row[3]
                event.category = row[8]
                event.src = row[4]
                event.dst = row[5]
                event.kind = kind
                event.detail = (
                    detail if detail is not None else _EMPTY_DETAIL
                )
            for on_event, suffixes in site.targets:
                if suffixes is not None and (
                    kind is None or not kind.endswith(suffixes)
                ):
                    continue
                on_event(event)
        if not record:
            scratch.detail = None  # type: ignore[assignment]

    def _consume_fast(self, rows: Sequence) -> None:
        """The standard-layout replay loop, tuned for the ≤1.10x gate.

        Rows are either 10-tuples or bare floats (plain ticking sends:
        just the timestamp -- see :meth:`call_site_batch`).  Tuple
        dispatch switches on the site's compiled ``mode``: the two
        hottest shapes (``recv`` feeding FifoOrder+ReliableDelivery,
        kind-gated sends feeding TokenUniqueness) run their state
        transitions inline on captured monitor internals, everything
        else replays through a reused scratch event.  The two trailing
        wildcard monitors are folded inline in every mode —
        HealthMonitor's counters and LivenessMonitor's clock/stall/
        deadline logic run on locals and write back at sample points
        and at the end — preserving the per-event delivery order
        (explicit targets, then liveness, then health) exactly.
        Violation-bearing rows take the slow path (a scratch build plus
        the monitor's own ``on_event``), so violation messages and
        attribution stay byte-identical with per-event dispatch.

        Two loop variants share that structure.  Timestamps are
        nondecreasing, so every consecutive event gap in the batch is
        bounded by ``batch end - last event time before the batch``:
        when that bound is within the liveness stall gap, no stall can
        fire anywhere in the batch and the *dense* loop replaces the
        per-row stall/deadline/sample checks with a single compare
        against the next boundary of interest.  Otherwise (sparse
        batches, e.g. a chaos scenario's quiet spell) the *sparse*
        loop keeps the full per-row liveness clock, including exact
        stall attribution.
        """
        liveness = self._liveness
        last_time = liveness._last_event_time
        tail = rows[-1]
        end_t = tail if type(tail) is float else tail[2]
        base_t = last_time
        if base_t is None:
            head = rows[0]
            base_t = head if type(head) is float else head[2]
        if end_t - base_t > liveness.stall_gap:
            self._consume_sparse(rows)
            return
        health = self._health
        pending = liveness.pending
        flagged = liveness._flagged
        last_token = liveness._last_token
        starved = liveness._starved
        check_step = self._liveness_step
        next_check = liveness._next_check
        check_deadlines = liveness._check_deadlines
        h_sends = health._sends
        h_recvs = health._recvs
        h_faults = health._faults
        h_cs = health._cs_entries
        next_sample = health._next_sample
        interval = health.interval
        scratch = self._scratch
        fifo = self._fifo
        rel = self._rel
        if fifo is not None and rel is not None:
            fifo_last = fifo._last
            fifo_skip = fifo._SKIP_KINDS
            fifo_on = fifo.on_event
            net = fifo.network
            is_mss = (net._mss.__contains__ if net is not None
                      else _startswith_mss)
            rel_sends = rel._sends
            rel_released = rel._released
            rel_on = rel.on_event
        if pending and next_check < next_sample:
            boundary = next_check
        else:
            boundary = next_sample
        for row in rows:
            if type(row) is float:  # plain ticking send: time only
                t = row
                h_sends += 1
            else:
                site = row[9]
                t = row[2]
                mode = site.mode
                if mode == 2:  # MODE_RECV_STD: FifoOrder + Reliable
                    parent = row[1]
                    if parent is not None:
                        kind = row[6]
                        if kind not in fifo_skip:
                            src = row[4]
                            dst = row[5]
                            if (src is not None and dst is not None
                                    and is_mss(src) and is_mss(dst)):
                                channel = (src, dst)
                                last = fifo_last.get(channel)
                                if last is None or parent > last:
                                    fifo_last[channel] = parent
                                else:  # violation: full body
                                    _fill(scratch, row, site.etype)
                                    fifo_on(scratch)
                        meta = rel_sends.get(parent)
                        if meta is not None:
                            channel, seq = meta
                            if seq > rel_released.get(channel, 0):
                                rel_released[channel] = seq
                            else:
                                _fill(scratch, row, site.etype)
                                rel_on(scratch)
                    h_recvs += 1
                elif mode == 3:  # MODE_SEND_GATED: suffix-gated target
                    kind = row[6]
                    if kind is not None and kind.endswith(
                        site.gate_suffixes
                    ):
                        _fill(scratch, row, site.etype)
                        site.gate_fn(scratch)
                    h_sends += 1
                else:
                    kind = row[6]
                    if mode == 0:  # MODE_GENERIC: scratch replay
                        built = False
                        for on_event, suffixes in site.plan:
                            if suffixes is not None and (
                                kind is None
                                or not kind.endswith(suffixes)
                            ):
                                continue
                            if not built:
                                _fill(scratch, row, site.etype)
                                built = True
                            on_event(scratch)
                    # -- LivenessMonitor.on_event, folded --------------
                    code = site.liveness_code
                    if code == 2:
                        # send.wireless_up is kind-gated: non-request
                        # uplinks are not delivered to liveness at all.
                        if kind is not None and kind.endswith(
                            _REQUEST_SUFFIXES
                        ):
                            pending.setdefault((row[3], row[4]), t)
                            if next_check < boundary:
                                boundary = next_check
                        else:
                            code = 0
                    elif code == 3:
                        pending.setdefault((row[3], row[4]), t)
                        if next_check < boundary:
                            boundary = next_check
                    elif code == 4:
                        key = (row[3], row[4])
                        pending.pop(key, None)
                        flagged.discard(key)
                        if not pending:
                            boundary = next_sample
                    elif code == 5:
                        last_token[row[3]] = t
                        starved.discard(row[3])
                    # -- HealthMonitor.on_event, folded ----------------
                    hc = site.health_code
                    if hc == 1:
                        h_sends += 1
                    elif hc == 2:
                        h_recvs += 1
                    elif hc == 3:
                        h_faults += 1
                    elif hc == 4:
                        h_cs += 1
                    if code == 0:
                        # Non-ticking row: the liveness clock does not
                        # advance, but a sample boundary still fires.
                        if t >= next_sample:
                            health._sends = h_sends
                            health._recvs = h_recvs
                            health._faults = h_faults
                            health._cs_entries = h_cs
                            liveness._next_check = next_check
                            liveness._last_event_time = last_time
                            health.sample(t)
                            next_sample = t + interval
                            if pending and next_check < next_sample:
                                boundary = next_check
                            else:
                                boundary = next_sample
                        continue
            # -- shared ticking tail: one compare in the steady state --
            last_time = t
            if t >= boundary:
                if pending and t >= next_check:
                    check_deadlines(t)
                    next_check = t + check_step
                if t >= next_sample:
                    health._sends = h_sends
                    health._recvs = h_recvs
                    health._faults = h_faults
                    health._cs_entries = h_cs
                    liveness._next_check = next_check
                    liveness._last_event_time = t
                    health.sample(t)
                    next_sample = t + interval
                if pending and next_check < next_sample:
                    boundary = next_check
                else:
                    boundary = next_sample
        health._sends = h_sends
        health._recvs = h_recvs
        health._faults = h_faults
        health._cs_entries = h_cs
        health._next_sample = next_sample
        liveness._next_check = next_check
        liveness._last_event_time = last_time
        scratch.detail = None  # type: ignore[assignment]

    def _consume_sparse(self, rows: Sequence) -> None:
        """The full per-row liveness clock variant of
        :meth:`_consume_fast`, used when the batch spans a gap wide
        enough that a stall could fire inside it (sparse scenarios);
        stall attribution needs the exact previous ticking time, so
        every row pays the stall and deadline compares."""
        liveness = self._liveness
        health = self._health
        pending = liveness.pending
        flagged = liveness._flagged
        last_token = liveness._last_token
        starved = liveness._starved
        stall_gap = liveness.stall_gap
        check_step = self._liveness_step
        next_check = liveness._next_check
        last_time = liveness._last_event_time
        check_deadlines = liveness._check_deadlines
        h_sends = health._sends
        h_recvs = health._recvs
        h_faults = health._faults
        h_cs = health._cs_entries
        next_sample = health._next_sample
        interval = health.interval
        scratch = self._scratch
        fifo = self._fifo
        rel = self._rel
        if fifo is not None and rel is not None:
            fifo_last = fifo._last
            fifo_skip = fifo._SKIP_KINDS
            fifo_on = fifo.on_event
            net = fifo.network
            is_mss = (net._mss.__contains__ if net is not None
                      else _startswith_mss)
            rel_sends = rel._sends
            rel_released = rel._released
            rel_on = rel.on_event
        for row in rows:
            if type(row) is float:  # plain ticking send: time only
                t = row
                if pending:
                    if last_time is not None and t - last_time > stall_gap:
                        liveness._stall(t, last_time)
                    if t >= next_check:
                        check_deadlines(t)
                        next_check = t + check_step
                last_time = t
                h_sends += 1
                if t >= next_sample:
                    health._sends = h_sends
                    health._recvs = h_recvs
                    health._faults = h_faults
                    health._cs_entries = h_cs
                    liveness._next_check = next_check
                    liveness._last_event_time = last_time
                    health.sample(t)
                    next_sample = t + interval
                continue
            site = row[9]
            t = row[2]
            mode = site.mode
            if mode == 2:  # MODE_RECV_STD: inline FifoOrder + Reliable
                parent = row[1]
                if parent is not None:
                    kind = row[6]
                    if kind not in fifo_skip:
                        src = row[4]
                        dst = row[5]
                        if (src is not None and dst is not None
                                and is_mss(src) and is_mss(dst)):
                            channel = (src, dst)
                            last = fifo_last.get(channel)
                            if last is None or parent > last:
                                fifo_last[channel] = parent
                            else:  # violation: full body for the text
                                _fill(scratch, row, site.etype)
                                fifo_on(scratch)
                    meta = rel_sends.get(parent)
                    if meta is not None:
                        channel, seq = meta
                        if seq > rel_released.get(channel, 0):
                            rel_released[channel] = seq
                        else:
                            _fill(scratch, row, site.etype)
                            rel_on(scratch)
                if pending:
                    if last_time is not None and t - last_time > stall_gap:
                        liveness._stall(t, last_time)
                    if t >= next_check:
                        check_deadlines(t)
                        next_check = t + check_step
                last_time = t
                h_recvs += 1
            elif mode == 3:  # MODE_SEND_GATED: one suffix-gated target
                kind = row[6]
                if kind is not None and kind.endswith(site.gate_suffixes):
                    _fill(scratch, row, site.etype)
                    site.gate_fn(scratch)
                if pending:
                    if last_time is not None and t - last_time > stall_gap:
                        liveness._stall(t, last_time)
                    if t >= next_check:
                        check_deadlines(t)
                        next_check = t + check_step
                last_time = t
                h_sends += 1
            else:
                kind = row[6]
                if mode == 0:  # MODE_GENERIC: scratch replay of plan
                    built = False
                    for on_event, suffixes in site.plan:
                        if suffixes is not None and (
                            kind is None or not kind.endswith(suffixes)
                        ):
                            continue
                        if not built:
                            _fill(scratch, row, site.etype)
                            built = True
                        on_event(scratch)
                # -- LivenessMonitor.on_event, folded ------------------
                code = site.liveness_code
                if code == 2:
                    # send.wireless_up is kind-gated: non-request
                    # uplinks are not delivered to liveness at all.
                    if kind is not None and kind.endswith(_REQUEST_SUFFIXES):
                        pending.setdefault((row[3], row[4]), t)
                    else:
                        code = 0
                elif code == 3:
                    pending.setdefault((row[3], row[4]), t)
                elif code == 4:
                    key = (row[3], row[4])
                    pending.pop(key, None)
                    flagged.discard(key)
                elif code == 5:
                    last_token[row[3]] = t
                    starved.discard(row[3])
                if code:
                    if pending:
                        if (last_time is not None
                                and t - last_time > stall_gap):
                            liveness._stall(t, last_time)
                        if t >= next_check:
                            check_deadlines(t)
                            next_check = t + check_step
                    last_time = t
                # -- HealthMonitor.on_event, folded --------------------
                code = site.health_code
                if code == 1:
                    h_sends += 1
                elif code == 2:
                    h_recvs += 1
                elif code == 3:
                    h_faults += 1
                elif code == 4:
                    h_cs += 1
            if t >= next_sample:
                health._sends = h_sends
                health._recvs = h_recvs
                health._faults = h_faults
                health._cs_entries = h_cs
                liveness._next_check = next_check
                liveness._last_event_time = last_time
                health.sample(t)
                next_sample = t + interval
        health._sends = h_sends
        health._recvs = h_recvs
        health._faults = h_faults
        health._cs_entries = h_cs
        health._next_sample = next_sample
        liveness._next_check = next_check
        liveness._last_event_time = last_time
        scratch.detail = None  # type: ignore[assignment]

    def ingest_events(self, events: Iterable[TraceEvent]) -> int:
        """Offline batched replay: append recorded events as ledger
        rows (keeping their original ids, parents and timestamps) and
        drain.  Events are replayed in the given order -- recorded
        traces are already in emission order, exactly like the online
        shared segment.  The batched analogue of :meth:`dispatch`-based
        replay, used by :func:`replay_events_batched` and the
        equivalence gate."""
        if not self._batch:
            raise ConfigurationError(
                "ingest_events requires a batched hub"
            )
        ledger = self._ledger
        count = 0
        for event in events:
            site = self._sites.get(event.etype)
            if site is None:
                site = self._compile_site(event.etype)
            if site.filtered:
                continue
            ledger.append((
                event.id, event.parent_id, event.time, event.scope,
                event.src, event.dst, event.kind, event.detail,
                event.category, site,
            ))
            count += 1
            if len(ledger) >= self._segment_cap:
                self.drain_batches()
        self.drain_batches()
        return count

    # -- call-site gates ----------------------------------------------
    def call_site_gate(self, etype):
        """Compiled skip-gate for one hot instrumentation point.

        Returns ``(counter_cell, stride, kind_suffixes)`` when the
        caller may resolve the sampling cadence *before* paying for the
        emit call, or ``None`` when events of ``etype`` must always be
        emitted (recording is on, sampling is off, or some monitor
        listens unconditionally).  The caller decrements the shared
        counter cell once per occurrence; on a due tick it resets the
        cell to ``stride`` and calls :meth:`emit_gated` with
        ``due=True``; on a kind-suffix match it calls with
        ``due=False``; otherwise it skips the event entirely -- no
        event id is allocated, and any ``trace_id`` it would have
        stamped must be cleared so stale ids can never masquerade as
        causal parents.  Ids in a gated run are therefore *not*
        comparable with an unsampled run's; at ``sample_rate=1.0`` no
        gate is handed out, which keeps full runs byte-identical.
        """
        if self.record or self.stride <= 1:
            return None
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.always:
            return None
        return (entry.counter, entry.stride, entry.gate_suffixes or ())

    def emit_gated(
        self,
        etype: str,
        due: bool,
        *,
        scope: str = "default",
        category: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kind: Optional[str] = None,
        parent: Optional[int] = None,
        **detail: Any,
    ) -> int:
        """Deliver one event whose cadence a call-site gate resolved.

        The counter cell was already ticked by the caller, so this path
        performs no cadence bookkeeping: it constructs the (pooled)
        event and runs the delivery loop with the caller's ``due``.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        event_id = self._next_id
        self._next_id = event_id + 1
        entry = self._table.get(etype)
        if entry is None:  # pragma: no cover - gates imply compiled
            entry = self._compile(etype)
        if entry.filtered:
            return event_id
        pool = self._event_pool
        if pool._outstanding is None:
            # Inline Pool.acquire (debug tracking off): one event per
            # delivered emit makes the method call itself measurable.
            free = pool._free
            if free:
                event = free.pop()
                pool.reused += 1
            else:
                event = _blank_event()
                pool.created += 1
        else:
            event = pool.acquire()
        event.id = event_id
        event.parent_id = parent
        event.time = self.scheduler.now
        event.etype = etype
        event.scope = scope
        event.category = category
        event.src = src
        event.dst = dst
        event.kind = kind
        event.detail = detail
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)
        if pool._outstanding is None:
            event.detail = None  # type: ignore[assignment]
            pool.released += 1
            free = pool._free
            if len(free) < pool.capacity:
                free.append(event)
        else:
            pool.release(event)
        return event_id

    # -- online path --------------------------------------------------
    def emit(
        self,
        etype: str,
        *,
        scope: str = "default",
        category: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kind: Optional[str] = None,
        parent: Optional[int] = None,
        **detail: Any,
    ) -> int:
        # The event id is always allocated -- even for filtered or
        # skipped events -- so parent-id causality chains are identical
        # across every sampling/filtering configuration.
        if parent is None and self._stack:
            parent = self._stack[-1]
        event_id = self._next_id
        self._next_id = event_id + 1
        if self._batch:
            # Batched tier: append one ledger row and return.  Every
            # emit module in the tree goes through here unchanged; the
            # hottest sites bypass even this via call_site_batch.
            site = self._sites.get(etype)
            if site is None:
                site = self._compile_site(etype)
            if site.filtered:
                return event_id
            rows = self._ledger
            now = self.scheduler.now
            rows.append((
                event_id, parent, now, scope, src, dst, kind,
                detail if detail else None, category, site,
            ))
            if len(rows) >= self._segment_cap or now >= self._drain_due:
                self.drain_batches()
            return event_id
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.filtered:
            return event_id
        due = True
        if entry.has_sampled:
            counter = entry.counter
            counter[0] -= 1
            if counter[0] <= 0:
                counter[0] = entry.stride
            else:
                due = False
        record = self.record
        if not record and not entry.always:
            # No unconditional listener: the event object is only
            # needed if a sampled tick is due or a kind gate matches.
            needed = due and entry.has_sampled
            if not needed:
                gate = entry.gate_suffixes
                needed = (
                    gate is not None
                    and kind is not None
                    and kind.endswith(gate)
                )
            if not needed:
                return event_id
        if record:
            event = TraceEvent(
                id=event_id,
                parent_id=parent,
                time=self.scheduler.now,
                etype=etype,
                scope=scope,
                category=category,
                src=src,
                dst=dst,
                kind=kind,
                detail=detail,
            )
            self.events.append(event)
        else:
            pool = self._event_pool
            if pool._outstanding is None:
                # Inline Pool.acquire (debug off) -- see emit_gated.
                free = pool._free
                if free:
                    event = free.pop()
                    pool.reused += 1
                else:
                    event = _blank_event()
                    pool.created += 1
            else:
                event = pool.acquire()
            event.id = event_id
            event.parent_id = parent
            event.time = self.scheduler.now
            event.etype = etype
            event.scope = scope
            event.category = category
            event.src = src
            event.dst = dst
            event.kind = kind
            event.detail = detail
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)
        if not record:
            if pool._outstanding is None:
                event.detail = None  # type: ignore[assignment]
                pool.released += 1
                free = pool._free
                if len(free) < pool.capacity:
                    free.append(event)
            else:
                pool.release(event)
        return event_id

    # -- offline path -------------------------------------------------
    def dispatch(self, event: TraceEvent) -> None:
        """Feed one (recorded) event to the interested monitors.

        Uses the same compiled table (gates, sampling strides, filters)
        as the online path, so online and replayed runs of the same
        hub configuration deliver the same event subsequence.
        """
        etype = event.etype
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.filtered:
            return
        due = True
        if entry.has_sampled:
            counter = entry.counter
            counter[0] -= 1
            if counter[0] <= 0:
                counter[0] = entry.stride
            else:
                due = False
        kind = event.kind
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)

    # -- reporting ----------------------------------------------------
    def finalize(self, at: Optional[float] = None) -> None:
        """Run every monitor's end-of-run checks (idempotent).

        A batched hub drains its ledgers first, so no event is ever
        finalized past."""
        if self._finalized:
            return
        if self._batch:
            self.drain_batches()
        self._finalized = True
        if at is None:
            at = self.scheduler.now if self.scheduler is not None else 0.0
        for monitor in self.monitors:
            monitor.finalize(at)

    @property
    def violations(self) -> List[Violation]:
        if self._batch:
            self.drain_batches()
        out: List[Violation] = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: (v.time, v.monitor, v.invariant))
        return out

    @property
    def ok(self) -> bool:
        if self._batch:
            self.drain_batches()
        return all(monitor.ok for monitor in self.monitors)

    def report(self) -> str:
        """A human-readable per-monitor summary."""
        if self._batch:
            self.drain_batches()
        lines = ["invariant monitors"]
        for monitor in self.monitors:
            n = len(monitor.violations)
            status = "ok" if n == 0 else f"{n} violation(s)"
            lines.append(f"  {monitor.name:<20} {status}")
            for violation in monitor.violations:
                lines.append(f"    {violation.render()}")
        return "\n".join(lines)


def replay_events(
    events: Iterable[TraceEvent],
    monitors: Sequence[Monitor],
    network=None,
    finalize: bool = True,
    sample_rate: float = 1.0,
) -> MonitorHub:
    """Run ``monitors`` over a recorded event stream.

    Returns the hub (finalized at the last event's timestamp unless
    ``finalize=False``).  Pass the live ``network`` when available so
    ground-truth checks (location-view membership, per-MSS load) run;
    without it those checks are skipped, never wrong.
    """
    hub = MonitorHub(None, monitors, record=False, sample_rate=sample_rate)
    if network is not None:
        hub.bind(network)
    last_time = 0.0
    for event in events:
        hub.dispatch(event)
        last_time = event.time
    if finalize:
        hub.finalize(at=last_time)
    return hub


def replay_events_batched(
    events: Sequence[TraceEvent],
    monitors: Sequence[Monitor],
    network=None,
    finalize: bool = True,
) -> MonitorHub:
    """Run ``monitors`` over a recorded stream through the batched
    tier: events become ledger rows (original ids, parents and
    timestamps preserved) and the monitors consume drained batches.

    The equivalence gate replays every canonical scenario through both
    this and :func:`replay_events` and asserts identical violations,
    reports and health series (ROADMAP item 3).
    """
    hub = MonitorHub(None, monitors, record=False, batch=True)
    if network is not None:
        hub.bind(network)
    hub.ingest_events(events)
    if finalize:
        hub.finalize(at=events[-1].time if events else 0.0)
    return hub
