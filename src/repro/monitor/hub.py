"""The monitor hub: fan-out from the trace stream to the monitors.

:class:`MonitorHub` *is* a tracer — it subclasses
:class:`~repro.trace.events.Tracer` and is installed as
``network.trace``, so every instrumentation point that already feeds
the trace layer feeds the monitors too, through the same
``_trace_on``-style guard that makes the whole layer free when off.
Events are dispatched through a compiled per-event-type table: the
first emit of each etype resolves, once, which monitors want it, which
are gated on a message-kind suffix, and which are sampled — so the
steady-state hot path is one dict lookup plus the delivery loop.

Two recording modes:

* ``record=True`` — behaves exactly like a :class:`Tracer` (the event
  list grows; exporters and walkthroughs keep working) *and* monitors
  run.  This is ``Simulation(trace=True, monitors=...)``.
* ``record=False`` — events are dispatched to the monitors and then
  dropped, so memory stays bounded on long runs.  The hub recycles the
  :class:`TraceEvent` objects through a :class:`repro.pool.Pool` free
  list (monitors are pure observers and never retain event objects),
  and skips constructing the event entirely when no monitor would see
  it.  This is ``Simulation(trace=False, monitors=...)``.

Sampling (``sample_rate < 1.0``, ROADMAP item 3's "observability for
<10%" goal): event types are thinned with a deterministic stride —
every ``round(1/rate)``-th occurrence is delivered, starting with the
first — but only for monitors that declare ``samplable = True`` and
only for etypes outside their ``critical_etypes``.  Safety monitors
with exact state machines keep seeing every event at any rate, so a
sampled run can *miss* a violation in a thinned high-rate stream but
can never report a false one.  ``etype_filters`` drops whole event
types outright (ids are still allocated, so causality chains are
byte-identical).

Offline replay: :func:`replay_events` drives the same monitors over a
recorded event list (for example a canonical scenario's trace), which
is how the ``repro monitor`` CLI certifies the walkthrough scenarios.
Part of the online monitoring layer (ROADMAP observability arc).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.monitor.base import Monitor, Violation
from repro.pool import Pool
from repro.trace.events import TraceEvent, Tracer

__all__ = ["MonitorHub", "replay_events"]


def _blank_event() -> TraceEvent:
    return TraceEvent(id=0, parent_id=None, time=0.0, etype="")


def _reset_event(event: TraceEvent) -> None:
    # Drop the payload dict so the free list cannot pin protocol
    # objects alive; scalar fields are overwritten on acquire.
    event.detail = None  # type: ignore[assignment]


class _Entry:
    """Compiled dispatch state for one event type.

    ``targets`` is an ordered tuple of ``(on_event, suffixes, sampled)``
    triples preserving the pre-compilation delivery order (explicit
    interests in registration order, then wildcards), so a run at
    ``sample_rate=1.0`` is byte-identical to the uncompiled hub.
    """

    __slots__ = (
        "targets",
        "filtered",
        "always",
        "gate_suffixes",
        "has_sampled",
        "stride",
        "counter",
    )

    def __init__(
        self,
        targets: Tuple[Tuple[Any, Optional[Tuple[str, ...]], bool], ...],
        filtered: bool,
        stride: int,
    ) -> None:
        self.targets = targets
        self.filtered = filtered
        #: at least one target is unconditional (no gate, not sampled),
        #: so the event object is always needed.
        self.always = any(
            suffixes is None and not sampled
            for _, suffixes, sampled in targets
        )
        gate: Tuple[str, ...] = ()
        for _, suffixes, _ in targets:
            if suffixes:
                gate += suffixes
        #: union of every target's kind-suffix gate; used to decide
        #: whether a skipped-sample event still needs constructing.
        self.gate_suffixes: Optional[Tuple[str, ...]] = gate or None
        self.has_sampled = any(sampled for _, _, sampled in targets)
        self.stride = stride
        #: countdown cell; primed at 1 so the first occurrence of every
        #: etype is always delivered.
        self.counter = [1]


class MonitorHub(Tracer):
    """A tracer that evaluates invariant monitors online.

    Monitors are pure observers fed from :meth:`emit` (online) or
    :meth:`dispatch` (offline replay).  The hub aggregates their
    violations and exposes one ``finalize()``/``ok``/``report()``
    surface for tests, the facade, and the CLI.

    Args:
        scheduler: clock source (``None`` for offline replay).
        monitors: the monitor instances to drive.
        record: keep the full event list (tracer behaviour) or drop
            events after dispatch (bounded memory).
        sample_rate: fraction of high-rate events delivered to
            ``samplable`` monitors — realized as a deterministic
            per-etype stride of ``round(1/sample_rate)``.  ``1.0``
            (default) delivers everything.
        etype_filters: event types dropped entirely (not recorded, not
            dispatched; ids still allocated).
    """

    def __init__(
        self,
        scheduler,
        monitors: Sequence[Monitor],
        record: bool = True,
        sample_rate: float = 1.0,
        etype_filters: Sequence[str] = (),
    ) -> None:
        super().__init__(scheduler)
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1]: {sample_rate}"
            )
        self.record = record
        self.sample_rate = sample_rate
        self.stride = max(1, round(1.0 / sample_rate))
        self.etype_filters = frozenset(etype_filters)
        self.monitors: List[Monitor] = list(monitors)
        self.network = None
        self._finalized = False
        self._table: Dict[str, _Entry] = {}
        self._event_pool = Pool(
            _blank_event,
            reset=_reset_event,
            capacity=64,
            name="monitor.trace_events",
        )
        for monitor in self.monitors:
            monitor.attach(self)

    # -- wiring -------------------------------------------------------
    def bind(self, network) -> None:
        """Give monitors ground-truth access to the live network."""
        self.network = network
        for monitor in self.monitors:
            monitor.bind(network)

    def monitor(self, cls) -> Optional[Monitor]:
        """The first registered monitor of class ``cls``, if any."""
        for monitor in self.monitors:
            if isinstance(monitor, cls):
                return monitor
        return None

    # -- dispatch-table compilation -----------------------------------
    def _compile(self, etype: str) -> _Entry:
        """Resolve, once, how events of ``etype`` are delivered."""
        ordered: List[Monitor] = [
            m
            for m in self.monitors
            if m.interests is not None and etype in m.interests
        ]
        ordered += [m for m in self.monitors if m.interests is None]
        sampling = self.stride > 1
        targets = []
        for monitor in ordered:
            suffixes = (
                monitor.kind_gates.get(etype) if monitor.kind_gates else None
            )
            # A kind-gated target is never sampled: the gate already
            # narrows it to the exact kinds its state machine consumes
            # (kind-scoped analogue of critical_etypes).
            sampled = (
                sampling
                and monitor.samplable
                and suffixes is None
                and etype not in monitor.critical_etypes
            )
            targets.append((monitor.on_event, suffixes, sampled))
        entry = _Entry(
            tuple(targets), etype in self.etype_filters, self.stride
        )
        self._table[etype] = entry
        return entry

    # -- call-site gates ----------------------------------------------
    def call_site_gate(self, etype):
        """Compiled skip-gate for one hot instrumentation point.

        Returns ``(counter_cell, stride, kind_suffixes)`` when the
        caller may resolve the sampling cadence *before* paying for the
        emit call, or ``None`` when events of ``etype`` must always be
        emitted (recording is on, sampling is off, or some monitor
        listens unconditionally).  The caller decrements the shared
        counter cell once per occurrence; on a due tick it resets the
        cell to ``stride`` and calls :meth:`emit_gated` with
        ``due=True``; on a kind-suffix match it calls with
        ``due=False``; otherwise it skips the event entirely -- no
        event id is allocated, and any ``trace_id`` it would have
        stamped must be cleared so stale ids can never masquerade as
        causal parents.  Ids in a gated run are therefore *not*
        comparable with an unsampled run's; at ``sample_rate=1.0`` no
        gate is handed out, which keeps full runs byte-identical.
        """
        if self.record or self.stride <= 1:
            return None
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.always:
            return None
        return (entry.counter, entry.stride, entry.gate_suffixes or ())

    def emit_gated(
        self,
        etype: str,
        due: bool,
        *,
        scope: str = "default",
        category: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kind: Optional[str] = None,
        parent: Optional[int] = None,
        **detail: Any,
    ) -> int:
        """Deliver one event whose cadence a call-site gate resolved.

        The counter cell was already ticked by the caller, so this path
        performs no cadence bookkeeping: it constructs the (pooled)
        event and runs the delivery loop with the caller's ``due``.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        event_id = self._next_id
        self._next_id = event_id + 1
        entry = self._table.get(etype)
        if entry is None:  # pragma: no cover - gates imply compiled
            entry = self._compile(etype)
        if entry.filtered:
            return event_id
        pool = self._event_pool
        if pool._outstanding is None:
            # Inline Pool.acquire (debug tracking off): one event per
            # delivered emit makes the method call itself measurable.
            free = pool._free
            if free:
                event = free.pop()
                pool.reused += 1
            else:
                event = _blank_event()
                pool.created += 1
        else:
            event = pool.acquire()
        event.id = event_id
        event.parent_id = parent
        event.time = self.scheduler.now
        event.etype = etype
        event.scope = scope
        event.category = category
        event.src = src
        event.dst = dst
        event.kind = kind
        event.detail = detail
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)
        if pool._outstanding is None:
            event.detail = None  # type: ignore[assignment]
            pool.released += 1
            free = pool._free
            if len(free) < pool.capacity:
                free.append(event)
        else:
            pool.release(event)
        return event_id

    # -- online path --------------------------------------------------
    def emit(
        self,
        etype: str,
        *,
        scope: str = "default",
        category: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kind: Optional[str] = None,
        parent: Optional[int] = None,
        **detail: Any,
    ) -> int:
        # The event id is always allocated -- even for filtered or
        # skipped events -- so parent-id causality chains are identical
        # across every sampling/filtering configuration.
        if parent is None and self._stack:
            parent = self._stack[-1]
        event_id = self._next_id
        self._next_id = event_id + 1
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.filtered:
            return event_id
        due = True
        if entry.has_sampled:
            counter = entry.counter
            counter[0] -= 1
            if counter[0] <= 0:
                counter[0] = entry.stride
            else:
                due = False
        record = self.record
        if not record and not entry.always:
            # No unconditional listener: the event object is only
            # needed if a sampled tick is due or a kind gate matches.
            needed = due and entry.has_sampled
            if not needed:
                gate = entry.gate_suffixes
                needed = (
                    gate is not None
                    and kind is not None
                    and kind.endswith(gate)
                )
            if not needed:
                return event_id
        if record:
            event = TraceEvent(
                id=event_id,
                parent_id=parent,
                time=self.scheduler.now,
                etype=etype,
                scope=scope,
                category=category,
                src=src,
                dst=dst,
                kind=kind,
                detail=detail,
            )
            self.events.append(event)
        else:
            pool = self._event_pool
            if pool._outstanding is None:
                # Inline Pool.acquire (debug off) -- see emit_gated.
                free = pool._free
                if free:
                    event = free.pop()
                    pool.reused += 1
                else:
                    event = _blank_event()
                    pool.created += 1
            else:
                event = pool.acquire()
            event.id = event_id
            event.parent_id = parent
            event.time = self.scheduler.now
            event.etype = etype
            event.scope = scope
            event.category = category
            event.src = src
            event.dst = dst
            event.kind = kind
            event.detail = detail
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)
        if not record:
            if pool._outstanding is None:
                event.detail = None  # type: ignore[assignment]
                pool.released += 1
                free = pool._free
                if len(free) < pool.capacity:
                    free.append(event)
            else:
                pool.release(event)
        return event_id

    # -- offline path -------------------------------------------------
    def dispatch(self, event: TraceEvent) -> None:
        """Feed one (recorded) event to the interested monitors.

        Uses the same compiled table (gates, sampling strides, filters)
        as the online path, so online and replayed runs of the same
        hub configuration deliver the same event subsequence.
        """
        etype = event.etype
        entry = self._table.get(etype)
        if entry is None:
            entry = self._compile(etype)
        if entry.filtered:
            return
        due = True
        if entry.has_sampled:
            counter = entry.counter
            counter[0] -= 1
            if counter[0] <= 0:
                counter[0] = entry.stride
            else:
                due = False
        kind = event.kind
        for on_event, suffixes, sampled in entry.targets:
            if sampled and not due:
                continue
            if suffixes is not None and (
                kind is None or not kind.endswith(suffixes)
            ):
                continue
            on_event(event)

    # -- reporting ----------------------------------------------------
    def finalize(self, at: Optional[float] = None) -> None:
        """Run every monitor's end-of-run checks (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if at is None:
            at = self.scheduler.now if self.scheduler is not None else 0.0
        for monitor in self.monitors:
            monitor.finalize(at)

    @property
    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: (v.time, v.monitor, v.invariant))
        return out

    @property
    def ok(self) -> bool:
        return all(monitor.ok for monitor in self.monitors)

    def report(self) -> str:
        """A human-readable per-monitor summary."""
        lines = ["invariant monitors"]
        for monitor in self.monitors:
            n = len(monitor.violations)
            status = "ok" if n == 0 else f"{n} violation(s)"
            lines.append(f"  {monitor.name:<20} {status}")
            for violation in monitor.violations:
                lines.append(f"    {violation.render()}")
        return "\n".join(lines)


def replay_events(
    events: Iterable[TraceEvent],
    monitors: Sequence[Monitor],
    network=None,
    finalize: bool = True,
    sample_rate: float = 1.0,
) -> MonitorHub:
    """Run ``monitors`` over a recorded event stream.

    Returns the hub (finalized at the last event's timestamp unless
    ``finalize=False``).  Pass the live ``network`` when available so
    ground-truth checks (location-view membership, per-MSS load) run;
    without it those checks are skipped, never wrong.
    """
    hub = MonitorHub(None, monitors, record=False, sample_rate=sample_rate)
    if network is not None:
        hub.bind(network)
    last_time = 0.0
    for event in events:
        hub.dispatch(event)
        last_time = event.time
    if finalize:
        hub.finalize(at=last_time)
    return hub
