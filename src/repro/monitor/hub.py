"""The monitor hub: fan-out from the trace stream to the monitors.

:class:`MonitorHub` *is* a tracer — it subclasses
:class:`~repro.trace.events.Tracer` and is installed as
``network.trace``, so every instrumentation point that already feeds
the trace layer feeds the monitors too, through the same
``_trace_on``-style guard that makes the whole layer free when off.
After recording each event it dispatches it to the monitors whose
``interests`` match, via a per-event-type dispatch table built once at
construction.

Two recording modes:

* ``record=True`` — behaves exactly like a :class:`Tracer` (the event
  list grows; exporters and walkthroughs keep working) *and* monitors
  run.  This is ``Simulation(trace=True, monitors=...)``.
* ``record=False`` — events are dispatched to the monitors and then
  dropped, so memory stays bounded on long runs.  This is
  ``Simulation(trace=False, monitors=...)``.

Offline replay: :func:`replay_events` drives the same monitors over a
recorded event list (for example a canonical scenario's trace), which
is how the ``repro monitor`` CLI certifies the walkthrough scenarios.
Part of the online monitoring layer (ROADMAP observability arc).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.monitor.base import Monitor, Violation
from repro.trace.events import TraceEvent, Tracer

__all__ = ["MonitorHub", "replay_events"]


class MonitorHub(Tracer):
    """A tracer that evaluates invariant monitors online.

    Monitors are pure observers fed from :meth:`emit` (online) or
    :meth:`dispatch` (offline replay).  The hub aggregates their
    violations and exposes one ``finalize()``/``ok``/``report()``
    surface for tests, the facade, and the CLI.
    """

    def __init__(
        self,
        scheduler,
        monitors: Sequence[Monitor],
        record: bool = True,
    ) -> None:
        super().__init__(scheduler)
        self.record = record
        self.monitors: List[Monitor] = list(monitors)
        self.network = None
        self._finalized = False
        #: etype -> monitors with that explicit interest
        self._by_etype: Dict[str, List[Monitor]] = {}
        #: monitors subscribed to every event (interests is None)
        self._wildcard: List[Monitor] = []
        for monitor in self.monitors:
            monitor.attach(self)
            if monitor.interests is None:
                self._wildcard.append(monitor)
            else:
                for etype in monitor.interests:
                    self._by_etype.setdefault(etype, []).append(monitor)

    # -- wiring -------------------------------------------------------
    def bind(self, network) -> None:
        """Give monitors ground-truth access to the live network."""
        self.network = network
        for monitor in self.monitors:
            monitor.bind(network)

    def monitor(self, cls) -> Optional[Monitor]:
        """The first registered monitor of class ``cls``, if any."""
        for monitor in self.monitors:
            if isinstance(monitor, cls):
                return monitor
        return None

    # -- online path --------------------------------------------------
    def emit(self, etype: str, **kwargs: Any) -> int:
        event_id = super().emit(etype, **kwargs)
        events = self.events
        event = events[-1]
        if not self.record:
            events.pop()
        interested = self._by_etype.get(etype)
        if interested:
            for monitor in interested:
                monitor.on_event(event)
        for monitor in self._wildcard:
            monitor.on_event(event)
        return event_id

    # -- offline path -------------------------------------------------
    def dispatch(self, event: TraceEvent) -> None:
        """Feed one (recorded) event to the interested monitors."""
        interested = self._by_etype.get(event.etype)
        if interested:
            for monitor in interested:
                monitor.on_event(event)
        for monitor in self._wildcard:
            monitor.on_event(event)

    # -- reporting ----------------------------------------------------
    def finalize(self, at: Optional[float] = None) -> None:
        """Run every monitor's end-of-run checks (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if at is None:
            at = self.scheduler.now if self.scheduler is not None else 0.0
        for monitor in self.monitors:
            monitor.finalize(at)

    @property
    def violations(self) -> List[Violation]:
        out: List[Violation] = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: (v.time, v.monitor, v.invariant))
        return out

    @property
    def ok(self) -> bool:
        return all(monitor.ok for monitor in self.monitors)

    def report(self) -> str:
        """A human-readable per-monitor summary."""
        lines = ["invariant monitors"]
        for monitor in self.monitors:
            n = len(monitor.violations)
            status = "ok" if n == 0 else f"{n} violation(s)"
            lines.append(f"  {monitor.name:<20} {status}")
            for violation in monitor.violations:
                lines.append(f"    {violation.render()}")
        return "\n".join(lines)


def replay_events(
    events: Iterable[TraceEvent],
    monitors: Sequence[Monitor],
    network=None,
    finalize: bool = True,
) -> MonitorHub:
    """Run ``monitors`` over a recorded event stream.

    Returns the hub (finalized at the last event's timestamp unless
    ``finalize=False``).  Pass the live ``network`` when available so
    ground-truth checks (location-view membership, per-MSS load) run;
    without it those checks are skipped, never wrong.
    """
    hub = MonitorHub(None, monitors, record=False)
    if network is not None:
        hub.bind(network)
    last_time = 0.0
    for event in events:
        hub.dispatch(event)
        last_time = event.time
    if finalize:
        hub.finalize(at=last_time)
    return hub
