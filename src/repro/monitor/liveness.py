"""Liveness watchdogs: detect stalls in simulated time.

Safety monitors say "nothing bad happened"; these say "something good
keeps happening".  :class:`LivenessMonitor` tracks three progress
signals, all against *simulated* deadlines (so a slow wall-clock run
is never flagged, and a replayed trace is judged identically):

* **request age** — a mutual-exclusion request (an uplinked
  ``*.request``/``*.init``) that stays unserved past
  ``request_deadline`` sim-time units;
* **token starvation** — a ring scope with pending requests whose
  token has not arrived anywhere for ``token_deadline`` units (a lost
  token whose regeneration watchdog also failed);
* **scheduler stall** — a gap larger than ``stall_gap`` between
  consecutive trace events while requests are pending: the scheduler
  kept ticking (or stopped) without the protocols making any
  observable progress.

Deadlines are checked lazily as events stream past — the monitor never
schedules anything, keeping the pure-observer contract — and
``finalize`` flags any request still pending when the run ends, which
is how a silently wedged protocol surfaces even if no later event ever
fires.  Each stalled request/scope is reported once per episode, not
once per event.
Part of the online monitoring layer (ROADMAP observability arc).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.monitor.base import Monitor
from repro.trace.events import TraceEvent

__all__ = ["LivenessMonitor"]

#: uplink kinds that register a pending mutual-exclusion request
_REQUEST_SUFFIXES = (".request", ".init")


class LivenessMonitor(Monitor):
    """Request-age, token-starvation, and stall watchdogs."""

    name = "liveness"
    interests = None  # needs the event stream's clock: sees everything
    #: sampling thins only the clock ticks; the state-mutating etypes
    #: below stay exact at any rate -- three on the critical list, and
    #: uplink sends narrowed by a kind gate to the request/init kinds
    #: the pending-request bookkeeping actually consumes (join/leave
    #: uplinks are clock ticks only).  The stall/deadline checks
    #: coarsen (they fire at the next *delivered* event), which is the
    #: documented trade-off in docs/performance.md.
    samplable = True
    critical_etypes = (
        "r2.resubmit",
        "cs.enter",
        "token.arrive",
    )
    kind_gates = {"send.wireless_up": _REQUEST_SUFFIXES}

    def __init__(
        self,
        request_deadline: float = 200.0,
        token_deadline: float = 120.0,
        stall_gap: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.request_deadline = float(request_deadline)
        self.token_deadline = float(token_deadline)
        self.stall_gap = (float(stall_gap) if stall_gap is not None
                          else self.token_deadline)
        #: (scope, mh) -> time the request was first submitted
        self.pending: Dict[Tuple[str, str], float] = {}
        self._flagged: Set[Tuple[str, str]] = set()
        self._last_token: Dict[str, float] = {}
        self._starved: Set[str] = set()
        self._last_event_time: Optional[float] = None
        self._next_check = 0.0

    # -- health-surface helpers --------------------------------------
    def oldest_pending_age(self, now: float) -> float:
        """Age of the oldest unserved request, 0.0 when none."""
        if not self.pending:
            return 0.0
        return now - min(self.pending.values())

    @property
    def check_interval(self) -> float:
        """Sim-time between lazy deadline sweeps (an eighth of the
        tighter deadline; shared with the batched fold so both
        dispatch paths re-arm identically)."""
        return min(self.request_deadline, self.token_deadline) / 8.0

    def _stall(self, now: float, last: float) -> None:
        """Record one scheduler-stall violation (shared with the
        batched consume loop so the report text stays identical)."""
        self.violation(
            "liveness.scheduler_stall", now,
            f"no observable progress for {now - last:g} "
            f"sim-time units while {len(self.pending)} "
            f"request(s) were pending",
            gap=now - last, pending=len(self.pending))

    # -- observation --------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        now = event.time
        if etype == "send.wireless_up":
            kind = event.kind
            if kind is not None and kind.endswith(_REQUEST_SUFFIXES):
                self.pending.setdefault((event.scope, event.src), now)
        elif etype == "r2.resubmit":
            # keep the original submit time: age measures first ask
            self.pending.setdefault((event.scope, event.src), now)
        elif etype == "cs.enter":
            key = (event.scope, event.src)
            self.pending.pop(key, None)
            self._flagged.discard(key)
        elif etype == "token.arrive":
            self._last_token[event.scope] = now
            self._starved.discard(event.scope)

        if self.pending:
            last = self._last_event_time
            if last is not None and now - last > self.stall_gap:
                self._stall(now, last)
            if now >= self._next_check:
                self._check_deadlines(now)
                self._next_check = now + self.check_interval
        self._last_event_time = now

    def _check_deadlines(self, now: float) -> None:
        for key, submitted in self.pending.items():
            if key in self._flagged:
                continue
            age = now - submitted
            if age > self.request_deadline:
                self._flagged.add(key)
                scope, mh = key
                self.violation(
                    "liveness.request_age", now,
                    f"the {scope} request of {mh} has been pending "
                    f"for {age:g} sim-time units "
                    f"(deadline {self.request_deadline:g})",
                    scope=scope, mh=mh, age=age,
                    deadline=self.request_deadline)
        pending_scopes = {scope for scope, _ in self.pending}
        for scope, seen in self._last_token.items():
            if scope in self._starved or scope not in pending_scopes:
                continue
            starving = now - seen
            if starving > self.token_deadline:
                self._starved.add(scope)
                self.violation(
                    "liveness.token_starvation", now,
                    f"the {scope} token has not arrived anywhere for "
                    f"{starving:g} sim-time units while requests are "
                    f"pending (deadline {self.token_deadline:g})",
                    scope=scope, starving_for=starving,
                    deadline=self.token_deadline)

    def finalize(self, now: float) -> None:
        for (scope, mh), submitted in sorted(self.pending.items()):
            self.violation(
                "liveness.request_unserved", now,
                f"the {scope} request of {mh} (submitted at "
                f"{submitted:g}) was never served",
                scope=scope, mh=mh, submitted=submitted)
