"""Crash-recovery monitors: invariants for runs with MH crash faults.

Two monitors certify what the recovery machinery promises when mobile
hosts die and come back:

* :class:`CrashRecoveryMonitor` — no critical-section activity from
  pre-crash state: a crashed host must not (appear to) enter the CS,
  a crash inside the CS must be followed by an *aborted* ``cs.exit``
  (the algorithm disclaiming the dead grant), and a dead host must not
  complete a CS it entered before dying.
* :class:`TokenConservationMonitor` — no token is lost to an MH crash:
  when the recorded grant holder of a ring scope crashes, the scope
  must later show a sign of token life (a reissue, a regeneration, or
  ordinary token traffic); a scope that stays silent to the end of the
  run lost its token to the crash.

Both are pure observers of the trace-event stream, like every monitor:
they work online and over replayed traces, and add nothing to runs
whose fault plan never kills an MH.
Certifies the MH crash-recovery machinery (ROADMAP resilience arc).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.monitor.base import Monitor
from repro.trace.events import TraceEvent

__all__ = ["CrashRecoveryMonitor", "TokenConservationMonitor"]


class CrashRecoveryMonitor(Monitor):
    """No CS entry, occupancy, or completion from pre-crash state.

    Tracks which hosts are crashed (``fault.mh_crash`` ..
    ``fault.mh_recover``) and which ``(scope, host)`` pairs are inside
    a critical section.  A ``cs.enter`` by a crashed host is a ghost
    entry; a crash while inside the CS obliges the algorithm to emit an
    aborted ``cs.exit`` for that occupancy (L1/R1/R2 all disclaim the
    dead grant this way), so a plain exit afterwards — or no exit at
    all by the end of the run — means the protocol let pre-crash state
    complete or linger.
    """

    name = "crash-recovery"
    interests = ("fault.mh_crash", "fault.mh_recover",
                 "cs.enter", "cs.exit")

    def __init__(self) -> None:
        super().__init__()
        self._crashed: Set[str] = set()
        self._in_cs: Set[Tuple[str, str]] = set()
        #: (scope, mh) occupancies interrupted by a crash, awaiting
        #: their aborted exit; value = crash time.
        self._pending_abort: Dict[Tuple[str, str], float] = {}

    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        if etype == "fault.mh_crash":
            mh = event.src
            self._crashed.add(mh)
            for key in sorted(self._in_cs):
                if key[1] == mh:
                    self._pending_abort[key] = event.time
            return
        if etype == "fault.mh_recover":
            self._crashed.discard(event.src)
            return
        key = (event.scope, event.src)
        if etype == "cs.enter":
            if event.src in self._crashed:
                self.violation(
                    "recovery.ghost_entry", event.time,
                    f"{event.src} entered the CS of {event.scope} "
                    f"while crashed",
                    scope=event.scope, mh=event.src)
            self._in_cs.add(key)
            return
        # cs.exit
        self._in_cs.discard(key)
        crash_time = self._pending_abort.pop(key, None)
        if crash_time is not None:
            if not event.detail.get("aborted"):
                self.violation(
                    "recovery.unaborted_exit", event.time,
                    f"{event.src} completed the CS of {event.scope} "
                    f"it occupied when it crashed at t={crash_time:g}; "
                    f"the grant should have been aborted",
                    scope=event.scope, mh=event.src,
                    crash_time=crash_time)
        elif event.src in self._crashed:
            self.violation(
                "recovery.ghost_exit", event.time,
                f"crashed host {event.src} exited the CS of "
                f"{event.scope} it never occupied at crash time",
                scope=event.scope, mh=event.src)

    def finalize(self, now: float) -> None:
        for (scope, mh), crash_time in sorted(self._pending_abort.items()):
            self.violation(
                "recovery.unaborted_occupancy", now,
                f"{mh} crashed at t={crash_time:g} inside the CS of "
                f"{scope} and the occupancy was never aborted",
                scope=scope, mh=mh, crash_time=crash_time)


class TokenConservationMonitor(Monitor):
    """No ring token is lost to an MH crash.

    A ``token.grant`` hands the scope's token to an MH; a normal
    ``cs.exit`` by that MH means the grant ran its course (the return
    is the grantor's problem, watched by the token-uniqueness and
    liveness monitors).  If instead the recorded grant holder crashes,
    the token it embodied is *at risk*: the scope must subsequently
    show the token alive — an explicit reissue
    (``r2.token_reissued``), a regeneration (``r2.regenerate``), or
    ordinary token traffic (``token.arrive``, a fresh
    ``token.grant``).  A scope still at risk when the run ends lost
    its token to the crash.  R1 carries its token inside wireless
    grants without token events, so this monitor covers the R2 family;
    R1 regeneration is counted by its own fault metrics.
    """

    name = "token-conservation"
    interests = ("token.grant", "token.arrive", "cs.exit",
                 "r2.token_reissued", "r2.regenerate", "fault.mh_crash")

    def __init__(self) -> None:
        super().__init__()
        #: scope -> MH currently holding an unreturned grant.
        self._granted: Dict[str, Optional[str]] = {}
        #: scope -> (crash time, crashed holder) awaiting proof of life.
        self._at_risk: Dict[str, Tuple[float, str]] = {}

    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        scope = event.scope
        if etype == "fault.mh_crash":
            mh = event.src
            for s, holder in sorted(self._granted.items()):
                if holder == mh:
                    self._granted[s] = None
                    self._at_risk[s] = (event.time, mh)
            return
        if etype == "token.grant":
            self._granted[scope] = event.dst
            self._at_risk.pop(scope, None)
            return
        if etype in ("token.arrive", "r2.token_reissued", "r2.regenerate"):
            self._at_risk.pop(scope, None)
            return
        # cs.exit: a completed (non-aborted) access retires the grant.
        if self._granted.get(scope) == event.src \
                and not event.detail.get("aborted"):
            self._granted[scope] = None

    def finalize(self, now: float) -> None:
        for scope, (crash_time, mh) in sorted(self._at_risk.items()):
            self.violation(
                "recovery.token_lost", now,
                f"the {scope} token granted to {mh} died with its "
                f"holder at t={crash_time:g} and was never reissued "
                f"or regenerated",
                scope=scope, mh=mh, crash_time=crash_time)
