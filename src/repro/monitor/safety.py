"""Safety monitors: the paper's correctness claims, checked per event.

Each monitor certifies one invariant the paper states (or the system
model postulates) for *whole runs*, online, while the simulation
executes — complementing the per-step unit tests and the
:class:`~repro.mutex.resource.CriticalResource` oracle:

* :class:`MutualExclusionMonitor` — at most one process inside the
  critical region per scope (Section 3's core safety property, shared
  by L1/L2/R1/R2/R2'/R2'').
* :class:`TokenUniquenessMonitor` — at most one live token per ring
  epoch (R2's token regeneration must retire, never multiply, tokens).
* :class:`RingFairnessMonitor` — R2'/R2'': no MH is served twice at
  the same ``token_val`` (the paper's "at most one access per MH per
  traversal" bound that motivates the counter).
* :class:`TokenListMonitor` — R2'' ``token_list`` bookkeeping: the
  list is immutable in transit, pruned of exactly the arriving MSS's
  pairs, appended with exactly the serviced (MSS, MH) pair, and no MH
  on the list is granted again.
* :class:`FifoOrderMonitor` — fixed (wired) channels deliver in FIFO
  order with no duplicates (the Section-2 postulate every algorithm
  builds on).
* :class:`ReliableDeliveryMonitor` — the reliable transport releases
  each logical message at most once, in sequence order, per channel.
* :class:`HandoffMonitor` — the mobility protocol loses no MH:
  every ``leave(r)`` is eventually matched by a ``join`` that names
  the cell actually left, and disconnect/reconnect pair up.
* :class:`LocationViewMonitor` — ``LV(G)`` covers every connected
  member's current MSS at quiescence and the distributed view copies
  agree with the coordinator (Section 4).

All monitors read only the event stream (plus, when bound, the live
network for ground truth) and work identically online and in offline
replay over a recorded trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.monitor.base import Monitor
from repro.trace.events import TraceEvent

__all__ = [
    "MutualExclusionMonitor",
    "TokenUniquenessMonitor",
    "RingFairnessMonitor",
    "TokenListMonitor",
    "FifoOrderMonitor",
    "ReliableDeliveryMonitor",
    "HandoffMonitor",
    "LocationViewMonitor",
]

#: R2 variant labels for which the per-traversal fairness bound holds.
_FAIR_VARIANTS = ("R2'", "R2''")


class MutualExclusionMonitor(Monitor):
    """At most one process inside the critical section, per scope.

    Watches ``cs.enter``/``cs.exit``: entering while another holder is
    inside, or exiting without being the recorded holder, is a
    violation.  This is the event-stream twin of the
    ``CriticalResource`` oracle — it works on replayed traces and on
    runs whose resource was configured not to raise.
    """

    name = "mutex-exclusivity"
    interests = ("cs.enter", "cs.exit")

    def __init__(self) -> None:
        super().__init__()
        self._holder: Dict[str, Optional[str]] = {}

    def on_event(self, event: TraceEvent) -> None:
        scope = event.scope
        if event.etype == "cs.enter":
            holder = self._holder.get(scope)
            if holder is not None:
                self.violation(
                    "mutex.exclusivity", event.time,
                    f"{event.src} entered the CS of {scope} while "
                    f"{holder} was inside",
                    scope=scope, entering=event.src, holder=holder)
            self._holder[scope] = event.src
        else:  # cs.exit
            holder = self._holder.get(scope)
            if holder != event.src:
                self.violation(
                    "mutex.exit_mismatch", event.time,
                    f"{event.src} exited the CS of {scope} but the "
                    f"recorded holder is {holder}",
                    scope=scope, exiting=event.src, holder=holder)
            self._holder[scope] = None


class TokenUniquenessMonitor(Monitor):
    """At most one live token per ring scope and epoch.

    A ``token.arrive`` marks its MSS as the holder; forwarding the
    token (any send of kind ``<scope>.token`` by the holder) releases
    it; ``r2.regenerate`` retires the old epoch.  A second arrival in
    the same epoch while a holder is recorded means two tokens
    circulate — exactly the split-brain R2's epoch guard exists to
    prevent.  An arrival from an epoch older than the live one is a
    stale token being *processed* (the fault-tolerant variant must
    discard those).
    """

    name = "token-uniqueness"
    interests = ("token.arrive", "send.fixed", "send.local",
                 "rel.send", "r2.regenerate")
    #: replicates the on_event early return for sends below: only
    #: ``*.token`` sends matter, so the hub can skip dispatch (and on
    #: the ``send.fixed`` hot path, event construction) for the rest.
    kind_gates = {
        "send.fixed": (".token",),
        "send.local": (".token",),
        "rel.send": (".token",),
    }

    def __init__(self) -> None:
        super().__init__()
        #: scope -> [holder MSS or None, live epoch]
        self._state: Dict[str, List] = {}

    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        scope = event.scope
        if etype == "token.arrive":
            epoch = event.detail.get("epoch", 0)
            state = self._state.get(scope)
            if state is None:
                self._state[scope] = [event.src, epoch]
                return
            holder, live_epoch = state
            if epoch > live_epoch:
                state[0] = event.src
                state[1] = epoch
                return
            if epoch < live_epoch:
                self.violation(
                    "token.stale_epoch", event.time,
                    f"a token of retired epoch {epoch} was processed "
                    f"at {event.src} (live epoch {live_epoch})",
                    scope=scope, mss=event.src,
                    epoch=epoch, live_epoch=live_epoch)
                return
            if holder is not None:
                self.violation(
                    "token.uniqueness", event.time,
                    f"token arrived at {event.src} while {holder} "
                    f"already held the epoch-{epoch} token of {scope}",
                    scope=scope, arriving_at=event.src,
                    holder=holder, epoch=epoch)
            state[0] = event.src
        elif etype == "r2.regenerate":
            epoch = event.detail.get("epoch", 0)
            self._state[scope] = [None, epoch]
        else:  # a send: does it forward a held token?
            kind = event.kind
            if kind is None or not kind.endswith(".token"):
                return
            state = self._state.get(scope)
            if state is not None and state[0] == event.src:
                state[0] = None


class RingFairnessMonitor(Monitor):
    """R2'/R2'': no MH is served twice at the same ``token_val``.

    The token's counter increments once per traversal, so two
    ``cs.enter`` events with the same ``(scope, mh, token_val)`` mean
    one MH was served twice in one traversal — the unfairness a moving
    (or malicious) MH can extract from plain R2 and that the paper's
    counter rule exists to forbid.  Learns each scope's variant from
    the ``variant`` field of ``token.arrive`` and stays silent for
    plain R2 (where double service is possible by design) and for the
    non-token algorithms.
    """

    name = "ring-fairness"
    interests = ("token.arrive", "cs.enter")
    #: set-based and monotone: a thinned stream can only miss a double
    #: service (or a variant announcement), never invent one.
    samplable = True

    def __init__(self) -> None:
        super().__init__()
        self._variant: Dict[str, str] = {}
        self._served: Set[Tuple[str, str, int]] = set()

    def on_event(self, event: TraceEvent) -> None:
        if event.etype == "token.arrive":
            variant = event.detail.get("variant")
            if variant is not None:
                self._variant[event.scope] = variant
            return
        token_val = event.detail.get("token_val")
        if token_val is None:
            return
        if self._variant.get(event.scope) not in _FAIR_VARIANTS:
            return
        key = (event.scope, event.src, token_val)
        if key in self._served:
            self.violation(
                "ring.fairness", event.time,
                f"{event.src} entered the CS of {event.scope} twice "
                f"at token_val={token_val} (more than one access in "
                f"one traversal)",
                scope=event.scope, mh=event.src, token_val=token_val)
        else:
            self._served.add(key)


def _pairs(raw) -> List[Tuple[str, str]]:
    """Normalize a serialized token_list to comparable tuples."""
    return [tuple(pair) for pair in raw]


class TokenListMonitor(Monitor):
    """R2'' token_list bookkeeping, checked hop by hop.

    On every ``token.arrive`` the list must equal what the previous
    MSS forwarded (no mutation in transit) and the pruned list must
    drop exactly the arriving MSS's pairs; every ``token.append`` must
    add exactly the serviced ``(this MSS, MH)`` pair; and no MH still
    on the list may be granted the token again (``token.grant``) —
    the paper's "Variations" rule.  Applies only to scopes whose
    arrivals carry ``variant == "R2''"``.
    """

    name = "token-list"
    interests = ("token.arrive", "token.grant", "token.append",
                 "r2.regenerate")

    def __init__(self) -> None:
        super().__init__()
        #: scope -> {"list": [(mss, mh), ...], "epoch": int}
        self._state: Dict[str, Dict] = {}

    def on_event(self, event: TraceEvent) -> None:
        etype = event.etype
        scope = event.scope
        detail = event.detail
        if etype == "token.arrive":
            if detail.get("variant") != "R2''":
                self._state.pop(scope, None)
                return
            epoch = detail.get("epoch", 0)
            before = _pairs(detail.get("token_list_before", ()))
            after = _pairs(detail.get("token_list", ()))
            state = self._state.get(scope)
            if state is not None and state["epoch"] == epoch:
                if before != state["list"]:
                    self.violation(
                        "token_list.transit", event.time,
                        f"token_list changed in transit to {event.src}: "
                        f"forwarded {state['list']}, arrived {before}",
                        scope=scope, mss=event.src,
                        forwarded=state["list"], arrived=before)
            expected = [p for p in before if p[0] != event.src]
            if after != expected:
                self.violation(
                    "token_list.prune", event.time,
                    f"arrival at {event.src} pruned {before} to "
                    f"{after}, expected {expected}",
                    scope=scope, mss=event.src,
                    before=before, after=after, expected=expected)
            self._state[scope] = {"list": after, "epoch": epoch}
        elif etype == "token.grant":
            state = self._state.get(scope)
            if state is None:
                return
            if detail.get("epoch", 0) != state["epoch"]:
                return
            served = {mh for (_, mh) in state["list"]}
            if event.dst in served:
                self.violation(
                    "token_list.regrant", event.time,
                    f"{event.dst} granted the {scope} token while "
                    f"still on the token_list {state['list']}",
                    scope=scope, mh=event.dst,
                    token_list=state["list"])
        elif etype == "token.append":
            state = self._state.get(scope)
            if state is None:
                return
            pair = tuple(detail.get("pair", ()))
            new_list = _pairs(detail.get("token_list", ()))
            if pair and pair[0] != event.src:
                self.violation(
                    "token_list.append", event.time,
                    f"{event.src} appended the pair {pair} naming a "
                    f"different MSS",
                    scope=scope, mss=event.src, pair=list(pair))
            elif new_list != state["list"] + [pair]:
                self.violation(
                    "token_list.append", event.time,
                    f"append at {event.src} produced {new_list}, "
                    f"expected {state['list'] + [pair]}",
                    scope=scope, mss=event.src,
                    got=new_list, expected=state["list"] + [pair])
            state["list"] = new_list
        else:  # r2.regenerate: fresh empty-list token, new epoch
            self._state.pop(scope, None)


class FifoOrderMonitor(Monitor):
    """Fixed channels deliver in send order, exactly once.

    The Section-2 system model postulates FIFO channels between MSSs;
    every algorithm in the paper leans on it.  Send events carry
    monotonically increasing ids and each ``recv`` is parented to its
    send, so per fixed channel ``(src, dst)`` the parent ids of
    successive receives must be strictly increasing — a repeat is a
    duplicate delivery, a decrease is a reordering.  Wireless hops are
    excluded (their guarantee is prefix-of-sent per cell session, not
    channel-lifetime FIFO across handoffs), as are the reliable
    transport's ``rel.data``/``rel.ack`` envelopes, whose *physical*
    duplicates and retransmissions are legal — the transport's logical
    stream is checked instead (here, once released, and by
    :class:`ReliableDeliveryMonitor`).
    """

    name = "fifo-order"
    interests = ("recv",)
    #: any subsequence of a strictly increasing parent-id stream is
    #: still strictly increasing, so sampling can only miss violations.
    samplable = True

    _SKIP_KINDS = ("rel.data", "rel.ack")

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[Tuple[str, str], int] = {}

    def _is_mss(self, host_id: str) -> bool:
        if self.network is not None:
            return host_id in self.network._mss
        return host_id.startswith("mss")

    def on_event(self, event: TraceEvent) -> None:
        parent = event.parent_id
        if parent is None or event.kind in self._SKIP_KINDS:
            return
        src, dst = event.src, event.dst
        if src is None or dst is None:
            return
        if not (self._is_mss(src) and self._is_mss(dst)):
            return
        channel = (src, dst)
        last = self._last.get(channel)
        if last is not None and parent <= last:
            what = "duplicate" if parent == last else "reordered"
            self.violation(
                "channel.fifo", event.time,
                f"{what} delivery of {event.kind} on the fixed "
                f"channel {src}->{dst}",
                src=src, dst=dst, kind=event.kind,
                send_id=parent, last_send_id=last)
            return
        self._last[channel] = parent


class ReliableDeliveryMonitor(Monitor):
    """The reliable transport releases each message once, in order.

    Every logical submission is a ``rel.send`` carrying its per-channel
    sequence number; the matching release is the ``recv`` parented to
    that ``rel.send``.  Per channel, released sequence numbers must be
    strictly increasing: a repeat is a duplicate delivery (dedup
    failed), a decrease is an out-of-order release.  Gaps are legal —
    the transport explicitly skips sequences it gave up on.
    """

    name = "reliable-delivery"
    interests = ("rel.send", "recv")
    #: a missed ``rel.send`` makes the matching release invisible (the
    #: recv is ignored), and released seqs stay strictly increasing on
    #: any subsequence -- misses only, never false positives.
    samplable = True

    def __init__(self) -> None:
        super().__init__()
        #: rel.send event id -> ((src, dst), seq)
        self._sends: Dict[int, Tuple[Tuple[str, str], int]] = {}
        self._released: Dict[Tuple[str, str], int] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.etype == "rel.send":
            seq = event.detail.get("seq")
            if seq is not None:
                self._sends[event.id] = ((event.src, event.dst), seq)
            return
        meta = self._sends.get(event.parent_id)
        if meta is None:
            return
        channel, seq = meta
        last = self._released.get(channel, 0)
        if seq <= last:
            what = "duplicate" if seq == last else "out-of-order"
            self.violation(
                "reliable.exactly_once", event.time,
                f"{what} release of seq {seq} on the reliable channel "
                f"{channel[0]}->{channel[1]} (last released {last})",
                src=channel[0], dst=channel[1], seq=seq, last=last)
        else:
            self._released[channel] = seq


class HandoffMonitor(Monitor):
    """The mobility protocol loses no MH.

    Tracks each MH's lifecycle as a state machine over
    ``mh.leave``/``mh.join``/``mh.disconnect``/``mh.orphaned``/
    ``mh.reconnect``: a join must follow a leave and name the cell
    actually left (the handoff's ``prev`` pointer is how in-flight
    state chases the MH); a reconnect must follow a disconnect or
    orphaning; and at quiescence no MH may still be in transit.
    A crash (``mh.crash``) is legal from any state — it silently
    forces the host disconnected at the cell that vouches for it, and
    the eventual recovery reconnect must name that cell (or none, for
    an amnesiac host).
    Rerouted joins (the target MSS crashed mid-move) legitimately land
    elsewhere, so only the *origin* continuity is checked, never the
    destination.
    """

    name = "handoff"
    interests = ("mh.leave", "mh.join", "mh.disconnect",
                 "mh.orphaned", "mh.reconnect", "mh.crash")

    def __init__(self) -> None:
        super().__init__()
        #: mh -> (status, prev MSS); unseen MHs are connected
        self._state: Dict[str, Tuple[str, Optional[str]]] = {}

    def on_event(self, event: TraceEvent) -> None:
        mh = event.src
        status, prev = self._state.get(mh, ("connected", None))
        etype = event.etype
        if etype == "mh.leave":
            if status != "connected":
                self.violation(
                    "handoff.lifecycle", event.time,
                    f"{mh} left {event.dst} while {status}",
                    mh=mh, status=status)
            self._state[mh] = ("transit", event.dst)
        elif etype == "mh.join":
            if status != "transit":
                self.violation(
                    "handoff.lifecycle", event.time,
                    f"{mh} joined {event.dst} without a preceding "
                    f"leave (was {status})",
                    mh=mh, status=status)
            else:
                claimed = event.detail.get("prev")
                if claimed != prev:
                    self.violation(
                        "handoff.continuity", event.time,
                        f"{mh} joined {event.dst} claiming to come "
                        f"from {claimed}, but it left {prev}",
                        mh=mh, claimed=claimed, left=prev)
            self._state[mh] = ("connected", None)
        elif etype == "mh.disconnect":
            if status != "connected":
                self.violation(
                    "handoff.lifecycle", event.time,
                    f"{mh} disconnected while {status}",
                    mh=mh, status=status)
            self._state[mh] = ("disconnected", event.dst)
        elif etype == "mh.orphaned":
            if status != "connected":
                self.violation(
                    "handoff.lifecycle", event.time,
                    f"{mh} was orphaned while {status}",
                    mh=mh, status=status)
            self._state[mh] = ("disconnected", event.detail.get("mss"))
        elif etype == "mh.crash":
            # A crash is legal in any state; the host ends up
            # disconnected at whichever cell vouches for it (its
            # current cell, the cell it last left mid-transit, or the
            # cell it had disconnected from).
            self._state[mh] = ("disconnected", event.detail.get("mss"))
        else:  # mh.reconnect
            if status != "disconnected":
                self.violation(
                    "handoff.lifecycle", event.time,
                    f"{mh} reconnected while {status}",
                    mh=mh, status=status)
            else:
                claimed = event.detail.get("prev")
                if (claimed is not None and prev is not None
                        and claimed != prev):
                    self.violation(
                        "handoff.continuity", event.time,
                        f"{mh} reconnected claiming previous cell "
                        f"{claimed}, but it disconnected from {prev}",
                        mh=mh, claimed=claimed, left=prev)
            self._state[mh] = ("connected", None)

    def finalize(self, now: float) -> None:
        for mh, (status, prev) in sorted(self._state.items()):
            if status == "transit":
                self.violation(
                    "handoff.lost_in_transit", now,
                    f"{mh} left {prev} and never joined another cell",
                    mh=mh, left=prev)


class LocationViewMonitor(Monitor):
    """``LV(G)`` stays consistent with ground-truth membership.

    Online, every ``lv.update`` at the coordinator is sanity-checked
    (an added MSS must be in the announced view, a deleted one must
    not).  At finalize, for every watched group: each *connected*
    member's current MSS must be covered by the coordinator's view
    (Section 4's defining property of ``LV(G)``), and every view
    copy held by a view MSS must agree with the coordinator's.
    Watching requires the live group objects (``watch(group)`` or the
    ``groups=`` constructor argument); replay without them runs the
    online checks only.
    """

    name = "location-view"
    interests = ("lv.update",)
    #: every check is self-contained per event (plus a ground-truth
    #: finalize that reads the live network), so thinning is safe.
    samplable = True

    def __init__(self, groups=()) -> None:
        super().__init__()
        self.groups = list(groups)

    def watch(self, group) -> None:
        """Add a live LocationViewGroup for finalize ground truth."""
        self.groups.append(group)

    def on_event(self, event: TraceEvent) -> None:
        detail = event.detail
        add = detail.get("add")
        delete = detail.get("delete")
        view = detail.get("view")
        if view is None:
            return
        if add is not None and add != delete and add not in view:
            self.violation(
                "lv.update", event.time,
                f"view update added {add} but the announced view "
                f"{view} does not contain it",
                scope=event.scope, add=add, view=list(view))
        if delete is not None and delete != add and delete in view:
            self.violation(
                "lv.update", event.time,
                f"view update deleted {delete} but the announced "
                f"view {view} still contains it",
                scope=event.scope, delete=delete, view=list(view))

    def finalize(self, now: float) -> None:
        for group in self.groups:
            network = getattr(group, "network", None) or self.network
            coordinator_view = group.coordinator_view()
            scope = getattr(group, "scope", "group")
            if network is not None:
                for member in group.members:
                    mh = network.mobile_host(member)
                    if not mh.is_connected:
                        continue
                    if mh.current_mss_id not in coordinator_view:
                        self.violation(
                            "lv.coverage", now,
                            f"connected member {member} is at "
                            f"{mh.current_mss_id}, which LV(G) "
                            f"{sorted(coordinator_view)} does not cover",
                            scope=scope, member=member,
                            mss=mh.current_mss_id,
                            view=sorted(coordinator_view))
            for mss_id, copy in sorted(group.view_copies.items()):
                if copy != coordinator_view:
                    self.violation(
                        "lv.copy_divergence", now,
                        f"the view copy at {mss_id} "
                        f"({sorted(copy)}) disagrees with the "
                        f"coordinator's ({sorted(coordinator_view)})",
                        scope=scope, mss=mss_id,
                        copy=sorted(copy),
                        coordinator=sorted(coordinator_view))
