"""Base types for the online invariant-monitoring layer.

A :class:`Monitor` is a pure observer of the trace-event stream: it is
fed every :class:`~repro.trace.events.TraceEvent` the simulation emits
(or a recorded list of them, offline) and accumulates
:class:`Violation` records.  Monitors never schedule events, never send
messages, and never mutate simulation state, so enabling them cannot
change message counts, costs, event order, or randomness — the same
pure-observer contract the trace layer already keeps.

Monitors read time from ``event.time`` (never from the scheduler), so
the same monitor instance works both online (driven by a
:class:`~repro.monitor.hub.MonitorHub` installed as ``network.trace``)
and offline (replayed over a recorded trace with
:func:`~repro.monitor.hub.replay_events`).
Monitors certify the paper's safety claims online (ROADMAP observability arc).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.trace.events import TraceEvent

__all__ = ["Monitor", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One observed breach of a protocol invariant.

    ``invariant`` is a stable dotted identifier (``"mutex.exclusivity"``,
    ``"token.uniqueness"``, ...) that tests and the CLI match on;
    ``message`` is the human-readable account; ``detail`` carries the
    raw evidence (host ids, token values, event ids).
    """

    monitor: str
    invariant: str
    time: float
    message: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return (f"[t={self.time:g}] {self.invariant}: {self.message}")


class Monitor:
    """Base class for invariant monitors and watchdogs.

    Subclasses set :attr:`name` (a short stable identifier) and
    :attr:`interests` — a tuple of event-type strings the monitor wants
    (``None`` subscribes to every event).  The hub uses ``interests``
    to build a per-event-type dispatch table so that a monitor which
    only cares about ``cs.enter``/``cs.exit`` costs nothing on the
    ``send.fixed`` hot path.
    """

    #: stable identifier used in reports and violation records
    name: str = "monitor"
    #: event types this monitor wants; ``None`` means every event
    interests: Optional[Tuple[str, ...]] = None
    #: a samplable monitor stays false-positive-free on a thinned event
    #: stream: its checks are monotone (a subset of the events can only
    #: make it *miss* a violation, never invent one).  Monitors with
    #: exact state machines (e.g. enter/exit pairing) must leave this
    #: ``False`` so the hub always delivers their events.
    samplable: bool = False
    #: event types always delivered even when this monitor is sampled
    #: (state the monitor cannot afford to miss); irrelevant unless
    #: :attr:`samplable` is ``True``.
    critical_etypes: Tuple[str, ...] = ()
    #: ``etype -> kind-suffix tuple``: the hub delivers only events of
    #: that etype whose ``kind`` ends with one of the suffixes.  This
    #: replicates a monitor's own early return so the hub can skip the
    #: dispatch call -- and often the event construction -- entirely.
    #: Active at every sample rate (it is a pure dispatch optimization,
    #: not a sampling mechanism).
    kind_gates: Dict[str, Tuple[str, ...]] = {}

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.hub = None  # set by MonitorHub.attach
        self.network = None  # set by MonitorHub.bind, if bound

    # -- wiring -------------------------------------------------------
    def attach(self, hub) -> None:
        """Called once when the monitor is registered with a hub."""
        self.hub = hub

    def bind(self, network) -> None:
        """Give the monitor ground-truth access to the network.

        Optional: monitors must degrade gracefully (skip ground-truth
        checks) when replaying a recorded trace with no live network.
        """
        self.network = network

    # -- observation --------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        """Observe one trace event.  Pure: must not mutate the sim."""

    def finalize(self, now: float) -> None:
        """Run end-of-run checks (quiescence invariants, stalls)."""

    # -- reporting ----------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, invariant: str, time: float, message: str,
                  **detail: Any) -> Violation:
        record = Violation(monitor=self.name, invariant=invariant,
                           time=time, message=message, detail=dict(detail))
        self.violations.append(record)
        return record
