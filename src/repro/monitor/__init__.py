"""Online invariant monitors, liveness watchdogs, and health telemetry.

The monitor layer turns the paper's run-level correctness claims into
executable, continuously evaluated invariants.  It subscribes to the
trace-event stream (the same instrumentation points, the same
zero-cost-when-off guard) and certifies safety while the simulation
runs, watches for liveness stalls against sim-time deadlines, and
exports periodic health gauges.

Usage::

    from repro import Simulation

    sim = Simulation(n_mss=4, n_mh=8, seed=7, monitors=True)
    ...
    sim.drain()
    sim.assert_invariants()          # raises on any violation
    print(sim.monitor_hub.report())  # or inspect per monitor

or offline, over a recorded trace::

    from repro.monitor import default_monitors, replay_events

    hub = replay_events(sim.tracer.events, default_monitors())
    assert hub.ok, hub.report()

See ``docs/observability.md`` for the invariant catalogue and the
paper sections each one certifies.
"""

from __future__ import annotations

from typing import List

from repro.monitor.base import Monitor, Violation
from repro.monitor.health import HealthMonitor
from repro.monitor.hub import (
    MonitorHub,
    replay_events,
    replay_events_batched,
)
from repro.monitor.liveness import LivenessMonitor
from repro.monitor.recovery import (
    CrashRecoveryMonitor,
    TokenConservationMonitor,
)
from repro.monitor.safety import (
    FifoOrderMonitor,
    HandoffMonitor,
    LocationViewMonitor,
    MutualExclusionMonitor,
    ReliableDeliveryMonitor,
    RingFairnessMonitor,
    TokenListMonitor,
    TokenUniquenessMonitor,
)

#: sample rate used by ``Simulation(monitor_sampling=True)``: high-rate
#: event types are delivered to samplable monitors at a deterministic
#: 1-in-10 stride, which keeps monitored runs within ~15% of
#: unmonitored throughput while safety state machines stay exact (see
#: docs/performance.md for the measured trade-off curve).
DEFAULT_SAMPLE_RATE = 0.1

__all__ = [
    "Monitor",
    "Violation",
    "DEFAULT_SAMPLE_RATE",
    "MonitorHub",
    "replay_events",
    "replay_events_batched",
    "default_monitors",
    "safety_monitors",
    "MutualExclusionMonitor",
    "TokenUniquenessMonitor",
    "RingFairnessMonitor",
    "TokenListMonitor",
    "FifoOrderMonitor",
    "ReliableDeliveryMonitor",
    "HandoffMonitor",
    "LocationViewMonitor",
    "CrashRecoveryMonitor",
    "TokenConservationMonitor",
    "LivenessMonitor",
    "HealthMonitor",
]


def safety_monitors() -> List[Monitor]:
    """Fresh instances of every built-in safety monitor."""
    return [
        MutualExclusionMonitor(),
        TokenUniquenessMonitor(),
        RingFairnessMonitor(),
        TokenListMonitor(),
        FifoOrderMonitor(),
        ReliableDeliveryMonitor(),
        HandoffMonitor(),
        LocationViewMonitor(),
        CrashRecoveryMonitor(),
        TokenConservationMonitor(),
    ]


def default_monitors(
    request_deadline: float = 200.0,
    token_deadline: float = 120.0,
    health_interval: float = 25.0,
) -> List[Monitor]:
    """The full default set: safety + liveness + health."""
    return safety_monitors() + [
        LivenessMonitor(request_deadline=request_deadline,
                        token_deadline=token_deadline),
        HealthMonitor(interval=health_interval),
    ]
