"""Measured recovery-cost benchmark: the policy trade-off in the
paper's currency.

One run per (policy, run length): a single mobile host performs one
unit of recoverable work in every cell it visits, hops to the next cell
every 6 time units (spaced so the migrating meta always catches up
while the host is connected), crashes after the last hop and recovers
ten units later.  Two scopes split the bill the way the trade-off is
argued:

* ``recovery.ckpt``    -- the overhead the policy pays while healthy
  (one wireless uplink per checkpoint, plus discard housekeeping);
* ``recovery.restore`` -- the cost paid after the crash (one fixed hop
  per trail entry walked, the payload's return, the restore downlink).

The headline claim (Khatri): under ``distance:<d>`` the restore bill
depends only on the distance moved since the last checkpoint -- so two
runs whose lengths are congruent modulo *d* pay *exactly* the same
restore cost, no matter how much longer one wandered.  ``per-message``
buys a near-free restore but pays overhead per unit of work;
``periodic`` sits in between and loses whatever a window left
unprotected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.metrics import CostModel

#: the default head-to-head: eager, timed, and distance-bounded.
DEFAULT_POLICIES: Tuple[str, ...] = (
    "per-message", "periodic:12.0", "distance:2",
)
#: short vs long runs, congruent modulo the distance bound above so the
#: independence claim is an exact equality.
DEFAULT_RUN_LENGTHS: Tuple[int, ...] = (5, 25)


@dataclass(frozen=True)
class PolicyRunCost:
    """The measured bill for one (policy, run length) pair."""

    policy: str
    n_moves: int
    checkpoints: int
    ckpt_cost: float
    restore_cost: float
    #: units of recoverable work the crash destroyed for good.
    work_lost: int
    #: sequence number reinstated by the restore (-1 = from nothing).
    restored_seq: int


def measure_policy(
    policy: str,
    n_moves: int,
    seed: int = 1,
    n_mss: int = 4,
    cost_model: Optional[CostModel] = None,
) -> PolicyRunCost:
    """Run the benchmark workload under ``policy`` and price both sides.

    Deterministic for a given (policy, n_moves, seed): the crash is the
    only fault and lands after the last meta arrival has settled.
    """
    # Imported here: the facade imports this package, so a module-level
    # import would cycle during ``import repro``.
    from repro.facade import Simulation
    from repro.faults import FaultPlan, MhCrash
    from repro.net import ConstantLatency, NetworkConfig
    from repro.recovery.clients import CounterClient

    plan = FaultPlan(
        mh_crashes=(
            MhCrash("mh-0", at=10.0 + 6.0 * n_moves,
                    recover_at=20.0 + 6.0 * n_moves),
        ),
        seed=seed,
    )
    config = NetworkConfig(
        fixed_latency=ConstantLatency(1.0),
        wireless_latency=ConstantLatency(0.5),
    )
    sim = Simulation(
        n_mss=n_mss, n_mh=1, seed=seed, config=config,
        fault_plan=plan, recovery=policy, cost_model=cost_model,
    )
    counter = CounterClient(sim.recovery)
    sim.scheduler.schedule_at(1.0, counter.note_work, "mh-0")
    for i in range(n_moves):
        # One unit of work in the current cell, then hop to the next.
        sim.scheduler.schedule_at(2.9 + 6.0 * i, counter.note_work, "mh-0")
        sim.scheduler.schedule_at(
            3.0 + 6.0 * i, sim.mh(0).move_to, f"mss-{(i + 1) % n_mss}"
        )
    sim.drain()
    assert len(sim.recovery.restored) == 1
    return PolicyRunCost(
        policy=policy,
        n_moves=n_moves,
        checkpoints=sim.recovery.checkpoints_taken,
        ckpt_cost=sim.cost("recovery.ckpt"),
        restore_cost=sim.cost("recovery.restore"),
        work_lost=counter.lost["mh-0"],
        restored_seq=sim.recovery.restored[0][2],
    )


def run_length_table(
    policies: Sequence[str] = DEFAULT_POLICIES,
    run_lengths: Sequence[int] = DEFAULT_RUN_LENGTHS,
    seed: int = 1,
    cost_model: Optional[CostModel] = None,
) -> List[PolicyRunCost]:
    """The full policy x run-length sweep, row-major by policy."""
    return [
        measure_policy(policy, n, seed=seed, cost_model=cost_model)
        for policy in policies
        for n in run_lengths
    ]
