"""Checkpointing policies: when to pay the save.

The spectrum mirrors the search/inform trade-off the paper studies for
location management, transplanted to recovery:

* :class:`PerMessagePolicy` -- checkpoint after every unit of progress.
  Zero recomputation at recovery, maximal wireless overhead.
* :class:`PeriodicPolicy` -- checkpoint dirty hosts at most once per
  ``interval`` of simulated time.  Overhead bounded per period, but the
  trail (and thus the recovery fetch) grows with however far the host
  wandered within a period.
* :class:`DistancePolicy` -- Khatri et al.'s rule: checkpoint when the
  host has moved ``distance`` cells since its last checkpoint.  The
  trail can never exceed ``distance``, so the recovery cost is bounded
  by a constant of the operator's choosing, *independent of run
  length* -- the property the benchmark in ``BENCH_6`` demonstrates.
* :class:`NoCheckpointPolicy` -- never checkpoint (baseline; recovery
  restarts from nothing).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.manager import RecoveryManager


class CheckpointPolicy:
    """Interface: decides when the manager takes a checkpoint."""

    name = "policy"

    def bind(self, manager: "RecoveryManager") -> None:
        """Attach to the manager (hook for schedulers)."""

    def on_progress(self, manager: "RecoveryManager", mh_id: str) -> None:
        """A client reported one unit of recoverable progress."""

    def on_moved(
        self, manager: "RecoveryManager", mh_id: str, distance: int
    ) -> None:
        """The MH's meta arrived at a new cell, ``distance`` cells from
        its checkpoint's home."""


class NoCheckpointPolicy(CheckpointPolicy):
    """Never checkpoint: recovery restores nothing (baseline)."""

    name = "none"


class PerMessagePolicy(CheckpointPolicy):
    """Checkpoint on every unit of progress."""

    name = "per-message"

    def on_progress(self, manager: "RecoveryManager", mh_id: str) -> None:
        manager.checkpoint(mh_id)


class PeriodicPolicy(CheckpointPolicy):
    """Checkpoint hosts with fresh progress at most once per interval.

    The timer is lazy: it only runs while some host is dirty, so a
    quiescent simulation drains its event queue normally instead of
    ticking forever.
    """

    name = "periodic"

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"periodic checkpoint interval must be > 0, got {interval}"
            )
        self.interval = interval
        self._dirty: Set[str] = set()
        self._running = False

    def on_progress(self, manager: "RecoveryManager", mh_id: str) -> None:
        self._dirty.add(mh_id)
        if not self._running:
            self._running = True
            manager.network.scheduler.schedule(
                self.interval, self._tick, manager
            )

    def _tick(self, manager: "RecoveryManager") -> None:
        dirty, self._dirty = self._dirty, set()
        self._running = False
        for mh_id in sorted(dirty):
            manager.checkpoint(mh_id)


class DistancePolicy(CheckpointPolicy):
    """Khatri-style distance-based checkpointing.

    A host checkpoints when it has progress to protect and has moved
    ``distance`` cells since the last checkpoint; the first unit of
    progress is checkpointed immediately (there is nothing to trail
    back to before that).
    """

    name = "distance"

    def __init__(self, distance: int) -> None:
        if distance < 1:
            raise ConfigurationError(
                f"checkpoint distance must be >= 1, got {distance}"
            )
        self.distance = distance

    def on_progress(self, manager: "RecoveryManager", mh_id: str) -> None:
        if manager.seq_of(mh_id) == 0:
            manager.checkpoint(mh_id)

    def on_moved(
        self, manager: "RecoveryManager", mh_id: str, distance: int
    ) -> None:
        if distance >= self.distance:
            manager.checkpoint(mh_id)


def policy_from_spec(spec: object) -> CheckpointPolicy:
    """Build a policy from a string spec (CLI / facade convenience).

    Accepts a ready policy instance unchanged, or one of ``"none"``,
    ``"per-message"``, ``"periodic:<interval>"``, ``"distance:<d>"``.
    """
    if isinstance(spec, CheckpointPolicy):
        return spec
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"recovery policy spec must be a string or policy, got {spec!r}"
        )
    head, _, arg = spec.partition(":")
    if head == "none" and not arg:
        return NoCheckpointPolicy()
    if head == "per-message" and not arg:
        return PerMessagePolicy()
    if head == "periodic":
        try:
            return PeriodicPolicy(float(arg))
        except ValueError:
            raise ConfigurationError(
                f"bad periodic interval in recovery spec {spec!r}"
            ) from None
    if head == "distance":
        try:
            return DistancePolicy(int(arg))
        except ValueError:
            raise ConfigurationError(
                f"bad distance in recovery spec {spec!r}"
            ) from None
    raise ConfigurationError(f"unknown recovery policy spec {spec!r}")
