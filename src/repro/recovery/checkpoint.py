"""Checkpoint payloads, migration metadata, and the per-MSS store.

The division of labour is the heart of the distance-based scheme:

* the :class:`Checkpoint` (the MH's full recoverable state) is written
  once to the *stable store* of the MSS serving the cell where it was
  taken -- its **home** -- and never moves on its own;
* the :class:`CheckpointMeta` is a few words -- home pointer, sequence
  number, and the *trail* of stations visited since the checkpoint --
  and migrates with the MH through the ordinary Section 2 handoff, as
  one more :class:`~repro.hosts.mss.HandoffParticipant` share.

Moving therefore costs O(1) extra handoff bytes, while recovering costs
one fixed-network hop per trail entry (the fetch walks the trail back
to the home) plus the payload's return -- i.e. proportional to the
distance moved since the checkpoint, never to the length of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.hosts.mss import HandoffParticipant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.manager import RecoveryManager


@dataclass(frozen=True)
class Checkpoint:
    """A MH's full recoverable state, resident at its home MSS.

    ``state`` maps each registered recovery client's name to whatever
    that client captured; the manager hands each share back to its
    client at restore time.
    """

    mh_id: str
    seq: int
    taken_at: float
    state: Dict[str, object]


@dataclass(frozen=True)
class CheckpointMeta:
    """The migrating pointer to a MH's latest checkpoint.

    ``trail`` lists the MSSs visited since the checkpoint, most recent
    first; its last entry is the home itself, so a recovery fetch
    simply walks the trail.  A fresh checkpoint resets the trail to
    ``()``.
    """

    mh_id: str
    seq: int
    home_mss_id: str
    trail: Tuple[str, ...] = ()


class CheckpointStore(HandoffParticipant):
    """One MSS's stable checkpoint storage and meta shelf.

    Stable storage survives the station's own crash windows (the usual
    stable-store assumption of the checkpointing literature); only the
    *volatile* cell-management sets are lost when a MSS goes down.
    """

    name = "recovery.ckpt"

    def __init__(self, manager: "RecoveryManager", mss_id: str) -> None:
        self._manager = manager
        self.mss_id = mss_id
        #: checkpoints homed at this station, by MH.
        self._payloads: Dict[str, Checkpoint] = {}
        #: metas of MHs currently residing in this cell, by MH.
        self._meta: Dict[str, CheckpointMeta] = {}

    # ------------------------------------------------------------------
    # Local accessors (used by the manager)
    # ------------------------------------------------------------------

    def meta(self, mh_id: str) -> Optional[CheckpointMeta]:
        return self._meta.get(mh_id)

    def payload(self, mh_id: str) -> Optional[Checkpoint]:
        return self._payloads.get(mh_id)

    def install_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Home a fresh checkpoint here and reset its meta trail."""
        self._payloads[checkpoint.mh_id] = checkpoint
        self._meta[checkpoint.mh_id] = CheckpointMeta(
            mh_id=checkpoint.mh_id,
            seq=checkpoint.seq,
            home_mss_id=self.mss_id,
            trail=(),
        )

    def drop_payload(self, mh_id: str) -> None:
        self._payloads.pop(mh_id, None)

    # ------------------------------------------------------------------
    # HandoffParticipant protocol
    # ------------------------------------------------------------------

    def handoff_state(self, mh_id: str) -> Optional[CheckpointMeta]:
        meta = self._meta.pop(mh_id, None)
        if meta is None:
            return None
        # The payload stays home; the migrating meta grows its trail by
        # this station, keeping a walkable path back to the payload.
        return CheckpointMeta(
            mh_id=meta.mh_id,
            seq=meta.seq,
            home_mss_id=meta.home_mss_id,
            trail=(self.mss_id,) + meta.trail,
        )

    def install_handoff_state(self, mh_id: str, state: object) -> None:
        meta: CheckpointMeta = state
        self._meta[mh_id] = meta
        self._manager._meta_arrived(self, mh_id, meta)
