"""Checkpointing and crash recovery for mobile hosts (``repro.recovery``).

The paper's fault model stops at *disconnections*: a MH that detaches
politely announces ``disconnect(r)`` and its per-MH state waits at the
old MSS until the handoff pulls it.  A *crash* is harsher -- the host's
volatile state is gone and the radio simply goes silent -- yet the
recovery literature for this exact architecture (Khatri et al.'s
distance-based checkpointing for mobile hosts) shows the same two-tier
structuring argument applies: keep the checkpoint at a support station,
migrate only a tiny pointer on each handoff, and bound the recovery
cost by the *distance moved since the last checkpoint* instead of the
length of the run.

This package implements that subsystem:

* :class:`~repro.recovery.checkpoint.CheckpointStore` -- a per-MSS
  stable store, registered as an ordinary
  :class:`~repro.hosts.mss.HandoffParticipant`: the checkpoint payload
  stays where it was taken; only :class:`CheckpointMeta` (home pointer
  plus the trail of cells visited since) rides the existing handoff.
* :class:`~repro.recovery.manager.RecoveryManager` -- orchestrates
  saves (one wireless uplink, scope ``recovery.ckpt``), the
  trail-walking fetch at recovery time (scope ``recovery.restore``),
  and the final wireless restore to the recovered host.
* pluggable :mod:`~repro.recovery.policy` -- per-message, periodic,
  and Khatri distance-based checkpointing, so experiments can compare
  overhead against recovery cost under the standard cost model.
"""

from repro.recovery.bench import (
    PolicyRunCost,
    measure_policy,
    run_length_table,
)
from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointMeta,
    CheckpointStore,
)
from repro.recovery.clients import (
    CounterClient,
    MutexCheckpointClient,
    RecoveryClient,
)
from repro.recovery.manager import RecoveryManager
from repro.recovery.policy import (
    CheckpointPolicy,
    DistancePolicy,
    NoCheckpointPolicy,
    PerMessagePolicy,
    PeriodicPolicy,
    policy_from_spec,
)

__all__ = [
    "Checkpoint",
    "CheckpointMeta",
    "CheckpointPolicy",
    "CheckpointStore",
    "CounterClient",
    "DistancePolicy",
    "MutexCheckpointClient",
    "NoCheckpointPolicy",
    "PerMessagePolicy",
    "PeriodicPolicy",
    "PolicyRunCost",
    "RecoveryClient",
    "RecoveryManager",
    "measure_policy",
    "policy_from_spec",
    "run_length_table",
]
