"""Recovery clients: the protocol-side state that checkpoints cover.

A client owns some per-MH volatile state worth protecting.  It reports
progress to the manager (which the policy may turn into a checkpoint),
loses its live copy when the host crashes, and reinstates whatever the
latest checkpoint captured when the restore arrives.
Client side of the distance-based checkpointing subsystem (ROADMAP resilience arc).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.recovery.manager import RecoveryManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


class RecoveryClient:
    """Interface: one protocol's share of the recoverable state."""

    #: unique name keying this client's share inside a checkpoint.
    name = "client"

    def capture(self, mh_id: str) -> object:
        """Snapshot this client's state at ``mh_id`` for a checkpoint."""
        raise NotImplementedError

    def on_crash(self, mh_id: str) -> None:
        """The host died: drop the live copy (volatile state is gone)."""

    def restore(self, mh_id: str, state: Optional[object]) -> None:
        """Reinstate ``state`` after recovery (``None`` = no checkpoint
        survived; restart from nothing)."""
        raise NotImplementedError


class CounterClient(RecoveryClient):
    """A unit-of-work counter per MH -- the benchmark's workload.

    ``note_work`` models the host completing one unit of recoverable
    computation; the difference between work performed and the counter
    after a crash+restore cycle is exactly the *recomputation* a
    checkpoint policy failed to protect.
    """

    name = "counter"

    def __init__(self, manager: RecoveryManager) -> None:
        self._manager = manager
        manager.add_client(self)
        self.work: Dict[str, int] = {m: 0 for m in manager.mh_ids}
        #: units wiped by crashes before any checkpoint covered them.
        self.lost: Dict[str, int] = {m: 0 for m in manager.mh_ids}

    def note_work(self, mh_id: str, units: int = 1) -> None:
        """Perform ``units`` of recoverable work at ``mh_id``."""
        self.work[mh_id] = self.work.get(mh_id, 0) + units
        for _ in range(units):
            self._manager.note_progress(mh_id)

    def capture(self, mh_id: str) -> int:
        return self.work.get(mh_id, 0)

    def on_crash(self, mh_id: str) -> None:
        self.lost[mh_id] = self.work.get(mh_id, 0)
        self.work[mh_id] = 0

    def restore(self, mh_id: str, state: Optional[object]) -> None:
        recovered = int(state) if state is not None else 0
        self.work[mh_id] = recovered
        self.lost[mh_id] = max(0, self.lost.get(mh_id, 0) - recovered)


class MutexCheckpointClient(RecoveryClient):
    """Protects a MH's outstanding mutual-exclusion request.

    The wrapped algorithm calls :meth:`note_requested` /
    :meth:`note_completed`; a restore finding an unserved request
    resubmits it through ``resubmit`` -- so a crash between request and
    grant does not silently drop the host's claim to the region.
    """

    name = "mutex"

    def __init__(
        self,
        manager: RecoveryManager,
        resubmit: Callable[[str], None],
    ) -> None:
        self._manager = manager
        manager.add_client(self)
        self._resubmit = resubmit
        self.outstanding: Set[str] = set()
        self.resubmitted: List[str] = []

    def note_requested(self, mh_id: str) -> None:
        self.outstanding.add(mh_id)
        self._manager.note_progress(mh_id)

    def note_completed(self, mh_id: str) -> None:
        self.outstanding.discard(mh_id)
        # Completion is progress worth protecting too: a checkpoint
        # still claiming the request would make a later restore
        # resubmit an already-served access.
        self._manager.note_progress(mh_id)

    def capture(self, mh_id: str) -> bool:
        return mh_id in self.outstanding

    def on_crash(self, mh_id: str) -> None:
        self.outstanding.discard(mh_id)

    def restore(self, mh_id: str, state: Optional[object]) -> None:
        if state and mh_id not in self.outstanding:
            self.outstanding.add(mh_id)
            self.resubmitted.append(mh_id)
            self._resubmit(mh_id)
