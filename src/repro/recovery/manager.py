"""The recovery manager: saves, trail-walking fetches, restores.

Message kinds and their pricing under the standard cost model:

========================  =========================  ====================
kind                      path                       scope
========================  =========================  ====================
``recovery.save``         MH -> local MSS            ``recovery.ckpt``
                          (1 wireless uplink)
``recovery.discard``      new home -> old home       ``recovery.ckpt``
                          (1 fixed)
``recovery.fetch``        trail walk, one fixed      ``recovery.restore``
                          hop per trail entry
``recovery.payload``      home -> requester          ``recovery.restore``
                          (1 fixed)
``recovery.restore``      MSS -> recovered MH        ``recovery.restore``
                          (1 wireless downlink)
========================  =========================  ====================

The two scopes split the ledger the way the trade-off is argued:
``recovery.ckpt`` is the *overhead* a policy pays while everything is
healthy; ``recovery.restore`` is the *recovery cost* paid after a
crash.  ``MetricsSnapshot.cost(model, scope)`` prices each side.

The meta's migration costs nothing here: it rides the Section 2
handoff the mobility layer already pays for -- which is precisely why
distance-based checkpointing is cheap on this architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.messages import Message
from repro.recovery.checkpoint import Checkpoint, CheckpointMeta, CheckpointStore
from repro.recovery.policy import CheckpointPolicy, NoCheckpointPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.recovery.clients import RecoveryClient

CKPT_SCOPE = "recovery.ckpt"
RESTORE_SCOPE = "recovery.restore"


@dataclass(frozen=True)
class SavePayload:
    """Uplinked by the MH: a fresh checkpoint to home at its cell."""

    mh_id: str
    seq: int
    state: Dict[str, object]


@dataclass(frozen=True)
class FetchPayload:
    """Walks the trail toward the home holding the payload."""

    mh_id: str
    remaining: Tuple[str, ...]
    requester_mss_id: str


@dataclass(frozen=True)
class PayloadReturn:
    """The checkpoint coming back from its home (``None`` = lost)."""

    mh_id: str
    checkpoint: Optional[Checkpoint]


@dataclass(frozen=True)
class DiscardPayload:
    """Tells an old home its copy is superseded."""

    mh_id: str
    seq: int


class RecoveryManager:
    """Checkpointing and crash recovery over a set of mobile hosts.

    Args:
        network: the simulated system (faults must be installed for
            crash-driven restores to fire; checkpointing alone works
            without them).
        policy: when to checkpoint (default: never).
        mh_ids: the hosts covered (default: every registered MH).
        scope_prefix: namespace for the manager's message kinds.
    """

    def __init__(
        self,
        network: "Network",
        policy: Optional[CheckpointPolicy] = None,
        mh_ids: Optional[List[str]] = None,
        scope_prefix: str = "recovery",
    ) -> None:
        self.network = network
        self.policy = policy if policy is not None else NoCheckpointPolicy()
        self.mh_ids = list(mh_ids) if mh_ids is not None else network.mh_ids()
        if not self.mh_ids:
            raise ConfigurationError("recovery manager needs at least one MH")
        self.kind_save = f"{scope_prefix}.save"
        self.kind_fetch = f"{scope_prefix}.fetch"
        self.kind_payload = f"{scope_prefix}.payload"
        self.kind_discard = f"{scope_prefix}.discard"
        self.kind_restore = f"{scope_prefix}.restore"
        self.kind_meta = f"{scope_prefix}.meta"
        self._clients: List["RecoveryClient"] = []
        self._seq: Dict[str, int] = {}
        self._has_checkpoint: Set[str] = set()
        self._awaiting: Set[str] = set()
        self.checkpoints_taken = 0
        #: (time, mh_id, seq) of completed restores; seq -1 = restarted
        #: from nothing (no checkpoint existed or it was lost).
        self.restored: List[Tuple[float, str, int]] = []
        self._stores: Dict[str, CheckpointStore] = {}
        for mss_id in network.mss_ids():
            mss = network.mss(mss_id)
            store = CheckpointStore(self, mss_id)
            self._stores[mss_id] = store
            mss.add_handoff_participant(store)
            mss.register_handler(self.kind_save, self._on_save)
            mss.register_handler(self.kind_fetch, self._on_fetch)
            mss.register_handler(self.kind_payload, self._on_payload)
            mss.register_handler(self.kind_discard, self._on_discard)
            mss.register_handler(self.kind_meta, self._on_meta)
        for mh_id in self.mh_ids:
            network.mobile_host(mh_id).register_handler(
                self.kind_restore, self._on_restore
            )
        if network.faults is not None:
            network.faults.add_mh_crash_listener(self._on_mh_crash)
            network.faults.add_mh_recovery_listener(self._on_mh_recover)
        self.policy.bind(self)

    # ------------------------------------------------------------------
    # Client registration and progress
    # ------------------------------------------------------------------

    def add_client(self, client: "RecoveryClient") -> None:
        """Register a protocol's share of the recoverable state."""
        if any(c.name == client.name for c in self._clients):
            raise ConfigurationError(
                f"recovery client {client.name!r} already registered"
            )
        self._clients.append(client)

    def note_progress(self, mh_id: str) -> None:
        """A client made one unit of recoverable progress at ``mh_id``."""
        self.policy.on_progress(self, mh_id)

    def seq_of(self, mh_id: str) -> int:
        """Sequence number of the latest checkpoint taken (0 = none)."""
        return self._seq.get(mh_id, 0)

    def store(self, mss_id: str) -> CheckpointStore:
        """The checkpoint store at ``mss_id`` (for tests)."""
        return self._stores[mss_id]

    # ------------------------------------------------------------------
    # Taking checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, mh_id: str) -> bool:
        """Capture client state at ``mh_id`` and uplink it to the local
        MSS.  Returns False (no-op) while the host cannot transmit."""
        mh = self.network.mobile_host(mh_id)
        if mh.crashed or not mh.is_connected:
            return False
        seq = self._seq.get(mh_id, 0) + 1
        self._seq[mh_id] = seq
        state = {c.name: c.capture(mh_id) for c in self._clients}
        self.checkpoints_taken += 1
        if self.network._trace_on:
            self.network._trace.emit(
                "recovery.checkpoint",
                scope=CKPT_SCOPE,
                src=mh_id,
                dst=mh.current_mss_id,
                seq=seq,
            )
        mh.send_to_mss(
            self.kind_save, SavePayload(mh_id, seq, state), CKPT_SCOPE
        )
        return True

    def _on_save(self, message: Message) -> None:
        payload: SavePayload = message.payload
        mss_id = message.dst
        store = self._stores[mss_id]
        old_meta = store.meta(payload.mh_id)
        if (
            old_meta is not None
            and old_meta.home_mss_id != mss_id
            and not self.network.is_mss_crashed(old_meta.home_mss_id)
        ):
            # The superseded payload sits at another station: one fixed
            # message reclaims its stable storage.
            self.network.mss(mss_id).send_fixed(
                old_meta.home_mss_id,
                self.kind_discard,
                DiscardPayload(payload.mh_id, old_meta.seq),
                CKPT_SCOPE,
            )
        store.install_checkpoint(
            Checkpoint(
                mh_id=payload.mh_id,
                seq=payload.seq,
                taken_at=self.network.scheduler.now,
                state=payload.state,
            )
        )
        self._has_checkpoint.add(payload.mh_id)

    def _on_discard(self, message: Message) -> None:
        payload: DiscardPayload = message.payload
        store = self._stores[message.dst]
        current = store.payload(payload.mh_id)
        if current is not None and current.seq <= payload.seq:
            store.drop_payload(payload.mh_id)

    # ------------------------------------------------------------------
    # Meta migration hook (called by the stores)
    # ------------------------------------------------------------------

    def _meta_arrived(
        self, store: CheckpointStore, mh_id: str, meta: CheckpointMeta
    ) -> None:
        mh = self.network.mobile_host(mh_id)
        if mh_id in self._awaiting and mh.current_mss_id == store.mss_id:
            # The recovered host reattached here and its pointer just
            # caught up: walk the trail.
            self._start_fetch(mh_id, store)
            return
        if (
            not mh.crashed
            and mh.is_connected
            and mh.current_mss_id is not None
            and mh.current_mss_id != store.mss_id
        ):
            # A crash raced the handoff: the meta landed at a station
            # the host has since abandoned (e.g. it was orphaned and
            # rejoined elsewhere while the reply retransmitted).  Left
            # shelved here, no future handoff would ever pop it -- so
            # chase the host, one fixed hop per arrival.
            self._forward_meta(store, mh_id)
            return
        if mh_id not in self._awaiting:
            self.policy.on_moved(self, mh_id, len(meta.trail))

    def _forward_meta(self, store: CheckpointStore, mh_id: str) -> None:
        """Ship the meta from ``store`` to the host's current cell."""
        target = self.network.mobile_host(mh_id).current_mss_id
        meta = store.handoff_state(mh_id)  # pops + grows the trail
        if meta is None:  # pragma: no cover - defensive
            return
        if self.network._trace_on:
            self.network._trace.emit(
                "recovery.meta_forward",
                scope=CKPT_SCOPE,
                src=store.mss_id,
                dst=target,
                mh_id=mh_id,
                seq=meta.seq,
            )
        self.network.metrics.record_fault("recovery.meta_forwarded")
        self.network.mss(store.mss_id).send_fixed(
            target, self.kind_meta, meta, CKPT_SCOPE
        )

    def _on_meta(self, message: Message) -> None:
        meta: CheckpointMeta = message.payload
        store = self._stores[message.dst]
        current = store.meta(meta.mh_id)
        if current is not None and current.seq >= meta.seq:
            return  # a fresher checkpoint already landed here
        store.install_handoff_state(meta.mh_id, meta)

    # ------------------------------------------------------------------
    # Crash / recovery listeners
    # ------------------------------------------------------------------

    def _on_mh_crash(self, mh_id: str) -> None:
        if mh_id not in self.mh_ids:
            return
        # Restart any interrupted restore from scratch at next recovery.
        self._awaiting.discard(mh_id)
        for client in self._clients:
            client.on_crash(mh_id)

    def _on_mh_recover(self, mh_id: str) -> None:
        if mh_id not in self.mh_ids:
            return
        mh = self.network.mobile_host(mh_id)
        if mh_id not in self._has_checkpoint:
            self._restart_from_nothing(mh_id, reason="no_checkpoint")
            return
        self._awaiting.add(mh_id)
        # Recovered into the very cell that shelves the meta (the
        # reconnect involves no handoff, so _meta_arrived never fires):
        # fetch from the local shelf -- but only once the host has
        # actually reattached, otherwise the restore downlink would pay
        # a needless search for a host mid-reconnect.
        self._await_local(mh_id)

    def _await_local(self, mh_id: str) -> None:
        if mh_id not in self._awaiting:
            return  # the handoff path delivered the meta first
        mh = self.network.mobile_host(mh_id)
        if mh.crashed:
            return  # died again; the next recovery restarts the wait
        mss_id = mh.current_mss_id
        if (
            not mh.is_connected
            or mss_id is None
            # The host flips to connected as soon as it transmits the
            # reconnect greeting; the cell only lists it once the
            # accept round-trip lands.  Wait for the cell's view, so
            # the restore downlink is a plain local delivery and not a
            # needless search for a half-attached host.
            or not self.network.mss(mss_id).is_local(mh_id)
        ):
            self.network.scheduler.schedule(
                self.network.config.search_retry_delay,
                self._await_local,
                mh_id,
            )
            return
        store = self._stores[mss_id]
        if store.meta(mh_id) is not None:
            self._start_fetch(mh_id, store)
            return
        # No meta on the local shelf: a crash raced a handoff somewhere.
        # The manager's directory view finds the shelf still holding it
        # (control-plane knowledge; the data transfer below is a real
        # fixed message).  Pick the freshest if several stale shelves
        # survive.
        holders = [
            s for s in self._stores.values()
            if s is not store and s.meta(mh_id) is not None
        ]
        if not holders:
            # The meta is still in flight on a reliable channel; its
            # arrival fires _meta_arrived, which resumes this restore.
            return
        holder = max(holders, key=lambda s: s.meta(mh_id).seq)
        if self.network.is_mss_crashed(holder.mss_id):
            # Same semantics as a crashed home in _start_fetch: the
            # pointer is unreachable, restart from nothing rather than
            # wait on a station that may never return.
            self._awaiting.discard(mh_id)
            self._restart_from_nothing(mh_id, reason="checkpoint_lost")
            return
        self._forward_meta(holder, mh_id)

    def _restart_from_nothing(self, mh_id: str, reason: str) -> None:
        self.network.metrics.record_fault(f"recovery.{reason}")
        if self.network._trace_on:
            self.network._trace.emit(
                "recovery.restored",
                scope=RESTORE_SCOPE,
                src=mh_id,
                seq=-1,
                reason=reason,
            )
        for client in self._clients:
            client.restore(mh_id, None)
        self.restored.append((self.network.scheduler.now, mh_id, -1))

    # ------------------------------------------------------------------
    # The fetch walk
    # ------------------------------------------------------------------

    def _start_fetch(self, mh_id: str, store: CheckpointStore) -> None:
        self._awaiting.discard(mh_id)
        meta = store.meta(mh_id)
        if self.network._trace_on:
            self.network._trace.emit(
                "recovery.fetch",
                scope=RESTORE_SCOPE,
                src=store.mss_id,
                home=meta.home_mss_id,
                mh_id=mh_id,
                distance=len(meta.trail),
            )
        if meta.home_mss_id == store.mss_id:
            # Payload is already local (the host never left, or the
            # checkpoint was re-homed here by an earlier recovery).
            self._complete_restore(store.mss_id, store.payload(mh_id))
            return
        if self.network.is_mss_crashed(meta.home_mss_id):
            self._restart_from_nothing(mh_id, reason="checkpoint_lost")
            return
        # Walk the trail; stations currently dark are skipped (their
        # neighbours forward around them), the home itself is alive.
        trail = [m for m in meta.trail if not self.network.is_mss_crashed(m)]
        if not trail:
            trail = [meta.home_mss_id]
        self.network.mss(store.mss_id).send_fixed(
            trail[0],
            self.kind_fetch,
            FetchPayload(mh_id, tuple(trail[1:]), store.mss_id),
            RESTORE_SCOPE,
        )

    def _on_fetch(self, message: Message) -> None:
        payload: FetchPayload = message.payload
        mss_id = message.dst
        remaining = [
            m for m in payload.remaining
            if not self.network.is_mss_crashed(m)
        ]
        if remaining:
            self.network.mss(mss_id).send_fixed(
                remaining[0],
                self.kind_fetch,
                FetchPayload(
                    payload.mh_id, tuple(remaining[1:]),
                    payload.requester_mss_id,
                ),
                RESTORE_SCOPE,
            )
            return
        # End of the trail: this station is the home; return the payload
        # directly to the requester (one fixed hop) and hand over the
        # home role.
        store = self._stores[mss_id]
        checkpoint = store.payload(payload.mh_id)
        store.drop_payload(payload.mh_id)
        self.network.mss(mss_id).send_fixed(
            payload.requester_mss_id,
            self.kind_payload,
            PayloadReturn(payload.mh_id, checkpoint),
            RESTORE_SCOPE,
        )

    def _on_payload(self, message: Message) -> None:
        payload: PayloadReturn = message.payload
        if payload.checkpoint is None:
            self._restart_from_nothing(
                payload.mh_id, reason="checkpoint_lost"
            )
            return
        # Re-home the checkpoint where the host now lives, so the next
        # crash (before any move) recovers with a purely local fetch.
        self._stores[message.dst].install_checkpoint(payload.checkpoint)
        self._complete_restore(message.dst, payload.checkpoint)

    def _complete_restore(
        self, mss_id: str, checkpoint: Optional[Checkpoint]
    ) -> None:
        if checkpoint is None:  # pragma: no cover - defensive
            return
        mh_id = checkpoint.mh_id
        mh = self.network.mobile_host(mh_id)
        if mh.crashed:
            return  # died again mid-restore; the next recovery retries
        mss = self.network.mss(mss_id)
        if mss.is_local(mh_id):
            mss.send_to_local_mh(
                mh_id, self.kind_restore, checkpoint, RESTORE_SCOPE
            )
        else:
            # The host wandered off while the fetch was in flight.
            mss.send_to_mh(
                mh_id, self.kind_restore, checkpoint, RESTORE_SCOPE
            )

    def _on_restore(self, message: Message) -> None:
        checkpoint: Checkpoint = message.payload
        mh_id = checkpoint.mh_id
        self.network.metrics.record_fault("recovery.restored")
        if self.network._trace_on:
            self.network._trace.emit(
                "recovery.restored",
                scope=RESTORE_SCOPE,
                src=mh_id,
                seq=checkpoint.seq,
            )
        for client in self._clients:
            client.restore(mh_id, checkpoint.state.get(client.name))
        self.restored.append(
            (self.network.scheduler.now, mh_id, checkpoint.seq)
        )
