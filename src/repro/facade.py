"""The :class:`Simulation` facade -- the library's one-stop entry point.

Builds a complete mobile system (scheduler, metrics, network, M support
stations, N mobile hosts with an initial placement) from a handful of
parameters, and exposes convenience accessors used by the examples,
tests and benchmarks.

Example::

    from repro import CostModel, Simulation

    sim = Simulation(n_mss=5, n_mh=20, seed=42)
    sim.mh(0).move_to(sim.mss_id(3))
    sim.run(until=100.0)
    print(sim.metrics.report(sim.cost_model))
One constructor builds the paper's whole Section 2 system model.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.faults import FaultPlan, apply_fault_plan
from repro.hosts import MobileHost, MobileSupportStation
from repro.metrics import CostModel, MetricsCollector
from repro.net import Network, NetworkConfig
from repro.net.cache_search import CachingSearch
from repro.net.regional_search import RegionalSearch
from repro.net.search import (
    AbstractSearch,
    BroadcastSearch,
    HomeAgentSearch,
    SearchProtocol,
)
from repro.sim import make_scheduler

#: ways to place the N MHs into the M cells at construction time.
Placement = Union[str, Sequence[int], Callable[[int, int], int]]

_SEARCH_FACTORIES: Dict[str, Callable[[], SearchProtocol]] = {
    "abstract": AbstractSearch,
    "broadcast": BroadcastSearch,
    "home-agent": HomeAgentSearch,
    "caching": CachingSearch,
    "regional": RegionalSearch,
}


def _iter_placement(
    placement: Placement, n_mh: int, n_mss: int, rng: random.Random
) -> Iterator[int]:
    """Initial cell indices, one per MH, as a lazy stream.

    The generator form lets the population store fill its arrays
    without an intermediate N-element python list (at N=1M that list
    alone would rival the arrays' whole footprint).  Draw order for
    ``"random"`` is identical to the eager path, so a given seed
    places MHs the same way with and without the store.
    """
    if callable(placement):
        return (placement(i, n_mss) % n_mss for i in range(n_mh))
    if isinstance(placement, str):
        if placement == "round_robin":
            return (i % n_mss for i in range(n_mh))
        if placement == "single_cell":
            return (0 for _ in range(n_mh))
        if placement == "random":
            return (rng.randrange(n_mss) for _ in range(n_mh))
        raise ConfigurationError(f"unknown placement: {placement!r}")
    cells = list(placement)
    if len(cells) != n_mh:
        raise ConfigurationError(
            f"placement lists {len(cells)} cells for {n_mh} MHs"
        )
    return (cell % n_mss for cell in cells)


def _resolve_placement(
    placement: Placement, n_mh: int, n_mss: int, rng: random.Random
) -> List[int]:
    """Index of the initial cell for each MH."""
    return list(_iter_placement(placement, n_mh, n_mss, rng))


class Simulation:
    """A fully wired mobile system.

    Args:
        n_mss: number of support stations M (ids ``mss-0`` .. ``mss-{M-1}``).
        n_mh: number of mobile hosts N (ids ``mh-0`` .. ``mh-{N-1}``).
        seed: master random seed (drives latency draws, placements and
            any workload built on :attr:`rng`).
        cost_model: pricing used when reporting costs (counting is
            price-independent).
        config: network timing knobs.
        search: ``"abstract"`` (default), ``"broadcast"``,
            ``"home-agent"``, or a :class:`SearchProtocol` instance.
        placement: initial MH placement -- ``"round_robin"`` (default),
            ``"single_cell"``, ``"random"``, an explicit list of cell
            indices, or a callable ``(mh_index, n_mss) -> cell_index``.
        fault_plan: optional :class:`~repro.faults.FaultPlan`; when
            given, the fault injector (and, per the plan, the reliable
            delivery layer) is installed before any algorithm attaches,
            so protocols built on this simulation auto-detect it.
        recovery: optional checkpointing policy for the
            :mod:`repro.recovery` subsystem -- a
            :class:`~repro.recovery.CheckpointPolicy` instance or a
            string spec (``"per-message"``, ``"periodic:10"``,
            ``"distance:2"``, ``"none"``).  Builds a
            :class:`~repro.recovery.RecoveryManager` over every MH,
            exposed as :attr:`recovery`.
        trace: when ``True``, install a :class:`~repro.trace.Tracer` as
            :attr:`tracer` (and on ``network.trace``) so every send,
            receive and protocol step is recorded as a
            :class:`~repro.trace.TraceEvent`.  Purely observational:
            costs, message counts and randomness are identical either
            way.
        population_store: when ``True``, back the N MHs by the
            array-based :class:`~repro.scale.PopulationStore` instead
            of N python objects.  Hosts are transparently promoted to
            objects on first touch; with the abstract search protocol,
            small-N runs are byte-identical to the object path.  See
            ``docs/scaling.md``.
        max_active: soft cap on simultaneously promoted hosts (only
            with ``population_store=True``; default 1024).
        scheduler: event-queue implementation -- ``"heap"`` (default,
            binary heap) or ``"calendar"`` (calendar queue, O(1)
            amortized at high event density).  Firing order is
            byte-identical; see ``docs/performance.md``.
        pooling: recycle fire-and-forget event objects through the
            scheduler's free list (default on; byte-identical either
            way).
        monitor_sampling: monitor-overhead control (only meaningful
            with ``monitors``): ``None``/``False`` delivers every
            event; ``True`` samples high-rate event types at the
            default rate; a float in ``(0, 1]`` sets the rate
            explicitly.  Safety monitors that need every event keep
            getting every event -- see ``docs/observability.md``.
        monitor_mode: monitor dispatch strategy -- ``"event"``
            (default) delivers each event to the monitors as it is
            emitted; ``"batched"`` appends fixed-shape rows to the
            :mod:`repro.obs` ledgers and replays them in drained
            batches with identical per-event semantics, taking exact
            monitoring off the hot path.  Batched mode requires
            ``monitors`` and is mutually exclusive with
            ``monitor_sampling`` (it is exact by construction).  See
            ``docs/observability.md`` for the three fidelity tiers.
    """

    def __init__(
        self,
        n_mss: int,
        n_mh: int,
        seed: int = 0,
        cost_model: Optional[CostModel] = None,
        config: Optional[NetworkConfig] = None,
        search: Union[str, SearchProtocol] = "abstract",
        placement: Placement = "round_robin",
        timeline: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        trace: bool = False,
        monitors: Union[None, bool, str, Sequence] = None,
        recovery: Union[None, str, object] = None,
        population_store: bool = False,
        max_active: Optional[int] = None,
        scheduler: str = "heap",
        pooling: bool = True,
        monitor_sampling: Union[None, bool, float] = None,
        monitor_mode: str = "event",
    ) -> None:
        if n_mss < 1:
            raise ConfigurationError("need at least one MSS")
        if n_mh < 0:
            raise ConfigurationError("n_mh must be nonnegative")
        self.n_mss = n_mss
        self.n_mh = n_mh
        self.rng = random.Random(seed)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.scheduler = make_scheduler(scheduler, pooling=pooling)
        if timeline:
            from repro.metrics.timeline import TimelineCollector

            self.metrics = TimelineCollector(self.scheduler)
        else:
            self.metrics = MetricsCollector()
        if isinstance(search, str):
            try:
                search = _SEARCH_FACTORIES[search]()
            except KeyError:
                raise ConfigurationError(
                    f"unknown search protocol {search!r}; options: "
                    f"{sorted(_SEARCH_FACTORIES)}"
                ) from None
        self.network = Network(
            scheduler=self.scheduler,
            metrics=self.metrics,
            config=config,
            search_protocol=search,
            rng=random.Random(self.rng.getrandbits(64)),
        )
        #: the installed tracer, or ``None`` when tracing is off.
        self.tracer = None
        #: the installed monitor hub, or ``None`` when monitoring is off.
        self.monitor_hub = None
        if monitor_mode not in ("event", "batched"):
            raise ConfigurationError(
                f"monitor_mode must be 'event' or 'batched': "
                f"{monitor_mode!r}"
            )
        if monitor_mode == "batched" and not monitors:
            raise ConfigurationError(
                "monitor_mode='batched' requires monitors="
            )
        if monitor_mode == "batched" and monitor_sampling:
            raise ConfigurationError(
                "monitor_mode='batched' is exact by construction and "
                "cannot be combined with monitor_sampling"
            )
        if monitors:
            from repro.monitor import MonitorHub, default_monitors

            if monitors is True or monitors == "default":
                monitor_list = default_monitors()
            else:
                monitor_list = list(monitors)
            # The hub *is* a tracer: with trace=True it records events
            # like a plain Tracer would; with trace=False it dispatches
            # to the monitors and drops each event, bounding memory.
            if monitor_sampling is None or monitor_sampling is False:
                sample_rate = 1.0
            elif monitor_sampling is True:
                from repro.monitor import DEFAULT_SAMPLE_RATE

                sample_rate = DEFAULT_SAMPLE_RATE
            else:
                sample_rate = float(monitor_sampling)
            self.monitor_hub = MonitorHub(
                self.scheduler,
                monitor_list,
                record=trace,
                sample_rate=sample_rate,
                batch=(monitor_mode == "batched"),
            )
            self.network.trace = self.monitor_hub
            self.monitor_hub.bind(self.network)
            if trace:
                self.tracer = self.monitor_hub
        elif trace:
            from repro.trace import Tracer

            self.tracer = Tracer(self.scheduler)
            self.network.trace = self.tracer
        self._mss: List[MobileSupportStation] = []
        for i in range(n_mss):
            mss = MobileSupportStation(f"mss-{i}", self.network)
            self.network.register_mss(mss)
            self._mss.append(mss)
        self._mh: List[MobileHost] = []
        #: the array-backed crowd store, or ``None`` on the object path.
        self.population = None
        if population_store:
            from repro.scale import PopulationStore

            self.population = PopulationStore(
                self.network,
                n_mh,
                placement=_iter_placement(
                    placement, n_mh, n_mss, self.rng
                ),
                max_active=max_active if max_active is not None else 1024,
            )
            self.network.install_population(self.population)
        else:
            if max_active is not None:
                raise ConfigurationError(
                    "max_active requires population_store=True"
                )
            cells = _resolve_placement(placement, n_mh, n_mss, self.rng)
            for i in range(n_mh):
                mh = MobileHost(f"mh-{i}", self.network)
                self.network.register_mh(mh)
                mh.attach_initial(f"mss-{cells[i]}")
                self._mh.append(mh)
        self.fault_injector = (
            apply_fault_plan(self.network, fault_plan)
            if fault_plan is not None
            else None
        )
        #: the recovery manager, or ``None`` when ``recovery=`` is off.
        self.recovery = None
        if recovery is not None and population_store:
            # The manager registers a restore handler on every covered
            # MH, which would promote (and pin) the entire crowd.
            # Construct RecoveryManager(network, mh_ids=[...]) over the
            # active subset instead (docs/scaling.md).
            raise ConfigurationError(
                "recovery= is incompatible with population_store=True; "
                "build a RecoveryManager over an explicit mh_ids subset"
            )
        if recovery is not None:
            from repro.recovery import RecoveryManager, policy_from_spec

            self.recovery = RecoveryManager(
                self.network, policy=policy_from_spec(recovery)
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def mss(self, index: int) -> MobileSupportStation:
        """The i-th support station."""
        return self._mss[index]

    def mh(self, index: int) -> MobileHost:
        """The i-th mobile host.

        With the population store enabled this promotes a passive host
        to a full object -- use :meth:`mh_id` when only the id is
        needed.
        """
        if self.population is not None:
            return self.network.mobile_host(self.mh_id(index))
        return self._mh[index]

    def mss_id(self, index: int) -> str:
        """Id of the i-th support station."""
        return self._mss[index].host_id

    def mh_id(self, index: int) -> str:
        """Id of the i-th mobile host."""
        if self.population is not None:
            if not 0 <= index < self.n_mh:
                raise IndexError(index)
            return f"mh-{index}"
        return self._mh[index].host_id

    @property
    def mss_ids(self) -> List[str]:
        """Ids of all support stations, in order."""
        return [mss.host_id for mss in self._mss]

    @property
    def mh_ids(self) -> List[str]:
        """Ids of all mobile hosts, in order (O(N) with the store)."""
        if self.population is not None:
            return self.population.all_ids()
        return [mh.host_id for mh in self._mh]

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.scheduler.now

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Advance the simulation (see :meth:`Scheduler.run`)."""
        hub = self.monitor_hub
        if hub is not None and hub._batch:
            return self._run_timed(
                lambda: self.scheduler.run(
                    until=until, max_events=max_events
                )
            )
        return self.scheduler.run(until=until, max_events=max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (see :meth:`Scheduler.drain`)."""
        hub = self.monitor_hub
        if hub is not None and hub._batch:
            return self._run_timed(
                lambda: self.scheduler.drain(max_events=max_events)
            )
        return self.scheduler.drain(max_events=max_events)

    def _run_timed(self, step) -> int:
        """Run ``step`` while attributing wall time to the scheduler
        section, net of the observability drains it triggers."""
        from time import perf_counter

        timers = self.monitor_hub.timers
        obs_before = timers.get("drain") + timers.get("monitor")
        started = perf_counter()
        fired = step()
        elapsed = perf_counter() - started
        obs_delta = (
            timers.get("drain") + timers.get("monitor") - obs_before
        )
        timers.add("scheduler", elapsed - obs_delta)
        return fired

    def cost(self, scope: Optional[str] = None) -> float:
        """Total recorded cost, priced with this simulation's model."""
        return self.metrics.cost(self.cost_model, scope)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def monitor_report(self) -> str:
        """Finalize the monitors and return their summary report."""
        if self.monitor_hub is None:
            return "invariant monitors: not installed"
        self.monitor_hub.finalize()
        return self.monitor_hub.report()

    def assert_invariants(self) -> None:
        """Finalize the monitors and raise if any invariant was violated.

        No-op when the simulation was built without ``monitors=``.
        """
        if self.monitor_hub is None:
            return
        self.monitor_hub.finalize()
        if not self.monitor_hub.ok:
            from repro.errors import InvariantViolationError

            raise InvariantViolationError(
                "invariant violations observed:\n"
                + self.monitor_hub.report()
            )
