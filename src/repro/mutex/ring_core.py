"""Generic unidirectional token ring (Le Lann, the paper's reference [12]).

The static substrate reused by both tiers: in R1 the ring members are
the N mobile hosts, in R2 they are the M support stations.  A single
token circulates; a member holds it while servicing local needs and then
forwards it to its successor.

The token carries the bookkeeping fields used by the paper's fairness
variants: ``token_val`` (R2': a traversal counter compared against each
MH's ``access_count``) and ``token_list`` (R2'': ``<MSS, MH>`` pairs of
accesses during the current traversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.errors import ConfigurationError, ProtocolError


@dataclass
class Token:
    """The single circulating token."""

    token_val: int = 0
    token_list: List[Tuple[str, str]] = field(default_factory=list)
    traversals: int = 0
    hops: int = 0
    #: regeneration epoch (fault-tolerant rings only).  A token whose
    #: epoch lags the protocol's current epoch is a stale survivor of a
    #: crash and is discarded on arrival.
    epoch: int = 0


class RingNode:
    """One member of the logical ring.

    Args:
        node_id: this member's id (must appear in ``ring_order``).
        ring_order: all member ids in ring order.
        send: function ``send(dst, kind, token)`` forwarding the token.
        kind_prefix: namespace for the token message kind.
        on_token: callback ``on_token(token, forward)`` invoked when the
            token arrives; the callback must eventually call
            ``forward()`` exactly once to pass the token on.

    The member at ``ring_order[0]`` is the ring *head*: each time the
    token arrives there (after the initial injection), a traversal is
    complete and ``token.token_val``/``token.traversals`` advance --
    the R2' rule "incremented every time it completes one traversal".
    """

    def __init__(
        self,
        node_id: str,
        ring_order: List[str],
        send: Callable[[str, str, Token], None],
        kind_prefix: str,
        on_token: Callable[[Token, Callable[[], None]], None],
    ) -> None:
        if node_id not in ring_order:
            raise ConfigurationError(
                f"{node_id} is not a member of the ring"
            )
        if len(set(ring_order)) != len(ring_order):
            raise ConfigurationError("ring members must be unique")
        self.node_id = node_id
        self.ring_order = list(ring_order)
        self._send = send
        self.kind_token = f"{kind_prefix}.token"
        self.on_token = on_token
        self._has_token = False
        self.tokens_seen = 0

    @property
    def is_head(self) -> bool:
        """Whether this member is the ring head (traversal counter)."""
        return self.node_id == self.ring_order[0]

    @property
    def has_token(self) -> bool:
        """Whether the token is currently held here."""
        return self._has_token

    def successor(self) -> str:
        """The next member in ring order."""
        index = self.ring_order.index(self.node_id)
        return self.ring_order[(index + 1) % len(self.ring_order)]

    def inject_token(self, token: Token) -> None:
        """Create the token at this member (simulation setup)."""
        self._receive(token, initial=True)

    def reset(self) -> None:
        """Forget any held token (crash recovery / regeneration)."""
        self._has_token = False

    def handle_token(self, token: Token) -> None:
        """Wire this to the host's dispatcher for the token kind."""
        token.hops += 1
        self._receive(token, initial=False)

    def _receive(self, token: Token, initial: bool) -> None:
        if self._has_token:
            raise ProtocolError(
                f"{self.node_id}: token arrived while already held"
            )
        self._has_token = True
        self.tokens_seen += 1
        if self.is_head and not initial:
            token.traversals += 1
            token.token_val += 1
        forwarded = [False]

        def forward() -> None:
            if forwarded[0]:
                raise ProtocolError(
                    f"{self.node_id}: token forwarded twice"
                )
            forwarded[0] = True
            self._has_token = False
            self._send(self.successor(), self.kind_token, token)

        self.on_token(token, forward)
