"""Algorithm L2: Lamport's mutual exclusion at the support stations.

The paper's first two-tier algorithm (Section 3.1.1).  The M MSSs run
Lamport's algorithm *unmodified* among themselves; mobile hosts only

* send ``init(h)`` to their local MSS to request the region (one
  wireless message, timestamped on receipt at the MSS),
* receive ``grant_request`` when their proxy has secured the region
  (search + one wireless message, since the MH may have moved), and
* send ``release_resource`` relayed via their *current* local MSS back
  to the proxy (one wireless + at most one fixed message).

Cost of one execution:
``3*C_wireless + C_fixed + C_search + 3*(M-1)*C_fixed``
-- constant in N, constant number (3) of wireless messages, no request
queues at the MHs.

Disconnection handling follows the paper exactly:

* if the MH disconnects before the grant arrives, the search resolves to
  the disconnected status, the proxy learns the MH is unreachable and
  broadcasts a release so the other MSSs make progress;
* if the MH disconnects after the grant but before releasing, it must
  reconnect to send ``release_resource`` (the client flushes the owed
  release automatically on reattachment);
* disconnection at any other time does not affect L2 at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.clock import Timestamp
from repro.errors import ConfigurationError, ProtocolError
from repro.mutex.lamport_core import (
    LamportMutexNode,
    MutexTransport,
)
from repro.mutex.resource import CriticalResource
from repro.net.messages import Message
from repro.net.search import SearchOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class InitPayload:
    """MH -> local MSS: request the critical region."""

    mh_id: str


@dataclass(frozen=True)
class GrantPayload:
    """Proxy MSS -> MH: the region is yours."""

    mh_id: str
    proxy_mss_id: str
    request_ts: Timestamp


@dataclass(frozen=True)
class ReleaseResourcePayload:
    """MH -> (current MSS ->) proxy MSS: done with the region."""

    mh_id: str
    proxy_mss_id: str


class _FixedTransport(MutexTransport):
    """Transport between MSSs over the static network."""

    def __init__(self, mutex: "L2Mutex", mss_id: str) -> None:
        self._mutex = mutex
        self._mss_id = mss_id

    def peers(self) -> List[str]:
        return [m for m in self._mutex.mss_ids if m != self._mss_id]

    def send(self, dst: str, kind: str, payload: object) -> None:
        self._mutex.network.mss(self._mss_id).send_fixed(
            dst, kind, payload, self._mutex.scope
        )


class L2Mutex:
    """Two-tier Lamport mutual exclusion (the paper's Algorithm L2).

    Args:
        network: the simulated system.
        resource: the instrumented critical region.
        cs_duration: how long a grantee stays inside the region.
        scope: metrics scope for all L2 traffic.
        on_complete: optional callback ``(mh_id)`` after a release.
        on_aborted: optional callback ``(mh_id)`` when a request was
            dropped because the MH disconnected before its grant.
    """

    def __init__(
        self,
        network: "Network",
        resource: CriticalResource,
        cs_duration: float = 1.0,
        scope: str = "L2",
        on_complete: Optional[Callable[[str], None]] = None,
        on_aborted: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.network = network
        self.mss_ids = network.mss_ids()
        if len(self.mss_ids) < 2:
            raise ConfigurationError("L2 needs at least two MSSs")
        self.resource = resource
        self.cs_duration = cs_duration
        self.scope = scope
        self.on_complete = on_complete
        self.on_aborted = on_aborted
        self.completed: List[Tuple[float, str]] = []
        self.aborted: List[Tuple[float, str]] = []
        #: request timestamps in grant order, for fairness checks.
        self.grant_log: List[Tuple[Timestamp, str]] = []
        self._nodes: Dict[str, LamportMutexNode] = {}
        self._request_ts: Dict[str, Dict[str, Timestamp]] = {}
        for mss_id in self.mss_ids:
            self._attach_mss(mss_id)
        self._clients: Dict[str, bool] = {}
        self._owed_release: Dict[str, str] = {}
        #: mh_id -> (grant, scheduled exit) while inside the region, so
        #: a MH crash can vacate the CS instead of wedging the system.
        self._active: Dict[str, Tuple[GrantPayload, object]] = {}
        # Batched hubs hand out ledger appenders for the CS transition
        # events (see MonitorHub.call_site_batch); the tracer is
        # installed before protocols attach, so resolving them once
        # here mirrors Network._refresh_fast_paths.
        batch_for = getattr(network._trace, "call_site_batch", None)
        if batch_for is not None and network._trace_on:
            self._batch_cs_enter = batch_for("cs.enter")
            self._batch_cs_exit = batch_for("cs.exit")
        else:
            self._batch_cs_enter = None
            self._batch_cs_exit = None
        if network.faults is not None:
            network.faults.add_mh_crash_listener(self._on_mh_crash)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _attach_mss(self, mss_id: str) -> None:
        mss = self.network.mss(mss_id)
        node = LamportMutexNode(
            node_id=mss_id,
            transport=_FixedTransport(self, mss_id),
            kind_prefix=self.scope,
            on_granted=lambda tag, m=mss_id: self._on_granted(m, tag),
        )
        self._nodes[mss_id] = node
        self._request_ts[mss_id] = {}
        mss.register_handler(
            f"{self.scope}.request",
            lambda msg, n=node: n.on_request(msg.payload),
        )
        mss.register_handler(
            f"{self.scope}.reply",
            lambda msg, n=node: n.on_reply(msg.payload),
        )
        mss.register_handler(
            f"{self.scope}.release",
            lambda msg, n=node: n.on_release(msg.payload),
        )
        mss.register_handler(f"{self.scope}.init", self._on_init)
        mss.register_handler(
            f"{self.scope}.release_resource", self._on_release_resource
        )
        mss.register_handler(
            f"{self.scope}.release_fwd", self._on_release_fwd
        )

    def attach_client(self, mh_id: str) -> None:
        """Enable ``mh_id`` to use L2 (registers the grant handler)."""
        if mh_id in self._clients:
            return
        mh = self.network.mobile_host(mh_id)
        mh.register_handler(f"{self.scope}.grant", self._on_grant)
        mh.add_attach_listener(lambda m=mh_id: self._flush_owed(m))
        self._clients[mh_id] = True

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def request(self, mh_id: str) -> None:
        """Have ``mh_id`` initiate L2: send ``init`` to its local MSS."""
        self.attach_client(mh_id)
        mh = self.network.mobile_host(mh_id)
        mh.send_to_mss(
            f"{self.scope}.init", InitPayload(mh_id), self.scope
        )

    def node(self, mss_id: str) -> LamportMutexNode:
        """The Lamport node running at ``mss_id`` (for tests)."""
        return self._nodes[mss_id]

    # ------------------------------------------------------------------
    # MSS side
    # ------------------------------------------------------------------

    def _on_init(self, message: Message) -> None:
        payload: InitPayload = message.payload
        mss_id = message.dst
        node = self._nodes[mss_id]
        # The request is timestamped when init() reaches the local MSS.
        ts = node.request(tag=payload.mh_id)
        self._request_ts[mss_id][payload.mh_id] = ts

    def _on_granted(self, mss_id: str, mh_id: str) -> None:
        mss = self.network.mss(mss_id)
        ts = self._request_ts[mss_id][mh_id]
        mss.send_to_mh(
            mh_id,
            f"{self.scope}.grant",
            GrantPayload(mh_id, mss_id, ts),
            self.scope,
            on_disconnected=lambda outcome, m=mss_id, h=mh_id: (
                self._on_grantee_disconnected(m, h, outcome)
            ),
        )

    def _on_grantee_disconnected(
        self, mss_id: str, mh_id: str, outcome: SearchOutcome
    ) -> None:
        # The MH is unreachable: its request cannot be satisfied, so the
        # proxy releases on its behalf to let the rest of the system
        # make progress (Section 3.1.1).
        self._request_ts[mss_id].pop(mh_id, None)
        self._nodes[mss_id].abort(mh_id)
        self.aborted.append((self.network.scheduler.now, mh_id))
        if self.on_aborted is not None:
            self.on_aborted(mh_id)

    def _on_release_resource(self, message: Message) -> None:
        payload: ReleaseResourcePayload = message.payload
        current_mss_id = message.dst
        if payload.proxy_mss_id == current_mss_id:
            self._finish_release(current_mss_id, payload.mh_id)
        else:
            self.network.mss(current_mss_id).send_fixed(
                payload.proxy_mss_id,
                f"{self.scope}.release_fwd",
                payload,
                self.scope,
            )

    def _on_release_fwd(self, message: Message) -> None:
        payload: ReleaseResourcePayload = message.payload
        self._finish_release(message.dst, payload.mh_id)

    def _finish_release(self, mss_id: str, mh_id: str) -> None:
        self._request_ts[mss_id].pop(mh_id, None)
        self._nodes[mss_id].release(tag=mh_id)
        self.completed.append((self.network.scheduler.now, mh_id))
        if self.on_complete is not None:
            self.on_complete(mh_id)

    # ------------------------------------------------------------------
    # MH side
    # ------------------------------------------------------------------

    def _on_grant(self, message: Message) -> None:
        grant: GrantPayload = message.payload
        self.grant_log.append((grant.request_ts, grant.mh_id))
        if self.network._trace_on:
            appender = self._batch_cs_enter
            if appender is not None:
                appender(self.scope, grant.mh_id, None, None, None,
                         {"proxy": grant.proxy_mss_id})
            else:
                self.network._trace.emit(
                    "cs.enter",
                    scope=self.scope,
                    src=grant.mh_id,
                    proxy=grant.proxy_mss_id,
                )
        self.resource.enter(
            grant.mh_id,
            info={"algorithm": self.scope, "request_ts": grant.request_ts},
        )
        exit_event = self.network.scheduler.schedule(
            self.cs_duration, self._exit_region, grant
        )
        if self.network.faults is not None:
            self._active[grant.mh_id] = (grant, exit_event)

    def _exit_region(self, grant: GrantPayload) -> None:
        self._active.pop(grant.mh_id, None)
        self.resource.leave(grant.mh_id)
        if self.network._trace_on:
            appender = self._batch_cs_exit
            if appender is not None:
                appender(self.scope, grant.mh_id, None, None, None,
                         {"proxy": grant.proxy_mss_id})
            else:
                self.network._trace.emit(
                    "cs.exit",
                    scope=self.scope,
                    src=grant.mh_id,
                    proxy=grant.proxy_mss_id,
                )
        mh = self.network.mobile_host(grant.mh_id)
        if mh.is_connected:
            self._send_release(grant.mh_id, grant.proxy_mss_id)
        else:
            # The paper requires a MH that disconnected after its grant
            # to reconnect in order to send release_resource; remember
            # the debt and flush it on reattachment.
            if grant.mh_id in self._owed_release:
                raise ProtocolError(
                    f"{grant.mh_id} already owes a release"
                )
            self._owed_release[grant.mh_id] = grant.proxy_mss_id

    def _on_mh_crash(self, mh_id: str) -> None:
        """L2's state lives at the stations, so a MH crash touches at
        most one thing: the grant the crashed host was holding.

        * Crashed *inside* the region: the proxy vacates the CS and
          releases on the dead host's behalf (nobody else can), exactly
          as it does for an unreachable grantee.
        * Crashed *owing a release* (access complete, release unsent --
          an amnesiac host would never send it): the serving cell's
          crash detection lets the proxy disclaim the debt and release.
        * Any other moment: nothing to do -- a pending ``init`` is
          handled when its grant's search finds the host disconnected.
        """
        active = self._active.pop(mh_id, None)
        if active is not None:
            grant, exit_event = active
            exit_event.cancel()
            self.resource.leave(mh_id)
            self.network.metrics.record_fault("l2.grant_aborted_by_crash")
            if self.network._trace_on:
                appender = self._batch_cs_exit
                if appender is not None:
                    appender(self.scope, mh_id, None, None, None,
                             {"proxy": grant.proxy_mss_id,
                              "aborted": True, "reason": "mh.crash"})
                else:
                    self.network._trace.emit(
                        "cs.exit",
                        scope=self.scope,
                        src=mh_id,
                        proxy=grant.proxy_mss_id,
                        aborted=True,
                        reason="mh.crash",
                    )
            proxy = grant.proxy_mss_id
            self._request_ts[proxy].pop(mh_id, None)
            self._nodes[proxy].release(tag=mh_id)
            self.aborted.append((self.network.scheduler.now, mh_id))
            if self.on_aborted is not None:
                self.on_aborted(mh_id)
            return
        proxy = self._owed_release.pop(mh_id, None)
        if proxy is not None:
            self.network.metrics.record_fault(
                "l2.owed_release_disclaimed"
            )
            self._finish_release(proxy, mh_id)

    def _flush_owed(self, mh_id: str) -> None:
        proxy = self._owed_release.pop(mh_id, None)
        if proxy is not None:
            self._send_release(mh_id, proxy)

    def _send_release(self, mh_id: str, proxy_mss_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        mh.send_to_mss(
            f"{self.scope}.release_resource",
            ReleaseResourcePayload(mh_id, proxy_mss_id),
            self.scope,
        )
