"""Algorithm R1: the token ring formed by the mobile hosts themselves.

The paper's second baseline (Section 3.1.2).  The N MHs are logically
arranged in a unidirectional ring and the token visits every MH whether
it wants the critical region or not.  Every hop is a MH -> MH message
costing ``2*C_wireless + C_search``, so one full traversal costs
``N * (2*C_wireless + C_search)`` -- *independent of K*, the number of
requests actually satisfied.  Every MH pays battery for receiving and
forwarding the token, and a dozing MH is interrupted on every traversal.

R1 is vulnerable to disconnection of *any* member: if the token is
addressed to a disconnected MH the ring stalls until the ring is
re-formed (not modelled -- the stall itself is the measured drawback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.mutex.resource import CriticalResource
from repro.mutex.ring_core import RingNode, Token
from repro.net.messages import Message
from repro.net.search import SearchOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class RoutedToken:
    """Token in flight between two MHs, relayed by the static network."""

    dst_mh_id: str
    token: Token


class R1Mutex:
    """Le Lann's token ring run directly by the N mobile hosts.

    Args:
        network: the simulated system.
        mh_ids: ring members in ring order.
        resource: the instrumented critical region.
        cs_duration: how long a holder stays inside the region.
        scope: metrics scope for all R1 traffic.
        max_traversals: stop circulating after this many full
            traversals (``None`` = circulate until externally stopped).
        on_complete: optional callback ``(mh_id)`` after each access.
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        resource: CriticalResource,
        cs_duration: float = 1.0,
        scope: str = "R1",
        max_traversals: Optional[int] = None,
        on_complete: Optional[Callable[[str], None]] = None,
        auto_repair: bool = False,
    ) -> None:
        if len(mh_ids) < 2:
            raise ConfigurationError("R1 needs at least two ring members")
        self.network = network
        self.mh_ids = list(mh_ids)
        self.resource = resource
        self.cs_duration = cs_duration
        self.scope = scope
        self.max_traversals = max_traversals
        self.on_complete = on_complete
        #: extension: re-establish the ring among the remaining members
        #: when the token hits a disconnected one (the paper notes R1
        #: "requires the logical ring to be re-established" but defines
        #: no protocol; we implement and charge one).
        self.auto_repair = auto_repair
        self.repairs = 0
        self.kind_route = f"{scope}.route"
        self.kind_reconfig = f"{scope}.reconfig"
        self.completed: List[Tuple[float, str]] = []
        self.finished = False
        self.stalled_on: Optional[str] = None
        self._wants: Dict[str, bool] = {m: False for m in self.mh_ids}
        self._nodes: Dict[str, RingNode] = {}
        #: mh_id -> (exit event, token) while inside the region
        #: (tracked only under a fault plan, to abort on MH crash).
        self._active: Dict[str, Tuple[object, Token]] = {}
        #: members dropped from the ring by a crash repair, eligible for
        #: re-admission when their host recovers.
        self._removed_members: Set[str] = set()
        for mh_id in self.mh_ids:
            self._attach_mh(mh_id)
        for mss_id in network.mss_ids():
            network.mss(mss_id).register_handler(
                self.kind_route, self._relay
            )
        if network.faults is not None:
            network.faults.add_mh_crash_listener(self._on_mh_crash)
            network.faults.add_mh_recovery_listener(self._on_mh_recover)

    def _attach_mh(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        node = RingNode(
            node_id=mh_id,
            ring_order=self.mh_ids,
            send=lambda dst, kind, token, m=mh_id: self._forward(
                m, dst, token
            ),
            kind_prefix=self.scope,
            on_token=lambda token, forward, m=mh_id: self._on_token(
                m, token, forward
            ),
        )
        self._nodes[mh_id] = node
        mh.register_handler(
            f"{self.scope}.token",
            lambda msg, n=node: n.handle_token(msg.payload),
        )
        mh.register_handler(
            f"{self.scope}.reconfig",
            lambda msg, n=node: self._apply_reconfig(n, msg.payload),
        )

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Inject the token at the first connected ring member."""
        for mh_id in self.mh_ids:
            if self.network.mobile_host(mh_id).is_connected:
                self._nodes[mh_id].inject_token(Token())
                return
        raise ConfigurationError(
            "no connected ring member can hold the initial token"
        )

    def want(self, mh_id: str) -> None:
        """Mark that ``mh_id`` wants the region at its next token visit.

        In Le Lann's scheme there are no request messages: a member
        simply uses the token when it comes around.
        """
        if mh_id not in self._wants:
            raise ConfigurationError(f"{mh_id} is not an R1 member")
        self._wants[mh_id] = True

    def node(self, mh_id: str) -> RingNode:
        """The ring node at ``mh_id`` (for tests)."""
        return self._nodes[mh_id]

    # ------------------------------------------------------------------
    # Token life cycle
    # ------------------------------------------------------------------

    def _on_token(
        self, mh_id: str, token: Token, forward: Callable[[], None]
    ) -> None:
        if (
            self.max_traversals is not None
            and self._nodes[mh_id].is_head
            and token.traversals >= self.max_traversals
        ):
            self.finished = True
            return
        if self._wants[mh_id]:
            self._wants[mh_id] = False
            if self.network._trace_on:
                self.network._trace.emit(
                    "cs.enter", scope=self.scope, src=mh_id
                )
            self.resource.enter(mh_id, info={"algorithm": self.scope})
            event = self.network.scheduler.schedule(
                self.cs_duration, self._exit_region, mh_id, forward
            )
            if self.network.faults is not None:
                self._active[mh_id] = (event, token)
        else:
            forward()

    def _exit_region(self, mh_id: str, forward: Callable[[], None]) -> None:
        self._active.pop(mh_id, None)
        self.resource.leave(mh_id)
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.exit", scope=self.scope, src=mh_id
            )
        self.completed.append((self.network.scheduler.now, mh_id))
        if self.on_complete is not None:
            self.on_complete(mh_id)
        forward()

    def _forward(self, src_mh_id: str, dst_mh_id: str, token: Token) -> None:
        mh = self.network.mobile_host(src_mh_id)
        if mh.crashed:
            # The holder crashed before it could transmit: the token
            # dies in its memory.  Regenerate (auto_repair) or stall.
            if not self.auto_repair:
                self.stalled_on = src_mh_id
                return
            detecting = self._detecting_mss(src_mh_id)
            if detecting is None:
                self.stalled_on = src_mh_id
                return
            self.network.metrics.record_fault("r1.token_regenerated")
            self._repair(detecting, src_mh_id, None, token)
            return
        if not mh.is_connected:
            # The holder is mid-move; it can only transmit once it has
            # joined a new cell.  Retry until reattached.
            self.network.scheduler.schedule(
                self.network.config.search_retry_delay,
                self._forward,
                src_mh_id,
                dst_mh_id,
                token,
            )
            return
        mh.send_to_mss(
            self.kind_route, RoutedToken(dst_mh_id, token), self.scope
        )

    def _relay(self, message: Message) -> None:
        routed: RoutedToken = message.payload
        mss = self.network.mss(message.dst)
        self.network.send_to_mh(
            mss.host_id,
            routed.dst_mh_id,
            Message(
                kind=f"{self.scope}.token",
                src=message.src,
                dst=routed.dst_mh_id,
                payload=routed.token,
                scope=self.scope,
            ),
            on_disconnected=lambda outcome, m=mss.host_id,
            s=message.src: self._stall(
                m, routed.dst_mh_id, s, routed.token, outcome
            ),
        )

    def _stall(self, detecting_mss_id: str, mh_id: str,
               prev_mh_id: Optional[str], token: Token,
               outcome: SearchOutcome) -> None:
        if not self.auto_repair:
            # Plain R1 has no provision for disconnected members: the
            # token is undeliverable and mutual exclusion stops
            # system-wide.
            self.stalled_on = mh_id
            return
        self._repair(detecting_mss_id, mh_id, prev_mh_id, token)

    # ------------------------------------------------------------------
    # Ring re-establishment (extension)
    # ------------------------------------------------------------------

    def _repair(self, detecting_mss_id: str, dead_mh_id: str,
                prev_mh_id: Optional[str], token: Token) -> None:
        """Re-establish the ring without ``dead_mh_id`` and re-route
        the token to its successor.

        The MSS that detected the disconnection notifies every
        surviving member of the new ring (each notification is a full
        MSS -> MH delivery, so one repair costs on the order of
        ``(N-1) * (C_search + C_wireless)`` -- the overhead R2 never
        pays).
        """
        if dead_mh_id in self.mh_ids:
            self.repairs += 1
            index = self.mh_ids.index(dead_mh_id)
            self.mh_ids.remove(dead_mh_id)
            self._wants.pop(dead_mh_id, None)
            self._nodes.pop(dead_mh_id, None)
            self._removed_members.add(dead_mh_id)
            new_ring = list(self.mh_ids)
            for survivor in new_ring:
                self.network.send_to_mh(
                    detecting_mss_id,
                    survivor,
                    Message(
                        kind=self.kind_reconfig,
                        src=detecting_mss_id,
                        dst=survivor,
                        payload=new_ring,
                        scope=self.scope,
                    ),
                )
            successor = new_ring[index % len(new_ring)]
        else:
            # A member with a stale ring view forwarded to an already
            # removed MH: route the token to the sender's current
            # successor instead.
            new_ring = list(self.mh_ids)
            if prev_mh_id in new_ring:
                index = (new_ring.index(prev_mh_id) + 1) % len(new_ring)
                successor = new_ring[index]
            else:
                successor = new_ring[0]
        # Hand the stranded token onward.
        self.network.send_to_mh(
            detecting_mss_id,
            successor,
            Message(
                kind=f"{self.scope}.token",
                src=detecting_mss_id,
                dst=successor,
                payload=token,
                scope=self.scope,
            ),
            on_disconnected=lambda outcome, m=detecting_mss_id, s=successor: (
                self._stall(m, s, None, token, outcome)
            ),
        )

    def _apply_reconfig(self, node: RingNode, new_ring: List[str]) -> None:
        node.ring_order = list(new_ring)

    # ------------------------------------------------------------------
    # MH crash tolerance
    # ------------------------------------------------------------------

    def _detecting_mss(self, mh_id: str) -> Optional[str]:
        """The station that noticed ``mh_id``'s silence (or any alive
        station when the vouching cell is itself down)."""
        mh = self.network.mobile_host(mh_id)
        candidate = mh.disconnect_mss_id
        if candidate is not None and not self.network.is_mss_crashed(
            candidate
        ):
            return candidate
        for mss_id in self.network.mss_ids():
            if not self.network.is_mss_crashed(mss_id):
                return mss_id
        return None

    def _on_mh_crash(self, mh_id: str) -> None:
        """A ring member crashed: abort its access; if it held the
        token, either stall (plain R1) or regenerate it at the ring
        formed by the survivors (``auto_repair``)."""
        if self.finished or mh_id not in self._nodes:
            return
        entry = self._active.pop(mh_id, None)
        token: Optional[Token] = None
        if entry is not None:
            event, token = entry
            event.cancel()
            self.resource.leave(mh_id)
            self.network.metrics.record_fault("r1.grant_aborted_by_crash")
            if self.network._trace_on:
                self.network._trace.emit(
                    "cs.exit",
                    scope=self.scope,
                    src=mh_id,
                    aborted=True,
                    reason="mh.crash",
                )
        if token is None:
            # The token is elsewhere; when it is next addressed to the
            # crashed member the normal undeliverable path stalls or
            # repairs the ring.
            return
        if not self.auto_repair:
            # The token died with the host: plain R1 stops system-wide.
            self.stalled_on = mh_id
            return
        detecting = self._detecting_mss(mh_id)
        if detecting is None:
            self.stalled_on = mh_id
            return
        # Simulation-level regeneration: the survivors re-form the ring
        # and a fresh token (same bookkeeping counters) starts at the
        # crashed member's successor.
        self.network.metrics.record_fault("r1.token_regenerated")
        self._repair(detecting, mh_id, None, token)

    def _on_mh_recover(self, mh_id: str) -> None:
        """Re-admit a crash-removed member to the ring (``auto_repair``).

        The recovered host gets a fresh ring node (its pre-crash node
        state died with it), every member learns the new ring order,
        and the rejoiner resumes as an ordinary non-holding member."""
        if (
            self.finished
            or not self.auto_repair
            or mh_id not in self._removed_members
        ):
            return
        self._removed_members.discard(mh_id)
        if len(self.mh_ids) == 0:  # pragma: no cover - defensive
            return
        mh = self.network.mobile_host(mh_id)
        mh.unregister_handler(f"{self.scope}.token")
        mh.unregister_handler(f"{self.scope}.reconfig")
        self.mh_ids.append(mh_id)
        self._wants[mh_id] = False
        self._attach_mh(mh_id)
        self.network.metrics.record_fault("r1.member_rejoined")
        announcing_mss = mh.current_mss_id
        if announcing_mss is None:  # pragma: no cover - defensive
            announcing_mss = self._detecting_mss(mh_id)
            if announcing_mss is None:
                return
        new_ring = list(self.mh_ids)
        for member in new_ring:
            if member == mh_id:
                continue
            self.network.send_to_mh(
                announcing_mss,
                member,
                Message(
                    kind=self.kind_reconfig,
                    src=announcing_mss,
                    dst=member,
                    payload=new_ring,
                    scope=self.scope,
                ),
            )
