"""Generic Lamport mutual exclusion over an abstract transport.

This is the *static substrate* (paper reference [11]) reused by both
tiers: in L1 the participants are the N mobile hosts, in L2 they are the
M support stations.  Only the transport differs -- which is exactly the
paper's structuring argument.

The node generalizes Lamport's algorithm to multiple outstanding
requests per participant, each identified by an opaque ``tag`` (L2 needs
this: one MSS proxies requests for several MHs; the request, reply and
release messages are tagged with the initiating MH's id).

Correctness relies on the classic conditions:

* a request enters the critical region only when it is the minimum of
  the local request queue *and* a message with a larger timestamp has
  been received from every other participant (FIFO channels make this
  imply that no smaller-stamped request can still be in flight);
* timestamps are totally ordered ``(counter, node_id)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.clock import LamportClock, Timestamp
from repro.errors import ProtocolError


class MutexTransport:
    """Transport interface the Lamport node sends through."""

    def peers(self) -> List[str]:
        """Ids of all *other* participants."""
        raise NotImplementedError

    def send(self, dst: str, kind: str, payload: object) -> None:
        """Send ``payload`` of ``kind`` to participant ``dst``."""
        raise NotImplementedError


@dataclass(frozen=True)
class RequestPayload:
    """Broadcast when a participant wants the region for ``tag``."""

    ts: Timestamp
    origin: str
    tag: str


@dataclass(frozen=True)
class ReplyPayload:
    """Acknowledgement carrying the replier's clock."""

    ts: Timestamp
    origin: str


@dataclass(frozen=True)
class ReleasePayload:
    """Broadcast when the region is released for ``tag``."""

    ts: Timestamp
    origin: str
    tag: str


class LamportMutexNode:
    """One participant of Lamport's mutual exclusion algorithm.

    Args:
        node_id: this participant's id.
        transport: how messages reach the other participants.
        kind_prefix: namespace for message kinds, so several instances
            can coexist (kinds are ``{prefix}.request`` etc.).
        on_granted: callback invoked with the request ``tag`` when that
            request may enter the critical region.
    """

    def __init__(
        self,
        node_id: str,
        transport: MutexTransport,
        kind_prefix: str,
        on_granted: Callable[[str], None],
    ) -> None:
        self.node_id = node_id
        self.transport = transport
        self.kind_request = f"{kind_prefix}.request"
        self.kind_reply = f"{kind_prefix}.reply"
        self.kind_release = f"{kind_prefix}.release"
        self.on_granted = on_granted
        self.clock = LamportClock(node_id)
        # (origin, tag) -> request timestamp; the distributed queue.
        self._queue: Dict[Tuple[str, str], Timestamp] = {}
        # peer -> largest timestamp seen from that peer.
        self._last_seen: Dict[str, Timestamp] = {}
        # own requests currently pending (not yet granted).
        self._pending: Dict[str, Timestamp] = {}
        # own requests granted but not yet released.
        self._held: Dict[str, Timestamp] = {}

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def request(self, tag: str) -> Timestamp:
        """Issue a timestamped request for the region on behalf of
        ``tag`` and broadcast it to all peers.

        Returns the request's timestamp (L2 exposes this to tests that
        verify grants happen in timestamp order).
        """
        if tag in self._pending or tag in self._held:
            raise ProtocolError(
                f"{self.node_id}: request tag {tag!r} already outstanding"
            )
        ts = self.clock.tick()
        self._queue[(self.node_id, tag)] = ts
        self._pending[tag] = ts
        payload = RequestPayload(ts, self.node_id, tag)
        for peer in self.transport.peers():
            self.transport.send(peer, self.kind_request, payload)
        self._check_grants()
        return ts

    def release(self, tag: str) -> None:
        """Release the region for ``tag`` and broadcast the release."""
        if tag not in self._held:
            raise ProtocolError(
                f"{self.node_id}: release for tag {tag!r} not held"
            )
        del self._held[tag]
        self._queue.pop((self.node_id, tag), None)
        ts = self.clock.tick()
        payload = ReleasePayload(ts, self.node_id, tag)
        for peer in self.transport.peers():
            self.transport.send(peer, self.kind_release, payload)
        self._check_grants()

    def abort(self, tag: str) -> None:
        """Withdraw a granted-or-pending request without a region access.

        Used by L2 when the requesting MH turns out to be disconnected:
        its request cannot be satisfied, so the proxy broadcasts a
        release to unblock the other participants.
        """
        if tag in self._held:
            self.release(tag)
            return
        if tag not in self._pending:
            return
        del self._pending[tag]
        self._queue.pop((self.node_id, tag), None)
        ts = self.clock.tick()
        payload = ReleasePayload(ts, self.node_id, tag)
        for peer in self.transport.peers():
            self.transport.send(peer, self.kind_release, payload)
        self._check_grants()

    def forget_origin(self, origin: str) -> int:
        """Purge every queue entry contributed by ``origin``.

        Used when ``origin``'s host crashed: its requests can never be
        released by the crashed node itself, so surviving participants
        disclaim them locally to keep the queue head reachable.
        Returns the number of entries purged.
        """
        stale = [key for key in self._queue if key[0] == origin]
        for key in stale:
            del self._queue[key]
        self._last_seen.pop(origin, None)
        if stale:
            self._check_grants()
        return len(stale)

    def reannounce_to(self, peer: str) -> None:
        """Retransmit this node's pending requests to ``peer``.

        ``peer``'s memory of them died in a crash; without the
        retransmission the rejoiner's queue would order only its own
        post-recovery requests, and two nodes could believe they are at
        the queue head simultaneously.
        """
        outstanding = {**self._pending, **self._held}
        for tag, ts in outstanding.items():
            self.transport.send(
                peer, self.kind_request, RequestPayload(ts, self.node_id, tag)
            )

    def reset_volatile(self) -> None:
        """Drop all volatile protocol state (the host crashed).

        The queue, pending and held requests, and the record of peers'
        timestamps vanish with the host's memory.  The logical clock
        object survives only as a simulation convenience: it keeps
        ticking forward, so post-recovery requests carry fresh
        timestamps that cannot collide with pre-crash ones.
        """
        self._queue.clear()
        self._pending.clear()
        self._held.clear()
        self._last_seen.clear()

    # ------------------------------------------------------------------
    # Message handlers (wire these to the host's dispatcher)
    # ------------------------------------------------------------------

    def on_request(self, payload: RequestPayload) -> None:
        """Handle a peer's request: enqueue and reply."""
        self.clock.witness(payload.ts)
        self._note_seen(payload.origin, payload.ts)
        self._queue[(payload.origin, payload.tag)] = payload.ts
        reply_ts = self.clock.tick()
        self.transport.send(
            payload.origin,
            self.kind_reply,
            ReplyPayload(reply_ts, self.node_id),
        )
        self._check_grants()

    def on_reply(self, payload: ReplyPayload) -> None:
        """Handle a peer's reply: it advances what we've seen from it."""
        self.clock.witness(payload.ts)
        self._note_seen(payload.origin, payload.ts)
        self._check_grants()

    def on_release(self, payload: ReleasePayload) -> None:
        """Handle a peer's release: drop its queue entry."""
        self.clock.witness(payload.ts)
        self._note_seen(payload.origin, payload.ts)
        self._queue.pop((payload.origin, payload.tag), None)
        self._check_grants()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def queue_size(self) -> int:
        """Entries currently in the local request queue."""
        return len(self._queue)

    def pending_tags(self) -> List[str]:
        """Tags of this node's requests that are not yet granted."""
        return list(self._pending)

    def held_tags(self) -> List[str]:
        """Tags of this node's requests currently holding the region."""
        return list(self._held)

    # ------------------------------------------------------------------

    def _note_seen(self, origin: str, ts: Timestamp) -> None:
        current = self._last_seen.get(origin)
        if current is None or ts > current:
            self._last_seen[origin] = ts

    def _min_queue_entry(self) -> Optional[Tuple[str, str]]:
        if not self._queue:
            return None
        return min(self._queue, key=self._queue.__getitem__)

    def _check_grants(self) -> None:
        # Grant own pending requests, smallest timestamp first, while
        # the grant condition keeps holding.
        while True:
            head = self._min_queue_entry()
            if head is None:
                return
            origin, tag = head
            if origin != self.node_id or tag not in self._pending:
                return
            ts = self._pending[tag]
            for peer in self.transport.peers():
                seen = self._last_seen.get(peer)
                if seen is None or not seen > ts:
                    return
            del self._pending[tag]
            self._held[tag] = ts
            self.on_granted(tag)
