"""Distributed mutual exclusion for mobile hosts (S9-S15).

Four algorithm families from Section 3 of the paper:

* :class:`L1Mutex` -- Lamport's timestamp algorithm executed directly by
  the N mobile hosts (the paper's inefficient baseline).
* :class:`L2Mutex` -- Lamport's algorithm executed by the M support
  stations on behalf of requesting MHs (the paper's Algorithm L2).
* :class:`R1Mutex` -- Le Lann's token ring formed by the N mobile hosts
  (baseline).
* :class:`R2Mutex` -- the token ring formed by the M support stations
  with per-MSS request/grant queues (Algorithm R2), plus the ``R2'``
  fairness counter and the ``R2''`` token-list variant.

Both two-tier algorithms reuse the *same* static-substrate
implementations (:mod:`repro.mutex.lamport_core`,
:mod:`repro.mutex.ring_core`) as the baselines -- mirroring the paper's
point that only the *placement* of the algorithm changes, not the
algorithm itself.
"""

from repro.mutex.resource import AccessRecord, CriticalResource
from repro.mutex.lamport_core import LamportMutexNode, MutexTransport
from repro.mutex.ring_core import RingNode, Token
from repro.mutex.l1 import L1Mutex
from repro.mutex.l2 import L2Mutex
from repro.mutex.r1 import R1Mutex
from repro.mutex.r2 import R2Mutex, R2Variant

__all__ = [
    "AccessRecord",
    "CriticalResource",
    "L1Mutex",
    "L2Mutex",
    "LamportMutexNode",
    "MutexTransport",
    "R1Mutex",
    "R2Mutex",
    "R2Variant",
    "RingNode",
    "Token",
]
