"""The critical region, instrumented as a safety/fairness oracle.

Every mutual exclusion algorithm in the library drives its holders
through a shared :class:`CriticalResource`.  The resource asserts the
safety property (at most one holder at any simulated instant) and keeps
the full access log that fairness tests inspect (e.g. L2 grants in
timestamp order; R2' grants at most once per MH per ring traversal).
The oracle checks the safety claim of the paper's Section 3 algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import MutualExclusionViolation
from repro.sim import Scheduler


@dataclass
class AccessRecord:
    """One completed (or in-progress) critical-region access."""

    holder: str
    enter_time: float
    exit_time: Optional[float] = None
    info: Any = None


class CriticalResource:
    """A shared resource that at most one process may hold at a time.

    Args:
        scheduler: the simulation clock (used to timestamp accesses).
        raise_on_violation: if ``True`` (default), a second concurrent
            ``enter`` raises :class:`MutualExclusionViolation`; if
            ``False``, violations are only counted -- useful for
            experiments that deliberately run an algorithm outside its
            assumptions (e.g. L1 over non-FIFO mobile channels).
    """

    def __init__(
        self, scheduler: Scheduler, raise_on_violation: bool = True
    ) -> None:
        self._scheduler = scheduler
        self._raise = raise_on_violation
        self.holder: Optional[str] = None
        self.accesses: List[AccessRecord] = []
        self.violations = 0
        self._current: Optional[AccessRecord] = None

    def enter(self, holder: str, info: Any = None) -> None:
        """Record ``holder`` entering the critical region."""
        if self.holder is not None:
            self.violations += 1
            if self._raise:
                raise MutualExclusionViolation(
                    f"{holder} entered while {self.holder} holds the region "
                    f"at t={self._scheduler.now}"
                )
        self.holder = holder
        self._current = AccessRecord(
            holder=holder, enter_time=self._scheduler.now, info=info
        )
        self.accesses.append(self._current)

    def leave(self, holder: str) -> None:
        """Record ``holder`` leaving the critical region."""
        if self.holder != holder:
            raise MutualExclusionViolation(
                f"{holder} left the region but holder is {self.holder}"
            )
        if self._current is not None:
            self._current.exit_time = self._scheduler.now
            self._current = None
        self.holder = None

    @property
    def access_count(self) -> int:
        """Number of accesses recorded so far (including in-progress)."""
        return len(self.accesses)

    def holders_in_order(self) -> List[str]:
        """Holder ids in the order they entered the region."""
        return [record.holder for record in self.accesses]

    def assert_no_overlap(self) -> None:
        """Re-verify the whole log for overlapping accesses.

        A belt-and-braces check for tests: ``enter`` already enforces
        safety online, but this validates the recorded log end to end.
        """
        previous_exit = float("-inf")
        for index, record in enumerate(self.accesses):
            if record.enter_time < previous_exit:
                raise MutualExclusionViolation(
                    f"access by {record.holder} at {record.enter_time} "
                    f"overlaps previous exit at {previous_exit}"
                )
            if record.exit_time is None:
                if index != len(self.accesses) - 1:
                    raise MutualExclusionViolation(
                        f"{record.holder} never left the region but a "
                        f"later access was recorded"
                    )
            else:
                previous_exit = record.exit_time
