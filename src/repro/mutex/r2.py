"""Algorithm R2 and variants: the token ring over the support stations.

Section 3.1.2 of the paper.  The token circulates among the M MSSs
(``M * C_fixed`` per traversal).  A MH requests by one wireless message
to its local MSS, which queues the request.  When the token arrives at a
MSS, pending requests move to a *grant queue* and are serviced
sequentially: the token is sent to the requesting MH (search + wireless,
since it may have moved), used, and returned (wireless + fixed).  Each
satisfied request therefore costs ``3*C_wireless + C_fixed + C_search``
and K requests in one traversal cost
``K*(3*C_wireless + C_fixed + C_search) + M*C_fixed``.

Variants:

* ``R2Variant.PLAIN`` -- a MH that moves ahead of the token can be
  served once per MSS, up to ``N*M`` accesses per traversal.
* ``R2Variant.COUNTER`` (the paper's R2') -- the token carries
  ``token_val``, incremented per traversal; each MH submits its
  ``access_count`` with its request and a request is granted only if
  ``access_count < token_val``; on access the MH sets
  ``access_count = token_val``.  At most one access per MH per
  traversal, assuming MHs are honest.
* ``R2Variant.TOKEN_LIST`` (the paper's "Variations" scheme, R2'') --
  the token carries ``token_list`` of ``<MSS, MH>`` pairs; arriving at
  MSS ``m``, pairs with first element ``m`` are deleted; a request from
  ``h`` is granted only if ``h`` appears in no remaining pair; after
  service ``<m, h>`` is appended.  Robust even against MHs that lie
  about their ``access_count``.

Disconnection: if the token reaches the cell where a requester
disconnected, that MSS observes the disconnected flag and returns the
token to the sender (one fixed message); service continues with the next
grant-queue entry -- the rest of the system is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.mutex.resource import CriticalResource
from repro.mutex.ring_core import RingNode, Token
from repro.net.messages import Message
from repro.net.search import SearchOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class R2Variant(Enum):
    """Fairness variants of the two-tier ring."""

    PLAIN = "R2"
    COUNTER = "R2'"
    TOKEN_LIST = "R2''"


@dataclass(frozen=True)
class RingRequestPayload:
    """MH -> local MSS: request for the token."""

    mh_id: str
    access_count: int


@dataclass(frozen=True)
class RingGrantPayload:
    """MSS -> MH: the token (its value) is yours; return when done."""

    mh_id: str
    grantor_mss_id: str
    token_val: int


@dataclass(frozen=True)
class RingReturnPayload:
    """MH -> (current MSS ->) grantor MSS: token handed back."""

    mh_id: str
    grantor_mss_id: str


@dataclass
class _PendingRequest:
    mh_id: str
    access_count: int


class R2Mutex:
    """Two-tier token-ring mutual exclusion (Algorithms R2/R2'/R2'').

    Args:
        network: the simulated system (the ring is all its MSSs, in
            registration order).
        resource: the instrumented critical region.
        cs_duration: how long a grantee stays inside the region.
        variant: which fairness variant to run.
        scope: metrics scope for all traffic of this instance.
        max_traversals: stop circulating after this many traversals.
        on_complete: optional callback ``(mh_id)`` per satisfied access.
    """

    def __init__(
        self,
        network: "Network",
        resource: CriticalResource,
        cs_duration: float = 1.0,
        variant: R2Variant = R2Variant.PLAIN,
        scope: str = "R2",
        max_traversals: Optional[int] = None,
        on_complete: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.network = network
        self.mss_ids = network.mss_ids()
        if len(self.mss_ids) < 2:
            raise ConfigurationError("R2 needs at least two MSSs")
        self.resource = resource
        self.cs_duration = cs_duration
        self.variant = variant
        self.scope = scope
        self.max_traversals = max_traversals
        self.on_complete = on_complete
        self.completed: List[Tuple[float, str]] = []
        self.skipped_disconnected: List[str] = []
        self.finished = False
        self._nodes: Dict[str, RingNode] = {}
        self._request_queues: Dict[str, List[_PendingRequest]] = {}
        self._grant_queues: Dict[str, List[_PendingRequest]] = {}
        self._forward_fns: Dict[str, Callable[[], None]] = {}
        self._tokens: Dict[str, Token] = {}
        #: per-MH access counter (the MH-side state of R2'); tests can
        #: override entries to model malicious under-reporting.
        self.access_counts: Dict[str, int] = {}
        #: MHs that lie about their access count (always report 0).
        self.malicious_mhs: set = set()
        self._clients: Dict[str, bool] = {}
        for mss_id in self.mss_ids:
            self._attach_mss(mss_id)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _attach_mss(self, mss_id: str) -> None:
        mss = self.network.mss(mss_id)
        node = RingNode(
            node_id=mss_id,
            ring_order=self.mss_ids,
            send=lambda dst, kind, token, m=mss_id: self.network.mss(
                m
            ).send_fixed(dst, kind, token, self.scope),
            kind_prefix=self.scope,
            on_token=lambda token, forward, m=mss_id: self._on_token(
                m, token, forward
            ),
        )
        self._nodes[mss_id] = node
        self._request_queues[mss_id] = []
        self._grant_queues[mss_id] = []
        mss.register_handler(
            f"{self.scope}.token",
            lambda msg, n=node: n.handle_token(msg.payload),
        )
        mss.register_handler(f"{self.scope}.request", self._on_request)
        mss.register_handler(f"{self.scope}.return", self._on_return)
        mss.register_handler(
            f"{self.scope}.return_fwd", self._on_return_fwd
        )

    def attach_client(self, mh_id: str) -> None:
        """Enable ``mh_id`` to use this ring (registers handlers)."""
        if mh_id in self._clients:
            return
        mh = self.network.mobile_host(mh_id)
        mh.register_handler(f"{self.scope}.grant", self._on_grant)
        self.access_counts.setdefault(mh_id, 0)
        self._clients[mh_id] = True

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Inject the token at the ring head MSS.

        ``token_val`` starts at 1 so that fresh requests (access_count
        0) are eligible during the very first traversal of R2'.
        """
        self._nodes[self.mss_ids[0]].inject_token(Token(token_val=1))

    def request(self, mh_id: str) -> None:
        """Have ``mh_id`` ask its local MSS for the token."""
        self.attach_client(mh_id)
        reported = (
            0 if mh_id in self.malicious_mhs else self.access_counts[mh_id]
        )
        mh = self.network.mobile_host(mh_id)
        mh.send_to_mss(
            f"{self.scope}.request",
            RingRequestPayload(mh_id, reported),
            self.scope,
        )

    def node(self, mss_id: str) -> RingNode:
        """The ring node at ``mss_id`` (for tests)."""
        return self._nodes[mss_id]

    def pending_requests(self, mss_id: str) -> int:
        """Requests currently queued at ``mss_id`` (for tests)."""
        return len(self._request_queues[mss_id])

    # ------------------------------------------------------------------
    # MSS side
    # ------------------------------------------------------------------

    def _on_request(self, message: Message) -> None:
        payload: RingRequestPayload = message.payload
        self._request_queues[message.dst].append(
            _PendingRequest(payload.mh_id, payload.access_count)
        )

    def _on_token(
        self, mss_id: str, token: Token, forward: Callable[[], None]
    ) -> None:
        if (
            self.max_traversals is not None
            and self._nodes[mss_id].is_head
            and token.traversals >= self.max_traversals
        ):
            self.finished = True
            return
        if self.variant is R2Variant.TOKEN_LIST:
            token.token_list = [
                pair for pair in token.token_list if pair[0] != mss_id
            ]
        queue = self._request_queues[mss_id]
        eligible: List[_PendingRequest] = []
        deferred: List[_PendingRequest] = []
        for request in queue:
            if self._eligible(mss_id, request, token):
                eligible.append(request)
            else:
                deferred.append(request)
        self._request_queues[mss_id] = deferred
        self._grant_queues[mss_id] = eligible
        self._tokens[mss_id] = token
        self._forward_fns[mss_id] = forward
        self._service_next(mss_id)

    def _eligible(
        self, mss_id: str, request: _PendingRequest, token: Token
    ) -> bool:
        if self.variant is R2Variant.PLAIN:
            return True
        if self.variant is R2Variant.COUNTER:
            return request.access_count < token.token_val
        served = {mh for (_, mh) in token.token_list}
        return request.mh_id not in served

    def _service_next(self, mss_id: str) -> None:
        grant_queue = self._grant_queues[mss_id]
        token = self._tokens[mss_id]
        if not grant_queue:
            forward = self._forward_fns.pop(mss_id)
            del self._tokens[mss_id]
            forward()
            return
        request = grant_queue.pop(0)
        self.network.mss(mss_id).send_to_mh(
            request.mh_id,
            f"{self.scope}.grant",
            RingGrantPayload(request.mh_id, mss_id, token.token_val),
            self.scope,
            on_disconnected=lambda outcome, m=mss_id, r=request: (
                self._on_requester_disconnected(m, r, outcome)
            ),
        )

    def _on_requester_disconnected(
        self, mss_id: str, request: _PendingRequest, outcome: SearchOutcome
    ) -> None:
        # The MSS of the cell where the requester disconnected returns
        # the token to the sending MSS (one fixed message), and service
        # continues with the next entry.
        self.network.metrics.record_fixed(self.scope)
        self.skipped_disconnected.append(request.mh_id)
        self._service_next(mss_id)

    def _on_return(self, message: Message) -> None:
        payload: RingReturnPayload = message.payload
        current_mss_id = message.dst
        if payload.grantor_mss_id == current_mss_id:
            self._finish_access(current_mss_id, payload.mh_id)
        else:
            self.network.mss(current_mss_id).send_fixed(
                payload.grantor_mss_id,
                f"{self.scope}.return_fwd",
                payload,
                self.scope,
            )

    def _on_return_fwd(self, message: Message) -> None:
        payload: RingReturnPayload = message.payload
        self._finish_access(message.dst, payload.mh_id)

    def _finish_access(self, mss_id: str, mh_id: str) -> None:
        if mss_id not in self._tokens:
            raise ProtocolError(
                f"{mss_id} received a token return while not holding it"
            )
        if self.variant is R2Variant.TOKEN_LIST:
            self._tokens[mss_id].token_list.append((mss_id, mh_id))
        self.completed.append((self.network.scheduler.now, mh_id))
        if self.on_complete is not None:
            self.on_complete(mh_id)
        self._service_next(mss_id)

    # ------------------------------------------------------------------
    # MH side
    # ------------------------------------------------------------------

    def _on_grant(self, message: Message) -> None:
        grant: RingGrantPayload = message.payload
        # R2': on receiving the token the MH adopts the current
        # token_val as its access_count.
        self.access_counts[grant.mh_id] = grant.token_val
        self.resource.enter(
            grant.mh_id,
            info={
                "algorithm": self.scope,
                "variant": self.variant.value,
                "token_val": grant.token_val,
            },
        )
        self.network.scheduler.schedule(
            self.cs_duration, self._exit_region, grant
        )

    def _exit_region(self, grant: RingGrantPayload) -> None:
        self.resource.leave(grant.mh_id)
        mh = self.network.mobile_host(grant.mh_id)
        if mh.is_connected:
            self._send_return(grant)
        else:
            # Mid-move: the token must still go back; hand it over as
            # soon as the MH reattaches (one-shot listener).
            fired = [False]

            def once(g=grant) -> None:
                if not fired[0]:
                    fired[0] = True
                    self._send_return(g)

            mh.add_attach_listener(once)

    def _send_return(self, grant: RingGrantPayload) -> None:
        mh = self.network.mobile_host(grant.mh_id)
        mh.send_to_mss(
            f"{self.scope}.return",
            RingReturnPayload(grant.mh_id, grant.grantor_mss_id),
            self.scope,
        )
