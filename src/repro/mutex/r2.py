"""Algorithm R2 and variants: the token ring over the support stations.

Section 3.1.2 of the paper.  The token circulates among the M MSSs
(``M * C_fixed`` per traversal).  A MH requests by one wireless message
to its local MSS, which queues the request.  When the token arrives at a
MSS, pending requests move to a *grant queue* and are serviced
sequentially: the token is sent to the requesting MH (search + wireless,
since it may have moved), used, and returned (wireless + fixed).  Each
satisfied request therefore costs ``3*C_wireless + C_fixed + C_search``
and K requests in one traversal cost
``K*(3*C_wireless + C_fixed + C_search) + M*C_fixed``.

Variants:

* ``R2Variant.PLAIN`` -- a MH that moves ahead of the token can be
  served once per MSS, up to ``N*M`` accesses per traversal.
* ``R2Variant.COUNTER`` (the paper's R2') -- the token carries
  ``token_val``, incremented per traversal; each MH submits its
  ``access_count`` with its request and a request is granted only if
  ``access_count < token_val``; on access the MH sets
  ``access_count = token_val``.  At most one access per MH per
  traversal, assuming MHs are honest.
* ``R2Variant.TOKEN_LIST`` (the paper's "Variations" scheme, R2'') --
  the token carries ``token_list`` of ``<MSS, MH>`` pairs; arriving at
  MSS ``m``, pairs with first element ``m`` are deleted; a request from
  ``h`` is granted only if ``h`` appears in no remaining pair; after
  service ``<m, h>`` is appended.  Robust even against MHs that lie
  about their ``access_count``.

Disconnection: if the token reaches the cell where a requester
disconnected, that MSS observes the disconnected flag and returns the
token to the sender (one fixed message); service continues with the next
grant-queue entry -- the rest of the system is unaffected.

Fault tolerance (beyond the paper): when a fault injector is installed
on the network (or ``fault_tolerant=True`` is forced), the ring also
survives MSS crashes and token loss:

* forwarding skips crashed successors;
* a watchdog regenerates the token when the ring has been silent for
  ``token_timeout`` -- the first alive MSS in ring order acts as
  election leader and injects a fresh token tagged with a bumped
  *epoch*; stale tokens, grants and returns from the previous epoch
  are discarded on arrival, so regeneration can never double-grant;
* requests lost with a crashed station (and grants refused as stale)
  are resubmitted once their MH is connected again;
* completions are recorded at the MH side, so a return message dying
  with a crashing station does not lose the access.

All of this is inert by default: without an injector the algorithm's
message pattern is byte-identical to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ProtocolError
from repro.mutex.resource import CriticalResource
from repro.mutex.ring_core import RingNode, Token
from repro.net.messages import Message
from repro.net.search import SearchOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class R2Variant(Enum):
    """Fairness variants of the two-tier ring."""

    PLAIN = "R2"
    COUNTER = "R2'"
    TOKEN_LIST = "R2''"


@dataclass(frozen=True)
class RingRequestPayload:
    """MH -> local MSS: request for the token."""

    mh_id: str
    access_count: int


@dataclass(frozen=True)
class RingGrantPayload:
    """MSS -> MH: the token (its value) is yours; return when done."""

    mh_id: str
    grantor_mss_id: str
    token_val: int
    epoch: int = 0


@dataclass(frozen=True)
class RingReturnPayload:
    """MH -> (current MSS ->) grantor MSS: token handed back."""

    mh_id: str
    grantor_mss_id: str
    epoch: int = 0


@dataclass
class _PendingRequest:
    mh_id: str
    access_count: int


class R2Mutex:
    """Two-tier token-ring mutual exclusion (Algorithms R2/R2'/R2'').

    Args:
        network: the simulated system (the ring is all its MSSs, in
            registration order).
        resource: the instrumented critical region.
        cs_duration: how long a grantee stays inside the region.
        variant: which fairness variant to run.
        scope: metrics scope for all traffic of this instance.
        max_traversals: stop circulating after this many traversals.
        on_complete: optional callback ``(mh_id)`` per satisfied access.
        fault_tolerant: enable crash/token-loss handling.  Defaults to
            whether the network has a fault injector installed, so
            fault-free runs keep the paper's exact message pattern.
        token_timeout: ring silence (no token arrival anywhere) after
            which the watchdog declares the token lost and regenerates.
    """

    def __init__(
        self,
        network: "Network",
        resource: CriticalResource,
        cs_duration: float = 1.0,
        variant: R2Variant = R2Variant.PLAIN,
        scope: str = "R2",
        max_traversals: Optional[int] = None,
        on_complete: Optional[Callable[[str], None]] = None,
        fault_tolerant: Optional[bool] = None,
        token_timeout: float = 50.0,
    ) -> None:
        self.network = network
        self.mss_ids = network.mss_ids()
        if len(self.mss_ids) < 2:
            raise ConfigurationError("R2 needs at least two MSSs")
        if token_timeout <= 0:
            raise ConfigurationError("token_timeout must be positive")
        self.resource = resource
        self.cs_duration = cs_duration
        self.variant = variant
        self.scope = scope
        self.max_traversals = max_traversals
        self.on_complete = on_complete
        self.fault_tolerant = (
            fault_tolerant
            if fault_tolerant is not None
            else network.faults is not None
        )
        self.token_timeout = token_timeout
        self.completed: List[Tuple[float, str]] = []
        self.skipped_disconnected: List[str] = []
        self.finished = False
        self.regenerations = 0
        self._epoch = 0
        self._token_last_seen = 0.0
        self._last_token_val = 1
        self._last_traversals = 0
        #: mh_id -> MSS where its unserved request was submitted.
        self._outstanding_req: Dict[str, str] = {}
        self._resubmit_pending: set = set()
        #: mh_id -> (grant, scheduled exit) while inside the region;
        #: fault-tolerant runs only, so a MH crash can vacate the CS.
        self._active_grants: Dict[str, Tuple[RingGrantPayload,
                                             object]] = {}
        self._nodes: Dict[str, RingNode] = {}
        self._request_queues: Dict[str, List[_PendingRequest]] = {}
        self._grant_queues: Dict[str, List[_PendingRequest]] = {}
        self._forward_fns: Dict[str, Callable[[], None]] = {}
        self._tokens: Dict[str, Token] = {}
        #: per-MH access counter (the MH-side state of R2'); tests can
        #: override entries to model malicious under-reporting.
        self.access_counts: Dict[str, int] = {}
        #: MHs that lie about their access count (always report 0).
        self.malicious_mhs: set = set()
        self._clients: Dict[str, bool] = {}
        for mss_id in self.mss_ids:
            self._attach_mss(mss_id)
        if self.fault_tolerant and network.faults is not None:
            network.faults.add_crash_listener(self._on_mss_crash)
            network.faults.add_mh_crash_listener(self._on_mh_crash)
            network.faults.add_mh_recovery_listener(self._on_mh_recover)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _attach_mss(self, mss_id: str) -> None:
        mss = self.network.mss(mss_id)
        node = RingNode(
            node_id=mss_id,
            ring_order=self.mss_ids,
            send=lambda dst, kind, token, m=mss_id: self._ring_send(
                m, dst, kind, token
            ),
            kind_prefix=self.scope,
            on_token=lambda token, forward, m=mss_id: self._on_token(
                m, token, forward
            ),
        )
        self._nodes[mss_id] = node
        self._request_queues[mss_id] = []
        self._grant_queues[mss_id] = []
        mss.register_handler(
            f"{self.scope}.token",
            lambda msg, n=node: self._handle_token_msg(n, msg),
        )
        mss.register_handler(f"{self.scope}.request", self._on_request)
        mss.register_handler(f"{self.scope}.return", self._on_return)
        mss.register_handler(
            f"{self.scope}.return_fwd", self._on_return_fwd
        )

    def attach_client(self, mh_id: str) -> None:
        """Enable ``mh_id`` to use this ring (registers handlers)."""
        if mh_id in self._clients:
            return
        mh = self.network.mobile_host(mh_id)
        mh.register_handler(f"{self.scope}.grant", self._on_grant)
        self.access_counts.setdefault(mh_id, 0)
        self._clients[mh_id] = True

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Inject the token at the ring head MSS.

        ``token_val`` starts at 1 so that fresh requests (access_count
        0) are eligible during the very first traversal of R2'.
        """
        self._nodes[self.mss_ids[0]].inject_token(Token(token_val=1))
        if self.fault_tolerant:
            self._token_last_seen = self.network.scheduler.now
            self._schedule_watchdog()

    def request(self, mh_id: str) -> None:
        """Have ``mh_id`` ask its local MSS for the token."""
        self.attach_client(mh_id)
        reported = (
            0 if mh_id in self.malicious_mhs else self.access_counts[mh_id]
        )
        mh = self.network.mobile_host(mh_id)
        mh.send_to_mss(
            f"{self.scope}.request",
            RingRequestPayload(mh_id, reported),
            self.scope,
        )
        if self.fault_tolerant:
            self._outstanding_req[mh_id] = mh.current_mss_id

    def node(self, mss_id: str) -> RingNode:
        """The ring node at ``mss_id`` (for tests)."""
        return self._nodes[mss_id]

    def pending_requests(self, mss_id: str) -> int:
        """Requests currently queued at ``mss_id`` (for tests)."""
        return len(self._request_queues[mss_id])

    # ------------------------------------------------------------------
    # MSS side
    # ------------------------------------------------------------------

    def _on_request(self, message: Message) -> None:
        payload: RingRequestPayload = message.payload
        self._request_queues[message.dst].append(
            _PendingRequest(payload.mh_id, payload.access_count)
        )

    def _handle_token_msg(self, node: RingNode, message: Message) -> None:
        token: Token = message.payload
        if self.fault_tolerant:
            if token.epoch < self._epoch:
                # A survivor of a pre-regeneration epoch resurfaced
                # (delayed or retransmitted): discard it, there is
                # exactly one live token per epoch.
                self.network.metrics.record_fault("r2.stale_token")
                if self.network._trace_on:
                    self.network._trace.emit(
                        "r2.stale_token",
                        scope=self.scope,
                        src=node.node_id,
                        epoch=token.epoch,
                        live_epoch=self._epoch,
                    )
                return
            if node.has_token:
                # Duplicated on an unreliable wire; the copy is dropped.
                self.network.metrics.record_fault("r2.duplicate_token")
                return
        node.handle_token(token)

    def _ring_send(
        self, src_mss_id: str, dst_mss_id: str, kind: str, token: Token
    ) -> None:
        if self.fault_tolerant:
            ids = self.mss_ids
            start = ids.index(dst_mss_id)
            for offset in range(len(ids)):
                candidate = ids[(start + offset) % len(ids)]
                if not self.network.mss(candidate).crashed:
                    if candidate != dst_mss_id:
                        self.network.metrics.record_fault("r2.ring_skip")
                    dst_mss_id = candidate
                    break
            else:
                # Every station is down; the token vanishes here and the
                # watchdog regenerates once stations return.
                self.network.metrics.record_fault("r2.token_dropped")
                return
        self.network.mss(src_mss_id).send_fixed(
            dst_mss_id, kind, token, self.scope
        )

    def _first_alive(self) -> Optional[str]:
        for mss_id in self.mss_ids:
            if not self.network.mss(mss_id).crashed:
                return mss_id
        return None

    def _on_token(
        self, mss_id: str, token: Token, forward: Callable[[], None]
    ) -> None:
        node = self._nodes[mss_id]
        acting_head = False
        if self.fault_tolerant:
            self._token_last_seen = self.network.scheduler.now
            if not node.is_head and self.network.mss(
                self.mss_ids[0]
            ).crashed:
                # The real head is down, so nobody advanced the
                # traversal counter; the first alive MSS stands in.
                acting_head = mss_id == self._first_alive()
                if acting_head:
                    token.traversals += 1
                    token.token_val += 1
            self._last_token_val = token.token_val
            self._last_traversals = token.traversals
        if (
            self.max_traversals is not None
            and (node.is_head or acting_head)
            and token.traversals >= self.max_traversals
        ):
            self.finished = True
            return
        trace = self.network._trace
        list_before = (
            [list(pair) for pair in token.token_list]
            if trace.enabled
            else None
        )
        if self.variant is R2Variant.TOKEN_LIST:
            token.token_list = [
                pair for pair in token.token_list if pair[0] != mss_id
            ]
        if trace.enabled:
            trace.emit(
                "token.arrive",
                scope=self.scope,
                src=mss_id,
                variant=self.variant.value,
                token_val=token.token_val,
                traversals=token.traversals,
                epoch=token.epoch,
                token_list_before=list_before,
                token_list=[list(pair) for pair in token.token_list],
            )
        queue = self._request_queues[mss_id]
        eligible: List[_PendingRequest] = []
        deferred: List[_PendingRequest] = []
        for request in queue:
            if self._eligible(mss_id, request, token):
                eligible.append(request)
            else:
                deferred.append(request)
        self._request_queues[mss_id] = deferred
        self._grant_queues[mss_id] = eligible
        self._tokens[mss_id] = token
        self._forward_fns[mss_id] = forward
        self._service_next(mss_id)

    def _eligible(
        self, mss_id: str, request: _PendingRequest, token: Token
    ) -> bool:
        if self.variant is R2Variant.PLAIN:
            return True
        if self.variant is R2Variant.COUNTER:
            return request.access_count < token.token_val
        served = {mh for (_, mh) in token.token_list}
        return request.mh_id not in served

    def _service_next(self, mss_id: str) -> None:
        if mss_id not in self._tokens:
            # Fault-tolerant runs only: the token this service loop was
            # working through was lost to a crash or regeneration while
            # a grant/return callback was in flight.
            return
        grant_queue = self._grant_queues[mss_id]
        token = self._tokens[mss_id]
        if not grant_queue:
            forward = self._forward_fns.pop(mss_id)
            del self._tokens[mss_id]
            forward()
            return
        request = grant_queue.pop(0)
        trace = self.network._trace
        if trace.enabled:
            grant_id = trace.emit(
                "token.grant",
                scope=self.scope,
                src=mss_id,
                dst=request.mh_id,
                token_val=token.token_val,
                epoch=token.epoch,
            )
            grant_context = trace.context(grant_id)
        else:
            grant_context = trace.context(None)
        with grant_context:
            self.network.mss(mss_id).send_to_mh(
                request.mh_id,
                f"{self.scope}.grant",
                RingGrantPayload(
                    request.mh_id, mss_id, token.token_val, token.epoch
                ),
                self.scope,
                on_disconnected=lambda outcome, m=mss_id, r=request: (
                    self._on_requester_disconnected(m, r, outcome)
                ),
            )

    def _on_requester_disconnected(
        self, mss_id: str, request: _PendingRequest, outcome: SearchOutcome
    ) -> None:
        # The MSS of the cell where the requester disconnected returns
        # the token to the sending MSS (one fixed message), and service
        # continues with the next entry.
        self.network.metrics.record_fixed(self.scope)
        if self.fault_tolerant:
            # The requester is gone for now (orphaned, disconnected, or
            # unreachable past the delivery cap) -- hold the request and
            # resubmit it once the MH is attached again.
            self.network.metrics.record_fault("r2.grant_deferred")
            self._resubmit(request.mh_id)
        else:
            self.skipped_disconnected.append(request.mh_id)
        self._service_next(mss_id)

    def _on_return(self, message: Message) -> None:
        payload: RingReturnPayload = message.payload
        current_mss_id = message.dst
        if self.fault_tolerant and payload.epoch < self._epoch:
            # Return from a pre-regeneration grant: the access itself
            # was already recorded at the MH; the token it would free
            # no longer exists.
            self.network.metrics.record_fault("r2.stale_return")
            return
        if payload.grantor_mss_id == current_mss_id:
            self._finish_access(current_mss_id, payload.mh_id)
        elif self.fault_tolerant and self.network.mss(
            payload.grantor_mss_id
        ).crashed:
            # Nobody to hand the token back to: it died with the
            # grantor, and the watchdog will regenerate it.
            self.network.metrics.record_fault("r2.return_to_crashed")
        else:
            self.network.mss(current_mss_id).send_fixed(
                payload.grantor_mss_id,
                f"{self.scope}.return_fwd",
                payload,
                self.scope,
            )

    def _on_return_fwd(self, message: Message) -> None:
        payload: RingReturnPayload = message.payload
        if self.fault_tolerant and payload.epoch < self._epoch:
            self.network.metrics.record_fault("r2.stale_return")
            return
        self._finish_access(message.dst, payload.mh_id)

    def _finish_access(self, mss_id: str, mh_id: str) -> None:
        if mss_id not in self._tokens:
            if self.fault_tolerant:
                # The return outlived the token (crash or regeneration
                # in between); the completion was already recorded at
                # the MH side.
                self.network.metrics.record_fault("r2.orphan_return")
                return
            raise ProtocolError(
                f"{mss_id} received a token return while not holding it"
            )
        if self.variant is R2Variant.TOKEN_LIST:
            self._tokens[mss_id].token_list.append((mss_id, mh_id))
            if self.network._trace_on:
                self.network._trace.emit(
                    "token.append",
                    scope=self.scope,
                    src=mss_id,
                    pair=[mss_id, mh_id],
                    token_list=[
                        list(pair)
                        for pair in self._tokens[mss_id].token_list
                    ],
                )
        if not self.fault_tolerant:
            # Fault-tolerant runs record the completion at the MH when
            # it leaves the region, so a return message dying with a
            # crashing MSS cannot lose the access.
            self.completed.append((self.network.scheduler.now, mh_id))
            if self.on_complete is not None:
                self.on_complete(mh_id)
        self._service_next(mss_id)

    # ------------------------------------------------------------------
    # Fault tolerance: crash handling, token regeneration, resubmission
    # ------------------------------------------------------------------

    def _on_mss_crash(self, mss_id: str) -> None:
        if not self.fault_tolerant or self.finished:
            return
        held_token = mss_id in self._tokens
        lost = self._request_queues[mss_id] + self._grant_queues[mss_id]
        self._request_queues[mss_id] = []
        self._grant_queues[mss_id] = []
        self._tokens.pop(mss_id, None)
        self._forward_fns.pop(mss_id, None)
        self._nodes[mss_id].reset()
        for request in lost:
            self.network.metrics.record_fault("r2.request_lost_in_crash")
            self._resubmit(request.mh_id)
        # Requests submitted at this MSS whose uplink was still in
        # flight never made it into any queue; resubmit those too.
        for mh_id, at_mss in list(self._outstanding_req.items()):
            if at_mss == mss_id:
                self._resubmit(mh_id)
        if held_token:
            # The token died with the station.  Give any in-flight
            # grantee time to finish, then regenerate (the watchdog is
            # the backstop if this check itself is not conclusive).
            self.network.scheduler.schedule(
                max(2 * self.cs_duration, 5.0),
                self._regen_if_stale,
                self._token_last_seen,
            )

    def _on_mh_crash(self, mh_id: str) -> None:
        if not self.fault_tolerant or self.finished:
            return
        active = self._active_grants.pop(mh_id, None)
        if active is None:
            # Not inside the region.  A queued or in-flight request is
            # already covered: the grant's disconnected outcome defers
            # it into the resubmission loop, which polls until the MH
            # reattaches (and gives up only when the ring stops).
            return
        grant, exit_event = active
        exit_event.cancel()
        self.resource.leave(mh_id)
        self.network.metrics.record_fault("r2.grant_aborted_by_crash")
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.exit",
                scope=self.scope,
                src=mh_id,
                token_val=grant.token_val,
                aborted=True,
                reason="mh.crash",
            )
        # The crashed grantee will never send its return.  The physical
        # token object still sits at the grantor; bump the epoch so the
        # dead grant (and any late return forged from it) is stale, then
        # hand service straight to the next requester -- no need to wait
        # out the watchdog.
        self._epoch += 1
        grantor = grant.grantor_mss_id
        token = self._tokens.get(grantor)
        if token is not None and not self.network.mss(grantor).crashed:
            token.epoch = self._epoch
            self.network.metrics.record_fault("r2.token_reissued")
            if self.network._trace_on:
                self.network._trace.emit(
                    "r2.token_reissued",
                    scope=self.scope,
                    src=grantor,
                    epoch=self._epoch,
                    mh_id=mh_id,
                )
            self._service_next(grantor)
        else:
            # The grantor (and the token with it) is gone too; fall back
            # to the crash path's delayed regeneration.
            self.network.scheduler.schedule(
                max(2 * self.cs_duration, 5.0),
                self._regen_if_stale,
                self._token_last_seen,
            )

    def _on_mh_recover(self, mh_id: str) -> None:
        if not self.fault_tolerant or self.finished:
            return
        if (mh_id in self._outstanding_req
                and mh_id not in self._resubmit_pending):
            # The host died with a request outstanding somewhere in the
            # ring; an amnesiac host no longer remembers it, so the
            # station-side bookkeeping resubmits on its behalf.
            self._resubmit(mh_id)

    def _schedule_watchdog(self) -> None:
        self.network.scheduler.schedule(
            self.token_timeout / 2, self._check_token
        )

    def _check_token(self) -> None:
        if self.finished:
            return
        now = self.network.scheduler.now
        if now - self._token_last_seen > self.token_timeout:
            self._regenerate()
        self._schedule_watchdog()

    def _regen_if_stale(self, last_seen: float) -> None:
        if self.finished or self._token_last_seen != last_seen:
            return
        self._regenerate()

    def _regenerate(self) -> None:
        leader = self._first_alive()
        if leader is None:
            return  # every station is down; the watchdog retries later
        if self.resource.holder is not None:
            # Someone is inside the region on a still-valid grant; its
            # return may yet free a live token.  The watchdog retries.
            return
        self._epoch += 1
        self.regenerations += 1
        self.network.metrics.record_fault("r2.token_regenerated")
        if self.network._trace_on:
            self.network._trace.emit(
                "r2.regenerate",
                scope=self.scope,
                src=leader,
                epoch=self._epoch,
                token_val=self._last_token_val + 1,
            )
        alive = [
            m for m in self.mss_ids if not self.network.mss(m).crashed
        ]
        # Election and announcement traffic among the survivors: the
        # leader hears from / informs each other alive station once.
        if len(alive) > 1:
            self.network.metrics.record_fixed(
                self.scope, count=len(alive) - 1
            )
        for node in self._nodes.values():
            node.reset()
        for mss_id in self.mss_ids:
            # Grants that were queued but never sent go back to the
            # request queue for the next traversal.
            self._request_queues[mss_id].extend(self._grant_queues[mss_id])
            self._grant_queues[mss_id] = []
        self._tokens.clear()
        self._forward_fns.clear()
        self._token_last_seen = self.network.scheduler.now
        self._nodes[leader].inject_token(
            Token(
                token_val=self._last_token_val + 1,
                traversals=self._last_traversals,
                epoch=self._epoch,
            )
        )

    def _resubmit(self, mh_id: str) -> None:
        if self.finished or mh_id in self._resubmit_pending:
            return
        self._resubmit_pending.add(mh_id)
        self._try_resubmit(mh_id)

    def _try_resubmit(self, mh_id: str) -> None:
        if mh_id not in self._resubmit_pending:
            return  # satisfied by an in-flight grant meanwhile
        if self.finished:
            self._resubmit_pending.discard(mh_id)
            return
        mh = self.network.mobile_host(mh_id)
        if mh.is_connected and not self.network.mss(
            mh.current_mss_id
        ).crashed:
            self._resubmit_pending.discard(mh_id)
            self.network.metrics.record_fault("r2.request_resubmitted")
            if self.network._trace_on:
                self.network._trace.emit(
                    "r2.resubmit",
                    scope=self.scope,
                    src=mh_id,
                    dst=mh.current_mss_id,
                )
            self.request(mh_id)
            return
        # Not attached yet (in transit, disconnected, or orphaned by a
        # crash): poll until it comes back.
        self.network.scheduler.schedule(2.0, self._try_resubmit, mh_id)

    # ------------------------------------------------------------------
    # MH side
    # ------------------------------------------------------------------

    def _on_grant(self, message: Message) -> None:
        grant: RingGrantPayload = message.payload
        if self.fault_tolerant and grant.epoch < self._epoch:
            # The grantor's epoch died (crash + regeneration) while this
            # grant was in flight; honoring it could overlap with a
            # grant from the live token.  Refuse and ask again.
            self.network.metrics.record_fault("r2.stale_grant")
            if self.network._trace_on:
                self.network._trace.emit(
                    "r2.stale_grant",
                    scope=self.scope,
                    src=grant.mh_id,
                    epoch=grant.epoch,
                    live_epoch=self._epoch,
                )
            self._resubmit(grant.mh_id)
            return
        # R2': on receiving the token the MH adopts the current
        # token_val as its access_count.
        self.access_counts[grant.mh_id] = grant.token_val
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.enter",
                scope=self.scope,
                src=grant.mh_id,
                token_val=grant.token_val,
            )
        self.resource.enter(
            grant.mh_id,
            info={
                "algorithm": self.scope,
                "variant": self.variant.value,
                "token_val": grant.token_val,
            },
        )
        exit_event = self.network.scheduler.schedule(
            self.cs_duration, self._exit_region, grant
        )
        if self.fault_tolerant:
            self._active_grants[grant.mh_id] = (grant, exit_event)

    def _exit_region(self, grant: RingGrantPayload) -> None:
        self._active_grants.pop(grant.mh_id, None)
        self.resource.leave(grant.mh_id)
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.exit",
                scope=self.scope,
                src=grant.mh_id,
                token_val=grant.token_val,
            )
        if self.fault_tolerant:
            # Record the completion here, at the MH: the access has
            # happened even if the return message later dies with a
            # crashing station.
            self._outstanding_req.pop(grant.mh_id, None)
            self._resubmit_pending.discard(grant.mh_id)
            self.completed.append(
                (self.network.scheduler.now, grant.mh_id)
            )
            if self.on_complete is not None:
                self.on_complete(grant.mh_id)
        mh = self.network.mobile_host(grant.mh_id)
        if mh.is_connected:
            self._send_return(grant)
        else:
            # Mid-move: the token must still go back; hand it over as
            # soon as the MH reattaches (one-shot listener).
            fired = [False]

            def once(g=grant) -> None:
                if not fired[0]:
                    fired[0] = True
                    self._send_return(g)

            mh.add_attach_listener(once)

    def _send_return(self, grant: RingGrantPayload) -> None:
        mh = self.network.mobile_host(grant.mh_id)
        mh.send_to_mss(
            f"{self.scope}.return",
            RingReturnPayload(
                grant.mh_id, grant.grantor_mss_id, grant.epoch
            ),
            self.scope,
        )
