"""Algorithm L1: Lamport's mutual exclusion directly on mobile hosts.

The paper's inefficient baseline (Section 3.1.1).  Every participant is
a MH; every algorithm message is MH -> MH and therefore costs
``2*C_wireless + C_search`` (uplink to the local MSS, search, downlink
from the destination's MSS).  One execution exchanges ``3*(N-1)``
messages, so its total cost is ``3*(N-1)*(2*C_wireless + C_search)`` and
the energy drained from batteries is proportional to ``6*(N-1)``
wireless transmissions/receptions.

The implementation reuses the static Lamport substrate unchanged -- the
only L1-specific code is the MH->MH transport and the critical-region
glue, which is precisely the paper's framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.mutex.lamport_core import LamportMutexNode, MutexTransport
from repro.mutex.resource import CriticalResource
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class RoutedPayload:
    """MH -> MH payload relayed through the static network."""

    dst_mh_id: str
    kind: str
    inner: object


class _MobileTransport(MutexTransport):
    """Transport between MHs: uplink to the local MSS, then search."""

    def __init__(self, mutex: "L1Mutex", mh_id: str) -> None:
        self._mutex = mutex
        self._mh_id = mh_id

    def peers(self) -> List[str]:
        return [m for m in self._mutex.mh_ids if m != self._mh_id]

    def send(self, dst: str, kind: str, payload: object) -> None:
        mh = self._mutex.network.mobile_host(self._mh_id)
        mh.send_to_mss(
            self._mutex.kind_route,
            RoutedPayload(dst, kind, payload),
            self._mutex.scope,
        )


class L1Mutex:
    """Lamport's algorithm run by the N mobile hosts themselves.

    Args:
        network: the simulated system.
        mh_ids: the participating mobile hosts (all must be registered).
        resource: the instrumented critical region.
        cs_duration: how long a holder stays inside the region.
        scope: metrics scope for all L1 traffic.
        on_complete: optional callback ``(mh_id)`` fired when a MH has
            released the region (one full execution finished).
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        resource: CriticalResource,
        cs_duration: float = 1.0,
        scope: str = "L1",
        on_complete: Optional[Callable[[str], None]] = None,
    ) -> None:
        if len(mh_ids) < 2:
            raise ConfigurationError("L1 needs at least two participants")
        self.network = network
        self.mh_ids = list(mh_ids)
        self.resource = resource
        self.cs_duration = cs_duration
        self.scope = scope
        self.on_complete = on_complete
        self.kind_route = f"{scope}.route"
        self.completed: List[Tuple[float, str]] = []
        self._nodes: Dict[str, LamportMutexNode] = {}
        #: mh_id -> scheduled exit event while inside the region
        #: (tracked only under a fault plan, to abort on MH crash).
        self._active: Dict[str, object] = {}
        #: participants whose pending request was disclaimed by a crash
        #: and should be resubmitted when the host recovers.
        self._disclaimed: Set[str] = set()
        for mh_id in self.mh_ids:
            self._attach_mh(mh_id)
        for mss_id in network.mss_ids():
            network.mss(mss_id).register_handler(
                self.kind_route, self._relay
            )
        if network.faults is not None:
            network.faults.add_mh_crash_listener(self._on_mh_crash)
            network.faults.add_mh_recovery_listener(self._on_mh_recover)

    def _attach_mh(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        node = LamportMutexNode(
            node_id=mh_id,
            transport=_MobileTransport(self, mh_id),
            kind_prefix=self.scope,
            on_granted=lambda tag, m=mh_id: self._enter_region(m),
        )
        self._nodes[mh_id] = node
        mh.register_handler(
            f"{self.scope}.request",
            lambda msg, n=node: self._guarded(n.on_request, msg.payload),
        )
        mh.register_handler(
            f"{self.scope}.reply",
            lambda msg, n=node: self._guarded(n.on_reply, msg.payload),
        )
        mh.register_handler(
            f"{self.scope}.release",
            lambda msg, n=node: self._guarded(n.on_release, msg.payload),
        )

    def _guarded(self, handler: Callable[[object], None],
                 payload: object) -> None:
        """Process a protocol message unless its origin is known dead.

        A request in flight when its sender crashed would re-enqueue the
        ghost entry the survivors just disclaimed; such stragglers are
        dropped until the origin recovers (and re-announces)."""
        origin = getattr(payload, "origin", None)
        if origin is not None and self.network.is_mh_crashed(origin):
            self.network.metrics.record_fault("l1.stale_message_dropped")
            return
        handler(payload)

    # ------------------------------------------------------------------

    def request(self, mh_id: str) -> None:
        """Have ``mh_id`` request the critical region.

        The MH must be connected: it is about to transmit N-1 request
        messages over its wireless link.
        """
        if mh_id not in self._nodes:
            raise ConfigurationError(f"{mh_id} is not an L1 participant")
        self._nodes[mh_id].request(tag=mh_id)

    def node(self, mh_id: str) -> LamportMutexNode:
        """The Lamport node running at ``mh_id`` (for tests)."""
        return self._nodes[mh_id]

    # ------------------------------------------------------------------

    def _relay(self, message: Message) -> None:
        routed: RoutedPayload = message.payload
        mss = self.network.mss(message.dst)
        self.network.send_to_mh(
            mss.host_id,
            routed.dst_mh_id,
            Message(
                kind=routed.kind,
                src=message.src,
                dst=routed.dst_mh_id,
                payload=routed.inner,
                scope=self.scope,
            ),
        )

    def _enter_region(self, mh_id: str) -> None:
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.enter", scope=self.scope, src=mh_id
            )
        self.resource.enter(mh_id, info={"algorithm": self.scope})
        event = self.network.scheduler.schedule(
            self.cs_duration, self._exit_region, mh_id
        )
        if self.network.faults is not None:
            self._active[mh_id] = event

    def _exit_region(self, mh_id: str) -> None:
        self._active.pop(mh_id, None)
        self.resource.leave(mh_id)
        if self.network._trace_on:
            self.network._trace.emit(
                "cs.exit", scope=self.scope, src=mh_id
            )
        mh = self.network.mobile_host(mh_id)
        if not mh.is_connected:
            # The holder left its cell before releasing: L1 simply has no
            # provision for this -- the release stays unsent and the
            # system blocks (the drawback Section 3.1.1 points out).
            return
        self._nodes[mh_id].release(tag=mh_id)
        self.completed.append((self.network.scheduler.now, mh_id))
        if self.on_complete is not None:
            self.on_complete(mh_id)

    # ------------------------------------------------------------------
    # MH crash tolerance
    # ------------------------------------------------------------------

    def _on_mh_crash(self, mh_id: str) -> None:
        """A participant crashed: abort its access and disclaim its
        requests at the surviving participants.

        The crashed node's queue entries can never be released by the
        node itself (its memory is gone), so the survivors purge them
        locally -- otherwise the distributed queue head would point at
        a ghost forever and mutual exclusion would stall system-wide.
        """
        if mh_id not in self._nodes:
            return
        node = self._nodes[mh_id]
        event = self._active.pop(mh_id, None)
        if event is not None:
            event.cancel()
            self.resource.leave(mh_id)
            self.network.metrics.record_fault("l1.grant_aborted_by_crash")
            if self.network._trace_on:
                self.network._trace.emit(
                    "cs.exit",
                    scope=self.scope,
                    src=mh_id,
                    aborted=True,
                    reason="mh.crash",
                )
        had_pending = bool(node.pending_tags())
        node.reset_volatile()
        if had_pending:
            self._disclaimed.add(mh_id)
        purged = 0
        for peer_id, peer in self._nodes.items():
            if peer_id != mh_id:
                purged += peer.forget_origin(mh_id)
        if purged or had_pending:
            self.network.metrics.record_fault("l1.requests_disclaimed")

    def _on_mh_recover(self, mh_id: str) -> None:
        """Rebuild what the amnesiac rejoiner needs to be a safe peer.

        The recovered node's queue is empty: if the survivors did not
        retransmit their outstanding requests, the rejoiner would order
        only its own post-recovery requests and two nodes could sit at
        their queue heads simultaneously -- a mutual-exclusion
        violation.  Every survivor therefore re-announces its pending
        *and held* requests to the rejoiner, and a request the crash
        disclaimed is resubmitted now that the host can transmit."""
        for peer_id, peer in self._nodes.items():
            if peer_id != mh_id:
                peer.reannounce_to(mh_id)
        if mh_id in self._disclaimed and mh_id in self._nodes:
            self._disclaimed.discard(mh_id)
            self.request(mh_id)
