"""Plain-text renderings of metric series (terminal "figures").

The library is dependency-free, so figures are ASCII: sparklines for
time series and horizontal bar charts for per-scope breakdowns.  Used
by the examples and handy in any terminal session.
Figures are drawn in the paper's cost currency (C_fixed / C_wireless / C_search).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """Render a sequence as a one-line ASCII sparkline.

    ``width`` > 0 resamples the series to that many characters
    (bucket means); 0 keeps one character per value.
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if width and width > 0 and len(values) != width:
        values = _resample(values, width)
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[1] * len(values)
    chars = []
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        level = 1 + int((value - low) / span * (top - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def _resample(values: List[float], width: int) -> List[float]:
    buckets: List[List[float]] = [[] for _ in range(width)]
    n = len(values)
    for index, value in enumerate(values):
        buckets[min(index * width // n, width - 1)].append(value)
    resampled = []
    previous = values[0]
    for bucket in buckets:
        if bucket:
            previous = sum(bucket) / len(bucket)
        resampled.append(previous)
    return resampled


def bar_chart(
    data: Dict[str, float],
    width: int = 40,
    sort: bool = True,
) -> str:
    """Render a label -> value mapping as horizontal ASCII bars."""
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if not data:
        return ""
    items: Iterable[Tuple[str, float]] = data.items()
    if sort:
        items = sorted(items, key=lambda kv: -kv[1])
    items = list(items)
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        length = 0 if peak == 0 else int(round(value / peak * width))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_width)}  {bar:<{width}}  {value:,.0f}"
        )
    return "\n".join(lines)


def fault_summary(snapshot, width: int = 40) -> str:
    """Render a :class:`MetricsSnapshot`'s fault counters as bars.

    Includes a recovery-time summary line when the snapshot recorded
    completed MSS-crash recoveries.  Returns ``""`` for fault-free
    snapshots, so callers can print unconditionally.
    """
    parts = []
    if snapshot.faults:
        parts.append(
            bar_chart(
                {name: float(count) for name, count in
                 snapshot.faults.items()},
                width=width,
            )
        )
    times = snapshot.recovery_times
    if times:
        parts.append(
            f"recoveries: {len(times)}  "
            f"mean {sum(times) / len(times):.2f}  "
            f"max {max(times):.2f}"
        )
    return "\n".join(parts)


def cost_sparklines(
    timeline_collector,
    cost_model,
    bucket: float,
    scopes: Sequence[str],
    width: int = 50,
) -> str:
    """One labelled sparkline per scope from a TimelineCollector."""
    rows = []
    label_width = max((len(s) for s in scopes), default=0)
    for scope in scopes:
        series = timeline_collector.bucketed_cost(
            cost_model, bucket, scope
        )
        if not series:
            rows.append(f"{scope.ljust(label_width)}  (no traffic)")
            continue
        # Expand to a dense series (zero-filled gaps).
        last_bucket = int(series[-1][0] // bucket)
        dense = [0.0] * (last_bucket + 1)
        for start, cost in series:
            dense[int(start // bucket)] = cost
        total = sum(cost for _, cost in series)
        rows.append(
            f"{scope.ljust(label_width)}  "
            f"{sparkline(dense, width)}  {total:,.0f}"
        )
    return "\n".join(rows)
