"""Cost model and metrics accounting (substrate S2).

The paper evaluates algorithms in a three-parameter cost currency:

* ``C_fixed`` — one point-to-point message between two fixed hosts,
* ``C_wireless`` — one message over a wireless hop (MH <-> local MSS),
* ``C_search`` — locating a mobile host and forwarding a message to its
  current MSS (always >= ``C_fixed``).

Every transmission in the simulator is recorded in a
:class:`MetricsCollector` tagged with a category, the algorithm scope
that caused it, and the hosts involved.  Benchmarks then price the
recorded counts with a :class:`CostModel` — the identical currency used
by the paper's closed-form expressions, which makes measured-vs-predicted
comparisons exact rather than approximate.
"""

from repro.metrics.cost import CostModel
from repro.metrics.collector import (
    Category,
    MetricsCollector,
    MetricsSnapshot,
)

__all__ = [
    "Category",
    "CostModel",
    "MetricsCollector",
    "MetricsSnapshot",
]
