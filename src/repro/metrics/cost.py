"""The three-parameter cost model of the paper's system model (Section 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CostModel:
    """Message costs in the mobile system model.

    Attributes:
        c_fixed: cost of a point-to-point message between two fixed
            hosts (MSSs) over the static network.
        c_wireless: cost of one message over the wireless hop between a
            MH and its local MSS (either direction).
        c_search: cost to locate a MH and forward a message to its
            current local MSS.  The paper requires
            ``c_search >= c_fixed``; in the worst case a source MSS
            contacts each of the other M-1 MSSs.

    The defaults make search an order of magnitude more expensive than a
    fixed message and the wireless hop several times a fixed message,
    reflecting the paper's qualitative assumptions (low-bandwidth
    wireless links, costly search).
    """

    c_fixed: float = 1.0
    c_wireless: float = 5.0
    c_search: float = 10.0

    def __post_init__(self) -> None:
        if self.c_fixed < 0 or self.c_wireless < 0 or self.c_search < 0:
            raise ConfigurationError("costs must be nonnegative")
        if self.c_search < self.c_fixed:
            raise ConfigurationError(
                f"the system model requires c_search >= c_fixed "
                f"(got {self.c_search} < {self.c_fixed})"
            )

    def worst_case_search(self, n_mss: int) -> float:
        """Worst-case search cost: probing each of the other M-1 MSSs."""
        if n_mss < 1:
            raise ConfigurationError("n_mss must be >= 1")
        return (n_mss - 1) * self.c_fixed

    def mh_to_mh(self) -> float:
        """Cost of a MH -> MH message: ``2*c_wireless + c_search``."""
        return 2 * self.c_wireless + self.c_search

    def mss_to_remote_mh(self) -> float:
        """Cost of a MSS -> non-local MH message:
        ``c_search + c_wireless``."""
        return self.c_search + self.c_wireless
