"""Time-resolved metrics: cost-over-time series.

The plain :class:`~repro.metrics.MetricsCollector` keeps only totals.
:class:`TimelineCollector` additionally timestamps every recorded
transmission, enabling figure-style outputs: cumulative cost curves,
per-bucket message rates, and per-scope activity over time.
Extends the paper's cost accounting with time resolution (ROADMAP observability arc).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.metrics.collector import Category, MetricsCollector
from repro.metrics.cost import CostModel
from repro.sim import Scheduler


@dataclass(frozen=True)
class TimelineEvent:
    """One timestamped transmission record."""

    time: float
    category: Category
    scope: str
    count: int
    mh_id: Optional[str] = None


class TimelineCollector(MetricsCollector):
    """A metrics collector that also records when traffic happened.

    Use it by passing ``timeline=True`` to
    :class:`~repro.facade.Simulation`, or construct one directly and
    hand it to :class:`~repro.net.Network`.
    """

    def __init__(self, scheduler: Scheduler) -> None:
        super().__init__()
        self._scheduler = scheduler
        self.events: List[TimelineEvent] = []

    # -- recording overrides -------------------------------------------

    def record_fixed(self, scope: str = "default", count: int = 1) -> None:
        super().record_fixed(scope, count)
        self._log(Category.FIXED, scope, count)

    def record_wireless_tx(self, mh_id: str,
                           scope: str = "default") -> None:
        super().record_wireless_tx(mh_id, scope)
        self._log(Category.WIRELESS, scope, 1, mh_id)

    def record_wireless_rx(self, mh_id: str,
                           scope: str = "default") -> None:
        super().record_wireless_rx(mh_id, scope)
        self._log(Category.WIRELESS, scope, 1, mh_id)

    def record_wireless_bulk(
        self,
        scope: str = "default",
        tx: int = 0,
        rx: int = 0,
        mh_id: str = "mh-crowd",
    ) -> None:
        super().record_wireless_bulk(scope, tx, rx, mh_id)
        if tx + rx > 0:
            self._log(Category.WIRELESS, scope, tx + rx, mh_id)

    def record_search(self, scope: str = "default") -> None:
        super().record_search(scope)
        self._log(Category.SEARCH, scope, 1)

    def record_search_probe(self, scope: str = "default",
                            count: int = 1) -> None:
        super().record_search_probe(scope, count)
        self._log(Category.SEARCH_PROBE, scope, count)

    def _log(self, category: Category, scope: str, count: int,
             mh_id: Optional[str] = None) -> None:
        self.events.append(
            TimelineEvent(
                self._scheduler.now, category, scope, count, mh_id
            )
        )

    # -- series --------------------------------------------------------

    def cumulative_cost(
        self,
        model: CostModel,
        scope: Optional[str] = None,
    ) -> List[Tuple[float, float]]:
        """(time, cumulative cost) after each recorded transmission."""
        total = 0.0
        points: List[Tuple[float, float]] = []
        for event in self.events:
            if scope is not None and event.scope != scope:
                continue
            total += self._price(event, model)
            points.append((event.time, total))
        return points

    def bucketed_cost(
        self,
        model: CostModel,
        bucket: float,
        scope: Optional[str] = None,
    ) -> List[Tuple[float, float]]:
        """(bucket start time, cost inside bucket) series."""
        if bucket <= 0:
            raise ConfigurationError("bucket must be positive")
        totals: Dict[int, float] = {}
        for event in self.events:
            if scope is not None and event.scope != scope:
                continue
            index = int(event.time // bucket)
            totals[index] = totals.get(index, 0.0) + self._price(
                event, model
            )
        return [
            (index * bucket, totals[index]) for index in sorted(totals)
        ]

    def cost_between(
        self,
        model: CostModel,
        start: float,
        end: float,
        scope: Optional[str] = None,
    ) -> float:
        """Total cost of traffic recorded in ``[start, end)``."""
        if end < start:
            raise ConfigurationError("end must be >= start")
        times = [event.time for event in self.events]
        lo = bisect_right(times, start - 1e-12)
        hi = bisect_right(times, end - 1e-12)
        total = 0.0
        for event in self.events[lo:hi]:
            if scope is None or event.scope == scope:
                total += self._price(event, model)
        return total

    def scopes_over_time(self, bucket: float) -> Dict[str, List[int]]:
        """Per-scope message counts per time bucket (ragged tails
        padded with zeros)."""
        if bucket <= 0:
            raise ConfigurationError("bucket must be positive")
        if not self.events:
            return {}
        buckets = int(self.events[-1].time // bucket) + 1
        by_scope: Dict[str, List[int]] = {}
        for event in self.events:
            row = by_scope.setdefault(event.scope, [0] * buckets)
            row[int(event.time // bucket)] += event.count
        return by_scope

    @staticmethod
    def _price(event: TimelineEvent, model: CostModel) -> float:
        prices = {
            Category.FIXED: model.c_fixed,
            Category.WIRELESS: model.c_wireless,
            Category.SEARCH: model.c_search,
            Category.SEARCH_PROBE: model.c_fixed,
        }
        return prices[event.category] * event.count
