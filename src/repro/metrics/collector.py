"""Metrics accounting for every transmission in the simulator.

Counts are kept per ``(category, scope)`` where *scope* is a free-form
label naming the algorithm (or phase) that caused the traffic, e.g.
``"L2"`` or ``"lv-update"``.  Mobile-host energy is tracked separately:
each wireless transmission or reception at a MH costs one energy unit,
mirroring the paper's "battery consumption proportional to the number of
wireless messages" accounting.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.metrics.cost import CostModel


class Category(str, Enum):
    """Transmission categories priced by :class:`CostModel`."""

    FIXED = "fixed"
    """A point-to-point message between two MSSs."""

    WIRELESS = "wireless"
    """A message over a wireless hop (either direction)."""

    SEARCH = "search"
    """One abstract search operation (priced at ``c_search``)."""

    SEARCH_PROBE = "search_probe"
    """A concrete probe message of a measured search protocol.  Probes
    travel the fixed network and are priced at ``c_fixed``; they are kept
    distinct from :attr:`FIXED` so benches can compare the empirical
    search cost against the abstract ``c_search``."""


DEFAULT_SCOPE = "default"

# Hot-path aliases: ``Category.FIXED`` goes through the enum metaclass
# on every access; the collector records millions of times per run, so
# bind the members once at import.
_FIXED = Category.FIXED
_WIRELESS = Category.WIRELESS
_SEARCH = Category.SEARCH
_SEARCH_PROBE = Category.SEARCH_PROBE


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of all counters, used to measure deltas."""

    counts: Dict[tuple, int]
    energy_tx: Dict[str, int]
    energy_rx: Dict[str, int]
    #: fault/recovery event counts (drops, retransmits, crashes, ...),
    #: keyed by event name; empty in fault-free runs.
    faults: Dict[str, int] = field(default_factory=dict)
    #: one entry per completed MSS-crash recovery: simulated time from
    #: the crash until the last orphaned MH re-registered.
    recovery_times: Tuple[float, ...] = ()

    def total(self, category: Category, scope: Optional[str] = None) -> int:
        """Total count for ``category`` (optionally restricted to scope)."""
        if scope is not None:
            return self.counts.get((category, scope), 0)
        return sum(
            count for (cat, _), count in self.counts.items() if cat == category
        )

    def scopes(self) -> set:
        """All scope labels present in the snapshot."""
        return {scope for (_, scope) in self.counts}

    def energy(self, mh_id: Optional[str] = None) -> int:
        """Energy units consumed at ``mh_id`` (or all MHs combined)."""
        if mh_id is not None:
            return self.energy_tx.get(mh_id, 0) + self.energy_rx.get(mh_id, 0)
        return sum(self.energy_tx.values()) + sum(self.energy_rx.values())

    def fault_total(self, name: Optional[str] = None) -> int:
        """Count of fault events named ``name`` (or all fault events)."""
        if name is not None:
            return self.faults.get(name, 0)
        return sum(self.faults.values())

    def cost(
        self, model: CostModel, scope: Optional[str] = None
    ) -> float:
        """Price the snapshot in the paper's cost currency.

        Abstract searches are priced at ``c_search``; concrete search
        probes at ``c_fixed`` each (they are real fixed-network
        messages).
        """
        return (
            self.total(Category.FIXED, scope) * model.c_fixed
            + self.total(Category.WIRELESS, scope) * model.c_wireless
            + self.total(Category.SEARCH, scope) * model.c_search
            + self.total(Category.SEARCH_PROBE, scope) * model.c_fixed
        )

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters accumulated since ``earlier`` was taken."""
        counts = Counter(self.counts)
        counts.subtract(Counter(earlier.counts))
        tx = Counter(self.energy_tx)
        tx.subtract(Counter(earlier.energy_tx))
        rx = Counter(self.energy_rx)
        rx.subtract(Counter(earlier.energy_rx))
        faults = Counter(self.faults)
        faults.subtract(Counter(earlier.faults))
        return MetricsSnapshot(
            counts={k: v for k, v in counts.items() if v},
            energy_tx={k: v for k, v in tx.items() if v},
            energy_rx={k: v for k, v in rx.items() if v},
            faults={k: v for k, v in faults.items() if v},
            recovery_times=self.recovery_times[
                len(earlier.recovery_times):
            ],
        )


@dataclass
class MetricsCollector:
    """Mutable accumulator for transmission counts and MH energy.

    Counters are plain dicts incremented via ``dict.get``: unlike
    :class:`collections.Counter`, a missing key never dispatches into a
    Python-level ``__missing__``, which matters because every simulated
    transmission lands here.
    """

    _counts: Dict[tuple, int] = field(default_factory=dict)
    _energy_tx: Dict[str, int] = field(default_factory=dict)
    _energy_rx: Dict[str, int] = field(default_factory=dict)
    _faults: Dict[str, int] = field(default_factory=dict)
    _recovery_times: List[float] = field(default_factory=list)

    def record_fixed(self, scope: str = DEFAULT_SCOPE, count: int = 1) -> None:
        """Record ``count`` fixed-network messages under ``scope``."""
        counts = self._counts
        key = (_FIXED, scope)
        counts[key] = counts.get(key, 0) + count

    def record_wireless_tx(
        self, mh_id: str, scope: str = DEFAULT_SCOPE
    ) -> None:
        """Record a wireless transmission originated by MH ``mh_id``."""
        counts = self._counts
        key = (_WIRELESS, scope)
        counts[key] = counts.get(key, 0) + 1
        energy = self._energy_tx
        energy[mh_id] = energy.get(mh_id, 0) + 1

    def record_wireless_rx(
        self, mh_id: str, scope: str = DEFAULT_SCOPE
    ) -> None:
        """Record a wireless message received by MH ``mh_id``."""
        counts = self._counts
        key = (_WIRELESS, scope)
        counts[key] = counts.get(key, 0) + 1
        energy = self._energy_rx
        energy[mh_id] = energy.get(mh_id, 0) + 1

    def record_wireless_bulk(
        self,
        scope: str = DEFAULT_SCOPE,
        tx: int = 0,
        rx: int = 0,
        mh_id: str = "mh-crowd",
    ) -> None:
        """Record many wireless messages in one O(1) update.

        The scale substrate's batched cohort operations
        (:mod:`repro.scale`) bill thousands of uplinks at once;
        recording them one ``record_wireless_tx`` call (and one energy
        dict entry) per MH would reintroduce exactly the per-MH memory
        growth the store exists to avoid.  Energy is aggregated under
        the single ``mh_id`` pseudo-host (default the crowd id), so
        totals stay exact while the dicts stay O(1) in N.
        """
        if tx <= 0 and rx <= 0:
            return
        counts = self._counts
        key = (_WIRELESS, scope)
        counts[key] = counts.get(key, 0) + tx + rx
        if tx > 0:
            energy = self._energy_tx
            energy[mh_id] = energy.get(mh_id, 0) + tx
        if rx > 0:
            energy = self._energy_rx
            energy[mh_id] = energy.get(mh_id, 0) + rx

    def record_search(self, scope: str = DEFAULT_SCOPE) -> None:
        """Record one abstract search operation."""
        counts = self._counts
        key = (_SEARCH, scope)
        counts[key] = counts.get(key, 0) + 1

    def record_search_probe(
        self, scope: str = DEFAULT_SCOPE, count: int = 1
    ) -> None:
        """Record ``count`` concrete probe messages of a measured search."""
        counts = self._counts
        key = (_SEARCH_PROBE, scope)
        counts[key] = counts.get(key, 0) + count

    def record_fault(self, name: str, count: int = 1) -> None:
        """Record ``count`` fault/recovery events named ``name``.

        Names are dotted, namespaced by subsystem: ``"fixed.dropped"``,
        ``"rel.retransmit"``, ``"mss.crash"``, ``"mh.orphaned"``,
        ``"r2.token_regenerated"``, ...  Fault events carry no cost in
        the paper's currency; the *recovery traffic* they provoke is
        recorded through the ordinary categories.
        """
        faults = self._faults
        faults[name] = faults.get(name, 0) + count

    def record_recovery_time(self, duration: float) -> None:
        """Record the time one MSS-crash recovery took (crash until the
        last orphaned MH re-registered)."""
        self._recovery_times.append(duration)

    def fault_total(self, name: Optional[str] = None) -> int:
        """Count of fault events named ``name`` (or all fault events)."""
        return self.snapshot().fault_total(name)

    def total(self, category: Category, scope: Optional[str] = None) -> int:
        """Current count for ``category`` (optionally within ``scope``)."""
        return self.snapshot().total(category, scope)

    def energy(self, mh_id: Optional[str] = None) -> int:
        """Current energy units for one MH (or all MHs)."""
        return self.snapshot().energy(mh_id)

    def cost(self, model: CostModel, scope: Optional[str] = None) -> float:
        """Current total cost priced with ``model``."""
        return self.snapshot().cost(model, scope)

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of all counters at this instant."""
        return MetricsSnapshot(
            counts=dict(self._counts),
            energy_tx=dict(self._energy_tx),
            energy_rx=dict(self._energy_rx),
            faults=dict(self._faults),
            recovery_times=tuple(self._recovery_times),
        )

    def since(self, earlier: MetricsSnapshot) -> MetricsSnapshot:
        """Counters accumulated since ``earlier``."""
        return self.snapshot().diff(earlier)

    def reset(self) -> None:
        """Drop all recorded counts."""
        self._counts.clear()
        self._energy_tx.clear()
        self._energy_rx.clear()
        self._faults.clear()
        self._recovery_times.clear()

    def report(self, model: Optional[CostModel] = None) -> Dict[str, object]:
        """A plain-dict summary suitable for printing or JSON dumping."""
        snap = self.snapshot()
        by_scope: Dict[str, Dict[str, int]] = defaultdict(dict)
        for (category, scope), count in sorted(
            snap.counts.items(), key=lambda kv: (kv[0][1], kv[0][0].value)
        ):
            by_scope[scope][category.value] = count
        result: Dict[str, object] = {
            "totals": {
                category.value: snap.total(category) for category in Category
            },
            "by_scope": dict(by_scope),
            "energy_total": snap.energy(),
        }
        if snap.faults:
            result["faults"] = dict(sorted(snap.faults.items()))
        if snap.recovery_times:
            times = snap.recovery_times
            result["recovery"] = {
                "count": len(times),
                "mean": sum(times) / len(times),
                "max": max(times),
            }
        if model is not None:
            result["cost_total"] = snap.cost(model)
            result["cost_by_scope"] = {
                scope: snap.cost(model, scope) for scope in snap.scopes()
            }
        return result
