"""repro -- a reproduction of "Structuring Distributed Algorithms for
Mobile Hosts" (Badrinath, Acharya, Imielinski; ICDCS 1994).

The library provides:

* a discrete-event simulation of the paper's system model (mobile hosts,
  support stations, FIFO wireless cells, a reliable fixed network, and
  the three-parameter cost currency C_fixed / C_wireless / C_search);
* the four mutual exclusion algorithm families of Section 3
  (:class:`L1Mutex`, :class:`L2Mutex`, :class:`R1Mutex`,
  :class:`R2Mutex` with the R2' and R2'' variants);
* the three group location management strategies of Section 4
  (:class:`PureSearchGroup`, :class:`AlwaysInformGroup`,
  :class:`LocationViewGroup`);
* the proxy framework of Section 5 (:mod:`repro.proxy`);
* the paper's analytic cost formulas (:mod:`repro.analysis`) used as
  oracles by the benchmark suite.

Quickstart::

    from repro import CostModel, CriticalResource, L2Mutex, Simulation

    sim = Simulation(n_mss=4, n_mh=12, seed=7)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    mutex.request(sim.mh_id(0))
    sim.drain()
    assert resource.access_count == 1
"""

from repro.errors import (
    ConfigurationError,
    FairnessViolation,
    InvariantViolationError,
    MutualExclusionViolation,
    NotConnectedError,
    PerfGateError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownHostError,
)
from repro.facade import Simulation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkFault,
    MhCrash,
    MssCrash,
    Partition,
    apply_fault_plan,
)
from repro.hosts import HostState, MobileHost, MobileSupportStation
from repro.metrics import Category, CostModel, MetricsCollector
from repro.multicast import ExactlyOnceMulticast
from repro.mutex import (
    CriticalResource,
    L1Mutex,
    L2Mutex,
    R1Mutex,
    R2Mutex,
    R2Variant,
)
from repro.net import (
    AbstractSearch,
    BroadcastSearch,
    ConstantLatency,
    Network,
    NetworkConfig,
    ReliableTransport,
    UniformLatency,
)
from repro.monitor import (
    HealthMonitor,
    LivenessMonitor,
    Monitor,
    MonitorHub,
    Violation,
    default_monitors,
    replay_events,
    safety_monitors,
)
from repro.recovery import (
    CheckpointPolicy,
    CounterClient,
    DistancePolicy,
    MutexCheckpointClient,
    NoCheckpointPolicy,
    PerMessagePolicy,
    PeriodicPolicy,
    RecoveryClient,
    RecoveryManager,
)
from repro.trace import TraceEvent, Tracer, to_chrome, to_jsonl, to_mermaid

__version__ = "1.0.0"

__all__ = [
    "AbstractSearch",
    "BroadcastSearch",
    "Category",
    "CheckpointPolicy",
    "ConfigurationError",
    "ConstantLatency",
    "CostModel",
    "CounterClient",
    "CriticalResource",
    "DistancePolicy",
    "ExactlyOnceMulticast",
    "FairnessViolation",
    "FaultInjector",
    "FaultPlan",
    "HealthMonitor",
    "HostState",
    "InvariantViolationError",
    "LinkFault",
    "LivenessMonitor",
    "MhCrash",
    "Monitor",
    "MonitorHub",
    "MssCrash",
    "MutexCheckpointClient",
    "NoCheckpointPolicy",
    "Partition",
    "PerMessagePolicy",
    "PeriodicPolicy",
    "L1Mutex",
    "L2Mutex",
    "MetricsCollector",
    "MobileHost",
    "MobileSupportStation",
    "MutualExclusionViolation",
    "Network",
    "NetworkConfig",
    "NotConnectedError",
    "PerfGateError",
    "ProtocolError",
    "Violation",
    "R1Mutex",
    "R2Mutex",
    "R2Variant",
    "RecoveryClient",
    "RecoveryManager",
    "ReliableTransport",
    "ReproError",
    "Simulation",
    "apply_fault_plan",
    "default_monitors",
    "replay_events",
    "safety_monitors",
    "SimulationError",
    "TraceEvent",
    "Tracer",
    "UniformLatency",
    "UnknownHostError",
    "to_chrome",
    "to_jsonl",
    "to_mermaid",
    "__version__",
]
