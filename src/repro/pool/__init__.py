"""Free-list object pools for the substrate's hottest allocation sites.

ROADMAP item 3 ("next order of magnitude on raw speed") calls for an
object pool / free-list for the event and trace objects the simulator
churns through: every simulated transmission in the paper's two-tier
model (Section 2 cost currency) allocates a scheduler event, and every
traced transmission allocates a :class:`~repro.trace.events.TraceEvent`.
At the N=1M densities `repro.scale` produces, those allocations — not
the protocol logic — dominate the retained-allocation profile.

:class:`Pool` is a deliberately tiny free list:

* ``acquire()`` pops a recycled object, or calls the factory.
* ``release(obj)`` runs the reset hook and shelves the object, up to
  ``capacity`` (beyond that the object is simply left to the GC, so a
  pool can never hold more than ``capacity`` retained blocks).
* counters (``created`` / ``reused`` / ``released``) feed the perf
  harness's retained-blocks gates.

In debug mode (``REPRO_POOL_DEBUG=1``, :func:`set_debug`, or
``Pool(debug=True)``) every outstanding object is tracked so that
double releases, releases of foreign objects, and leaks raise
:class:`PoolError` instead of silently corrupting state.  Debug mode
keeps strong references to outstanding objects; it is meant for tests,
not production runs.

Pooling is only safe when the release site provably owns the last
reference.  The scheduler therefore recycles only events posted via
the handle-free ``post()``/``post_at()`` API, and the monitor hub only
recycles trace events in ``record=False`` mode (monitors never retain
event objects — see ``docs/observability.md``).
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError

__all__ = ["Pool", "PoolError", "set_debug", "debug_enabled"]

_DEBUG = os.environ.get("REPRO_POOL_DEBUG", "") not in ("", "0")


def set_debug(enabled: bool) -> None:
    """Globally enable/disable debug tracking for pools created later."""
    global _DEBUG
    _DEBUG = bool(enabled)


def debug_enabled() -> bool:
    """Whether pools created now default to debug tracking."""
    return _DEBUG


class PoolError(SimulationError):
    """A pool misuse: double release, foreign release, or leak."""


class Pool:
    """A bounded free list of reusable objects.

    Args:
        factory: zero-argument callable producing a fresh object.
        reset: optional callable run on every released object before it
            is shelved (clear references so the free list cannot pin
            payloads alive).
        capacity: maximum number of shelved objects; extra releases
            fall through to the garbage collector.
        name: label used in error messages and stats.
        debug: force debug tracking on/off; ``None`` snapshots the
            module-level flag (see :func:`set_debug`).
    """

    __slots__ = (
        "name",
        "capacity",
        "created",
        "reused",
        "released",
        "_factory",
        "_reset",
        "_free",
        "_outstanding",
    )

    def __init__(
        self,
        factory: Callable[[], Any],
        reset: Optional[Callable[[Any], None]] = None,
        capacity: int = 1024,
        name: str = "pool",
        debug: Optional[bool] = None,
    ) -> None:
        self.name = name
        self.capacity = int(capacity)
        self.created = 0
        self.reused = 0
        self.released = 0
        self._factory = factory
        self._reset = reset
        self._free: List[Any] = []
        if debug is None:
            debug = _DEBUG
        # id -> object; strong refs so an id can never be recycled by
        # the allocator while we still consider it outstanding.
        self._outstanding: Optional[Dict[int, Any]] = {} if debug else None

    def acquire(self) -> Any:
        """Return a recycled object, or a fresh one from the factory."""
        free = self._free
        if free:
            obj = free.pop()
            self.reused += 1
        else:
            obj = self._factory()
            self.created += 1
        if self._outstanding is not None:
            self._outstanding[id(obj)] = obj
        return obj

    def release(self, obj: Any) -> None:
        """Shelve ``obj`` for reuse.  The caller must drop its reference."""
        outstanding = self._outstanding
        if outstanding is not None:
            if outstanding.pop(id(obj), None) is None:
                raise PoolError(
                    f"pool {self.name!r}: release of an object that is not "
                    f"outstanding (double release, or foreign object): {obj!r}"
                )
        reset = self._reset
        if reset is not None:
            reset(obj)
        self.released += 1
        free = self._free
        if len(free) < self.capacity:
            free.append(obj)

    @property
    def free_count(self) -> int:
        """Number of objects currently shelved."""
        return len(self._free)

    @property
    def outstanding_count(self) -> int:
        """Number of acquired-but-unreleased objects (debug mode only)."""
        if self._outstanding is None:
            raise PoolError(
                f"pool {self.name!r}: outstanding tracking requires debug mode"
            )
        return len(self._outstanding)

    def check_leaks(self) -> None:
        """Raise :class:`PoolError` if debug tracking shows live leaks."""
        if self._outstanding:
            raise PoolError(
                f"pool {self.name!r}: {len(self._outstanding)} object(s) "
                "acquired but never released"
            )

    def stats(self) -> Dict[str, int]:
        """Counters for benchmarks and the perf harness."""
        return {
            "created": self.created,
            "reused": self.reused,
            "released": self.released,
            "free": len(self._free),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Pool({self.name!r} created={self.created} reused={self.reused} "
            f"free={len(self._free)}/{self.capacity})"
        )
