"""Workload generators (S21).

Drivers that exercise the algorithms over time:

* :class:`MutexWorkload` -- per-MH Poisson request arrivals against any
  mutual exclusion object exposing ``request(mh_id)``; tracks issued
  and completed requests and never leaves more than one request per MH
  outstanding.
* :class:`GroupMessagingWorkload` -- Poisson group-message traffic from
  random members; combined with a mobility model it dials in the
  paper's mobility-to-message ratio MOB/MSG.
"""

from repro.workload.generators import GroupMessagingWorkload, MutexWorkload

__all__ = ["GroupMessagingWorkload", "MutexWorkload"]
