"""Concrete workload drivers.

Poisson drivers exercising the paper's Section 3-5 algorithms.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.sim import PoissonProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class MutexWorkload:
    """Poisson mutual exclusion request arrivals.

    Works with any algorithm object exposing ``request(mh_id)`` and an
    ``on_complete`` callback attribute (L2Mutex, R2Mutex, ProxiedMutex).
    At most one request per MH is outstanding at a time, matching
    Lamport's single-outstanding-request discipline; arrivals landing
    while a request is pending (or while the MH is detached) are
    dropped and counted.

    Args:
        network: the simulated system.
        mutex: the algorithm under test.
        mh_ids: requesting mobile hosts.
        request_rate: expected requests per MH per time unit.
        rng: randomness source.
    """

    def __init__(
        self,
        network: "Network",
        mutex,
        mh_ids: List[str],
        request_rate: float,
        rng: random.Random,
    ) -> None:
        if request_rate <= 0:
            raise ConfigurationError("request_rate must be positive")
        self.network = network
        self.mutex = mutex
        self.issued = 0
        self.dropped = 0
        self.completed = 0
        self._outstanding: Set[str] = set()
        previous = getattr(mutex, "on_complete", None)

        def on_complete(mh_id: str) -> None:
            self.completed += 1
            self._outstanding.discard(mh_id)
            if previous is not None:
                previous(mh_id)

        mutex.on_complete = on_complete
        self._processes = [
            PoissonProcess(
                network.scheduler,
                request_rate,
                (lambda m=mh_id: self._try_request(m)),
                rng=random.Random(rng.getrandbits(64)),
            )
            for mh_id in mh_ids
        ]

    def stop(self) -> None:
        """Stop issuing new requests."""
        for process in self._processes:
            process.stop()

    def set_rate(self, request_rate: float) -> None:
        """Change the per-MH request rate (diurnal load curves)."""
        for process in self._processes:
            process.set_rate(request_rate)

    def request_now(self, mh_id: str) -> None:
        """Issue one request immediately, outside the Poisson arrivals.

        Honours the same single-outstanding-request discipline as the
        random arrivals (a duplicate or detached request is dropped and
        counted), so scheduled scenario events and background traffic
        compose safely.
        """
        self._try_request(mh_id)

    def _try_request(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if mh_id in self._outstanding or not mh.is_connected:
            self.dropped += 1
            return
        self._outstanding.add(mh_id)
        self.issued += 1
        self.mutex.request(mh_id)


class GroupMessagingWorkload:
    """Poisson group-message traffic from random members.

    Args:
        network: the simulated system.
        group: any strategy exposing ``send(sender, payload)`` and a
            ``members`` list.
        message_rate: expected group messages per time unit (for the
            whole group, not per member).
        rng: randomness source.
        sender_chooser: optional override for picking the sender.
    """

    def __init__(
        self,
        network: "Network",
        group,
        message_rate: float,
        rng: random.Random,
        sender_chooser: Optional[Callable[[], str]] = None,
    ) -> None:
        if message_rate <= 0:
            raise ConfigurationError("message_rate must be positive")
        self.network = network
        self.group = group
        self.rng = rng
        self.sent = 0
        self.dropped = 0
        self._choose = sender_chooser or (
            lambda: self.rng.choice(self.group.members)
        )
        self._process = PoissonProcess(
            network.scheduler,
            message_rate,
            self._try_send,
            rng=random.Random(rng.getrandbits(64)),
        )

    def stop(self) -> None:
        """Stop sending new group messages."""
        self._process.stop()

    def set_rate(self, message_rate: float) -> None:
        """Change the group message rate (diurnal load curves)."""
        self._process.set_rate(message_rate)

    def _try_send(self) -> None:
        sender = self._choose()
        mh = self.network.mobile_host(sender)
        if not mh.is_connected:
            self.dropped += 1
            return
        self.sent += 1
        self.group.send(sender, ("msg", self.sent))
