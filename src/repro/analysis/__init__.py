"""Analytic cost formulas and comparisons from the paper (S20).

:mod:`repro.analysis.formulas` transcribes every closed-form cost
expression in Sections 3-4; :mod:`repro.analysis.comparisons` derives
the crossover conditions behind the paper's qualitative claims ("L2
beats L1", "always-inform beats pure search when mobility is low", ...).
Benchmarks treat these as the predicted values that measured simulator
counts must reproduce.
"""

from repro.analysis import formulas
from repro.analysis import comparisons
from repro.analysis import sweeps

__all__ = ["formulas", "comparisons", "sweeps"]
