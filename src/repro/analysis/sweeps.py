"""Parameter sweeps with multi-seed statistics.

Benchmarks that involve randomness (workload-driven runs) should not
hang their conclusions on a single seed.  :func:`sweep` runs one
experiment function across a parameter grid and several seeds and
aggregates each cell into a :class:`Summary` (mean, standard
deviation, min, max), so "who wins" claims can be asserted on means
with dispersion in view.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Aggregate statistics of one swept cell."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    n: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.stdev / math.sqrt(self.n)

    def __repr__(self) -> str:
        return (
            f"Summary(mean={self.mean:.3g}, stdev={self.stdev:.3g}, "
            f"n={self.n})"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Aggregate a sample of measurements."""
    values = [float(v) for v in values]
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return Summary(
        mean=mean,
        stdev=stdev,
        minimum=min(values),
        maximum=max(values),
        n=n,
    )


def sweep(
    experiment: Callable[..., float],
    parameters: Iterable,
    seeds: Sequence[int],
) -> Dict[object, Summary]:
    """Run ``experiment(parameter, seed)`` over a grid and summarize.

    Args:
        experiment: function returning one scalar measurement.
        parameters: the swept values (each becomes a result key).
        seeds: seeds to repeat each cell with.

    Returns:
        ``{parameter: Summary}`` in parameter order.
    """
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    results: Dict[object, Summary] = {}
    for parameter in parameters:
        samples = [experiment(parameter, seed) for seed in seeds]
        results[parameter] = summarize(samples)
    return results


def series(
    sweep_result: Dict[object, Summary]
) -> Tuple[List[object], List[float], List[float]]:
    """Split a sweep result into (x, means, stderrs) for plotting or
    table printing."""
    xs = list(sweep_result)
    means = [sweep_result[x].mean for x in xs]
    errors = [sweep_result[x].stderr for x in xs]
    return xs, means, errors


def dominates(
    left: Dict[object, Summary], right: Dict[object, Summary]
) -> bool:
    """Whether ``left``'s mean is below ``right``'s at every swept
    point (a robust "left wins everywhere" check)."""
    if left.keys() != right.keys():
        raise ConfigurationError("sweeps cover different parameters")
    return all(left[x].mean < right[x].mean for x in left)
