"""Parameter sweeps with multi-seed statistics.

Benchmarks that involve randomness (workload-driven runs) should not
hang their conclusions on a single seed.  :func:`sweep` runs one
experiment function across a parameter grid and several seeds and
aggregates each cell into a :class:`Summary` (mean, standard
deviation, min, max), so "who wins" claims can be asserted on means
with dispersion in view.
Backs the measured side of the paper's evaluation comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Aggregate statistics of one swept cell."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    n: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.stdev / math.sqrt(self.n)

    def __repr__(self) -> str:
        return (
            f"Summary(mean={self.mean:.3g}, stdev={self.stdev:.3g}, "
            f"n={self.n})"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Aggregate a sample of measurements.

    Single pass using Welford's online update, which stays accurate
    when the values share a large common offset (a naive one-pass
    sum-of-squares catastrophically cancels there) and visits each
    value exactly once.
    """
    n = 0
    mean = 0.0
    m2 = 0.0
    minimum = math.inf
    maximum = -math.inf
    for value in values:
        value = float(value)
        n += 1
        delta = value - mean
        mean += delta / n
        m2 += delta * (value - mean)
        if value < minimum:
            minimum = value
        if value > maximum:
            maximum = value
    if n == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    if n > 1:
        # Rounding can leave m2 a hair below zero for constant samples.
        stdev = math.sqrt(m2 / (n - 1)) if m2 > 0.0 else 0.0
    else:
        stdev = 0.0
    return Summary(
        mean=mean,
        stdev=stdev,
        minimum=minimum,
        maximum=maximum,
        n=n,
    )


def _run_cell(
    experiment: Callable[..., float], parameter: object, seed: int
) -> float:
    """One (parameter, seed) measurement; module-level so it pickles
    for the worker pool."""
    return experiment(parameter, seed)


def sweep(
    experiment: Callable[..., float],
    parameters: Iterable,
    seeds: Sequence[int],
    workers: int = 1,
) -> Dict[object, Summary]:
    """Run ``experiment(parameter, seed)`` over a grid and summarize.

    Args:
        experiment: function returning one scalar measurement.  Must be
            picklable (module-level) when ``workers > 1``.
        parameters: the swept values (each becomes a result key).
        seeds: seeds to repeat each cell with.
        workers: processes to spread cells over.  Each (parameter,
            seed) cell is an independent simulation seeded from its own
            arguments, so the partitioning cannot affect results: the
            pool map preserves submission order and the output is
            byte-identical to a serial run.

    Returns:
        ``{parameter: Summary}`` in parameter order.
    """
    if not seeds:
        raise ConfigurationError("sweep needs at least one seed")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    parameters = list(parameters)
    if workers == 1:
        samples = [
            experiment(parameter, seed)
            for parameter in parameters
            for seed in seeds
        ]
    else:
        import multiprocessing

        cells = [
            (experiment, parameter, seed)
            for parameter in parameters
            for seed in seeds
        ]
        with multiprocessing.Pool(processes=workers) as pool:
            samples = pool.starmap(_run_cell, cells)
    results: Dict[object, Summary] = {}
    per_parameter = len(seeds)
    for index, parameter in enumerate(parameters):
        start = index * per_parameter
        results[parameter] = summarize(samples[start:start + per_parameter])
    return results


def series(
    sweep_result: Dict[object, Summary]
) -> Tuple[List[object], List[float], List[float]]:
    """Split a sweep result into (x, means, stderrs) for plotting or
    table printing."""
    xs = list(sweep_result)
    means = [sweep_result[x].mean for x in xs]
    errors = [sweep_result[x].stderr for x in xs]
    return xs, means, errors


def dominates(
    left: Dict[object, Summary], right: Dict[object, Summary]
) -> bool:
    """Whether ``left``'s mean is below ``right``'s at every swept
    point (a robust "left wins everywhere" check)."""
    if left.keys() != right.keys():
        raise ConfigurationError("sweeps cover different parameters")
    return all(left[x].mean < right[x].mean for x in left)
