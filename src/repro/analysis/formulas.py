"""Closed-form cost expressions from the paper, one function each.

Naming: ``c`` is always a :class:`~repro.metrics.CostModel`; ``n_mh`` is
N (number of mobile hosts / participants), ``n_mss`` is M (number of
support stations), ``k`` is K (requests satisfied in one ring
traversal), ``g`` is |G| (group size), ``mob`` / ``msg`` are the paper's
MOB (member moves) and MSG (group messages) counts, ``f`` is the
significant fraction of moves, and ``lv_max`` is |LV(G)^max|.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.metrics import CostModel


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ConfigurationError(what)


# ----------------------------------------------------------------------
# Section 3.1.1 -- Lamport's algorithm (L1 / L2)
# ----------------------------------------------------------------------

def l1_execution_cost(n_mh: int, c: CostModel) -> float:
    """Total cost of one L1 execution:
    ``3 * (N-1) * (2*C_wireless + C_search)``."""
    _require(n_mh >= 2, "L1 needs N >= 2")
    return 3 * (n_mh - 1) * (2 * c.c_wireless + c.c_search)


def l1_message_count(n_mh: int) -> int:
    """Messages per L1 execution: ``3 * (N-1)``
    (request, reply and release to/from every other participant)."""
    _require(n_mh >= 2, "L1 needs N >= 2")
    return 3 * (n_mh - 1)


def l1_energy_total(n_mh: int) -> int:
    """Wireless transmissions + receptions per execution across all MHs:
    proportional to ``6 * (N-1)`` (every message costs energy at both
    its MH endpoints)."""
    _require(n_mh >= 2, "L1 needs N >= 2")
    return 6 * (n_mh - 1)


def l1_energy_initiator(n_mh: int) -> int:
    """Energy at the initiating MH: proportional to ``3 * (N-1)``
    (sends N-1 requests and N-1 releases, receives N-1 replies)."""
    _require(n_mh >= 2, "L1 needs N >= 2")
    return 3 * (n_mh - 1)


def l1_energy_non_initiator() -> int:
    """Energy at each other MH: 3 (receive request and release, send
    one reply)."""
    return 3


def l1_search_count(n_mh: int) -> int:
    """Searches per L1 execution: one per message, ``3 * (N-1)`` --
    the O(N) search overhead the paper criticizes."""
    return l1_message_count(n_mh)


def l2_execution_cost(n_mss: int, c: CostModel) -> float:
    """Total cost of one L2 execution:
    ``3*C_wireless + C_fixed + C_search + 3*(M-1)*C_fixed``
    (init; Lamport's request/reply/release among the MSSs; grant after a
    search; release_resource relayed over one fixed hop)."""
    _require(n_mss >= 2, "L2 needs M >= 2")
    return (
        3 * c.c_wireless
        + c.c_fixed
        + c.c_search
        + 3 * (n_mss - 1) * c.c_fixed
    )


def l2_wireless_message_count() -> int:
    """Wireless messages per L2 execution: exactly 3
    (init, grant_request, release_resource)."""
    return 3


def l2_fixed_message_count(n_mss: int) -> int:
    """Fixed messages per L2 execution: ``3*(M-1)`` Lamport messages
    plus 1 relayed release_resource."""
    _require(n_mss >= 2, "L2 needs M >= 2")
    return 3 * (n_mss - 1) + 1


def l2_search_count() -> int:
    """Searches per L2 execution: exactly 1 (locating the grantee) --
    the constant search cost the paper contrasts with L1's O(N)."""
    return 1


def l2_energy_per_request() -> int:
    """Energy at the requesting MH: 3 wireless messages; all other MHs
    spend nothing."""
    return 3


# ----------------------------------------------------------------------
# Section 3.1.2 -- token ring (R1 / R2 / R2')
# ----------------------------------------------------------------------

def r1_traversal_cost(n_mh: int, c: CostModel) -> float:
    """Cost for the token to traverse the MH ring once:
    ``N * (2*C_wireless + C_search)`` -- independent of K."""
    _require(n_mh >= 2, "R1 needs N >= 2")
    return n_mh * (2 * c.c_wireless + c.c_search)


def r1_search_count(n_mh: int) -> int:
    """Searches per R1 traversal: N (one per hop)."""
    _require(n_mh >= 2, "R1 needs N >= 2")
    return n_mh


def r1_energy_per_traversal(n_mh: int) -> int:
    """Energy per traversal: every MH receives and forwards the token,
    ``2 * N`` wireless events."""
    _require(n_mh >= 2, "R1 needs N >= 2")
    return 2 * n_mh


def r2_request_cost(c: CostModel) -> float:
    """Cost of satisfying one request in R2:
    ``3*C_wireless + C_fixed + C_search``
    (request uplink; token to the MH after a search; token returned via
    the MH's local MSS and one fixed hop)."""
    return 3 * c.c_wireless + c.c_fixed + c.c_search


def r2_traversal_cost(k: int, n_mss: int, c: CostModel) -> float:
    """Cost of satisfying K requests in one traversal of the MSS ring:
    ``K*(3*C_wireless + C_fixed + C_search) + M*C_fixed``."""
    _require(k >= 0, "K must be nonnegative")
    _require(n_mss >= 2, "R2 needs M >= 2")
    return k * r2_request_cost(c) + n_mss * c.c_fixed


def r2_max_requests_per_traversal(n_mh: int, n_mss: int) -> int:
    """Upper bound on K for plain R2: ``N * M`` (a MH can move ahead of
    the token and be served once per MSS)."""
    return n_mh * n_mss


def r2_prime_max_requests_per_traversal(n_mh: int) -> int:
    """Upper bound on K for R2': ``N`` (at most one access per MH)."""
    return n_mh


def r2_energy_per_request() -> int:
    """Energy at a requesting MH: 3 wireless accesses (send the
    request, receive the token, return it).  Non-requesting MHs spend
    nothing -- R1's key drawback removed."""
    return 3


# ----------------------------------------------------------------------
# Section 4 -- group location management
# ----------------------------------------------------------------------

def pure_search_message_cost(g: int, c: CostModel) -> float:
    """Pure search: one group message costs
    ``(|G|-1) * (2*C_wireless + C_search)``; independent of MOB."""
    _require(g >= 1, "|G| must be >= 1")
    return (g - 1) * (2 * c.c_wireless + c.c_search)


def pure_search_total_cost(g: int, msg: int, c: CostModel) -> float:
    """Pure search total over MSG group messages."""
    _require(msg >= 0, "MSG must be nonnegative")
    return msg * pure_search_message_cost(g, c)


def always_inform_message_cost(g: int, c: CostModel) -> float:
    """Always inform: one group message (or one location update) costs
    ``(|G|-1) * (2*C_wireless + C_fixed)`` -- the location directory
    replaces the search with a fixed hop."""
    _require(g >= 1, "|G| must be >= 1")
    return (g - 1) * (2 * c.c_wireless + c.c_fixed)


def always_inform_total_cost(
    g: int, mob: int, msg: int, c: CostModel
) -> float:
    """Always inform total:
    ``(MOB + MSG) * (|G|-1) * (2*C_wireless + C_fixed)``."""
    _require(mob >= 0 and msg >= 0, "MOB and MSG must be nonnegative")
    return (mob + msg) * always_inform_message_cost(g, c)


def always_inform_effective_cost(
    g: int, mob_to_msg_ratio: float, c: CostModel
) -> float:
    """Effective cost per group message:
    ``(MOB/MSG + 1) * (|G|-1) * (2*C_wireless + C_fixed)``."""
    _require(mob_to_msg_ratio >= 0, "ratio must be nonnegative")
    return (mob_to_msg_ratio + 1) * always_inform_message_cost(g, c)


def location_view_message_cost(lv: int, g: int, c: CostModel) -> float:
    """Location view: one group message costs
    ``(|LV(G)|-1) * C_fixed + |G| * C_wireless``
    (uplink from the sender, fan-out to the view, downlink to the
    other members)."""
    _require(lv >= 1, "|LV| must be >= 1")
    _require(g >= lv, "|G| >= |LV| (each view cell hosts >= 1 member)")
    return (lv - 1) * c.c_fixed + g * c.c_wireless


def location_view_update_cost_bound(lv: int, c: CostModel) -> float:
    """Cost of updating LV(G) after a significant move: at most
    ``(|LV(G)| + 3) * C_fixed`` (the 3 extras: new MSS -> previous MSS,
    previous MSS -> coordinator, coordinator -> new MSS)."""
    _require(lv >= 0, "|LV| must be nonnegative")
    return (lv + 3) * c.c_fixed


def location_view_total_cost_bound(
    lv_max: int, g: int, f: float, mob: int, msg: int, c: CostModel
) -> float:
    """Location view total cost, upper bound:
    ``(f*MOB + MSG) * |LV^max| * C_fixed
    + (3*f*MOB - MSG) * C_fixed + |G| * MSG * C_wireless``."""
    _require(0.0 <= f <= 1.0, "f must be a fraction")
    _require(mob >= 0 and msg >= 0, "MOB and MSG must be nonnegative")
    significant = f * mob
    return (
        (significant + msg) * lv_max * c.c_fixed
        + (3 * significant - msg) * c.c_fixed
        + g * msg * c.c_wireless
    )


def location_view_effective_cost_bound(
    lv_max: int, g: int, f: float, mob_to_msg_ratio: float, c: CostModel
) -> float:
    """Effective cost per group message, upper bound:
    ``((f*ratio + 1) * |LV^max| + 3*f*ratio - 1) * C_fixed
    + |G| * C_wireless`` -- depends only on the *significant* fraction
    of the mobility-to-message ratio."""
    _require(0.0 <= f <= 1.0, "f must be a fraction")
    _require(mob_to_msg_ratio >= 0, "ratio must be nonnegative")
    fr = f * mob_to_msg_ratio
    return (
        ((fr + 1) * lv_max + 3 * fr - 1) * c.c_fixed
        + g * c.c_wireless
    )
