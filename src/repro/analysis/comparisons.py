"""Crossover conditions behind the paper's qualitative comparisons.

Each function isolates one "who wins, and when" claim so benchmarks and
tests can assert the claim both analytically and against measured
simulator counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis import formulas
from repro.metrics import CostModel


@dataclass(frozen=True)
class Comparison:
    """A predicted head-to-head between two strategies."""

    left_name: str
    right_name: str
    left_cost: float
    right_cost: float

    @property
    def winner(self) -> str:
        if self.left_cost == self.right_cost:
            return "tie"
        return (
            self.left_name
            if self.left_cost < self.right_cost
            else self.right_name
        )

    @property
    def factor(self) -> float:
        """How many times cheaper the winner is."""
        lo = min(self.left_cost, self.right_cost)
        hi = max(self.left_cost, self.right_cost)
        return float("inf") if lo == 0 else hi / lo


def l1_vs_l2(n_mh: int, n_mss: int, c: CostModel) -> Comparison:
    """L1 against L2 for one mutual exclusion execution.

    The paper: since ``C_search > C_fixed`` and N >= M, the overall
    cost is lower for L2 than L1 (L1's search overhead is proportional
    to N while L2's is constant).
    """
    return Comparison(
        "L1",
        "L2",
        formulas.l1_execution_cost(n_mh, c),
        formulas.l2_execution_cost(n_mss, c),
    )


def r1_vs_r2(n_mh: int, n_mss: int, k: int, c: CostModel) -> Comparison:
    """R1 against R2 for one ring traversal satisfying K requests.

    R1's cost is fixed at ``N*(2*C_wireless+C_search)`` regardless of K;
    R2 pays per satisfied request plus the fixed circulation cost, so R2
    wins whenever requests are sparse relative to the population.
    """
    return Comparison(
        "R1",
        "R2",
        formulas.r1_traversal_cost(n_mh, c),
        formulas.r2_traversal_cost(k, n_mss, c),
    )


def r1_r2_crossover_k(n_mh: int, n_mss: int, c: CostModel) -> float:
    """The K at which R2's traversal cost equals R1's.

    For K below this threshold R2 is cheaper; the paper's claim that R2
    wins for sparse request patterns is this inequality.
    """
    numerator = formulas.r1_traversal_cost(n_mh, c) - n_mss * c.c_fixed
    return numerator / formulas.r2_request_cost(c)


def group_strategy_costs(
    g: int,
    lv_max: int,
    f: float,
    mob_to_msg_ratio: float,
    c: CostModel,
) -> Dict[str, float]:
    """Effective per-message cost of the three location strategies."""
    return {
        "pure_search": formulas.pure_search_message_cost(g, c),
        "always_inform": formulas.always_inform_effective_cost(
            g, mob_to_msg_ratio, c
        ),
        "location_view": formulas.location_view_effective_cost_bound(
            lv_max, g, f, mob_to_msg_ratio, c
        ),
    }


def always_inform_vs_pure_search_ratio(c: CostModel) -> float:
    """The mobility-to-message ratio below which always-inform beats
    pure search.

    Setting ``(ratio+1)*(2*C_w + C_f) < (2*C_w + C_s)`` gives
    ``ratio < (C_search - C_fixed) / (2*C_wireless + C_fixed)``.
    """
    return (c.c_search - c.c_fixed) / (2 * c.c_wireless + c.c_fixed)


def static_network_message_factor(g: int, lv: int) -> float:
    """Ratio of static-network messages per group message:
    |G|-proportional for pure-search/always-inform versus
    |LV|-proportional for location view."""
    if lv <= 0:
        raise ZeroDivisionError("|LV| must be positive")
    return g / lv
