"""The proxy manager: the mobility layer of the two-layer structure.

One layer executes a distributed algorithm over the static proxies; the
other -- this manager plus its policy -- handles all interaction between
a proxy and the MHs "under" it: uplink relaying, downlink delivery, and
location bookkeeping.  Algorithms built on the manager (messenger,
proxied mutex) contain no mobility handling of their own, which is
precisely the decoupling Section 5 advocates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import ConfigurationError
from repro.net.messages import Message
from repro.proxy.policy import ProxyPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

UplinkHandler = Callable[[str, str, object], None]


class ProxyManager:
    """Routes messages between MHs and their proxies.

    Args:
        network: the simulated system.
        policy: the scope policy (fixed or local proxies).
        mh_ids: the MHs managed by this proxy association.
        scope: metrics scope for all proxy-layer traffic.
    """

    def __init__(
        self,
        network: "Network",
        policy: ProxyPolicy,
        mh_ids: List[str],
        scope: str = "proxy",
    ) -> None:
        if not mh_ids:
            raise ConfigurationError("proxy manager needs at least one MH")
        self.network = network
        self.policy = policy
        self.mh_ids = list(mh_ids)
        self.scope = scope
        self.kind_uplink = f"{scope}.uplink"
        self.kind_relay = f"{scope}.relay"
        self.kind_inform = f"{scope}.inform"
        self.stale_deliveries = 0
        #: proxy-side uplink consumers: kind -> handler(mh_id, proxy, payload)
        self._uplink_handlers: dict = {}
        for mss_id in network.mss_ids():
            mss = network.mss(mss_id)
            mss.register_handler(self.kind_uplink, self._on_uplink)
            mss.register_handler(self.kind_relay, self._on_relay)
            mss.register_handler(self.kind_inform, self._on_inform)
        policy.wire(self)
        if network.faults is not None:
            network.faults.add_mh_crash_listener(self._on_mh_crash)

    def _on_mh_crash(self, mh_id: str) -> None:
        if mh_id in self.mh_ids:
            self.policy.on_mh_crashed(mh_id)

    # ------------------------------------------------------------------
    # MH -> proxy
    # ------------------------------------------------------------------

    def register_uplink_handler(
        self, kind: str, handler: UplinkHandler
    ) -> None:
        """Register a proxy-side consumer for uplinked ``kind``."""
        if kind in self._uplink_handlers:
            raise ConfigurationError(
                f"uplink handler for {kind!r} already registered"
            )
        self._uplink_handlers[kind] = handler

    def uplink(self, mh_id: str, kind: str, payload: object) -> None:
        """Send ``payload`` from a MH to its proxy.

        One wireless hop to the current MSS; if the proxy is a different
        MSS (fixed policy after a move), one more fixed hop.
        """
        mh = self.network.mobile_host(mh_id)
        mh.send_to_mss(
            self.kind_uplink, (mh_id, kind, payload), self.scope
        )

    def _on_uplink(self, message: Message) -> None:
        mh_id, kind, payload = message.payload
        current_mss_id = message.dst
        proxy = self.policy.proxy_for_uplink(mh_id, current_mss_id)
        if proxy == current_mss_id:
            self._dispatch_uplink(mh_id, proxy, kind, payload)
        else:
            self.network.mss(current_mss_id).send_fixed(
                proxy, self.kind_relay, (mh_id, kind, payload), self.scope
            )

    def _on_relay(self, message: Message) -> None:
        mh_id, kind, payload = message.payload
        self._dispatch_uplink(mh_id, message.dst, kind, payload)

    def _dispatch_uplink(
        self, mh_id: str, proxy: str, kind: str, payload: object
    ) -> None:
        handler = self._uplink_handlers.get(kind)
        if handler is None:
            raise ConfigurationError(
                f"no uplink handler registered for {kind!r}"
            )
        handler(mh_id, proxy, payload)

    # ------------------------------------------------------------------
    # Proxy -> MH
    # ------------------------------------------------------------------

    def deliver(
        self,
        src_mss_id: str,
        mh_id: str,
        kind: str,
        payload: object,
        on_missed: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Deliver ``payload`` from a proxy to a MH (policy-routed)."""
        self.policy.deliver(
            self, src_mss_id, mh_id, kind, payload, on_missed
        )

    def _on_inform(self, message: Message) -> None:
        mh_id, mss_id, session = message.payload
        on_inform = getattr(self.policy, "on_inform", None)
        if on_inform is not None:
            on_inform(mh_id, mss_id, session)

    # ------------------------------------------------------------------

    def proxies(self) -> List[str]:
        """The distinct proxies currently backing the managed MHs."""
        return sorted({self.policy.proxy_of(m) for m in self.mh_ids})
