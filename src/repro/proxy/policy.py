"""Proxy scope policies: who is a MH's proxy, and what it knows.

The policy axis of the paper's Section 5 proxy framework.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.proxy.manager import ProxyManager


class LocationRegister:
    """A proxy's session-versioned view of where its MHs are.

    Location informs from different cells travel over different FIFO
    channels and can arrive out of order; applying them blindly can
    leave the register *permanently* stale.  Each inform therefore
    carries the MH's session number (incremented on every attachment,
    and carried by the join message in a real deployment), and the
    register only moves forward.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, tuple] = {}

    def update(self, mh_id: str, mss_id: str, session: int) -> bool:
        """Apply an inform; returns False if it was stale."""
        current = self._entries.get(mh_id)
        if current is not None and session < current[0]:
            return False
        self._entries[mh_id] = (session, mss_id)
        return True

    def purge(self, mh_id: str, session: int) -> None:
        """Tombstone the entry for a crashed MH.

        The location is dropped (it points at a cell the host silently
        vanished from) but the session floor is kept, so in-flight
        informs from *before* the crash cannot resurrect the stale
        location; the post-recovery join carries a higher session and
        repopulates the register normally.
        """
        self._entries[mh_id] = (session, None)

    def get(self, mh_id: str, default: Optional[str] = None):
        entry = self._entries.get(mh_id)
        if entry is None or entry[1] is None:
            return default
        return entry[1]

    def __getitem__(self, mh_id: str) -> str:
        mss_id = self._entries[mh_id][1]
        if mss_id is None:
            raise KeyError(mh_id)
        return mss_id

    def __contains__(self, mh_id: str) -> bool:
        entry = self._entries.get(mh_id)
        return entry is not None and entry[1] is not None


class ProxyPolicy:
    """Interface for proxy scope policies."""

    def wire(self, manager: "ProxyManager") -> None:
        """Attach policy machinery (location registers, hooks)."""

    def proxy_of(self, mh_id: str) -> str:
        """The MSS currently acting as ``mh_id``'s proxy.

        For a fixed policy this is static knowledge any participant may
        use; for a local policy the answer is only known at the MH's
        current cell (other hosts must search).
        """
        raise NotImplementedError

    def proxy_for_uplink(self, mh_id: str, receiving_mss_id: str) -> str:
        """The proxy responsible for an uplink that landed at
        ``receiving_mss_id``.

        For a local policy that *is* the receiving MSS (it was the MH's
        local MSS at send time, even if the MH has since moved on); for
        a fixed policy it is the static assignment.
        """
        return self.proxy_of(mh_id)

    def deliver(
        self,
        manager: "ProxyManager",
        src_mss_id: str,
        mh_id: str,
        kind: str,
        payload: object,
        on_missed: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Route a message from a proxy to the MH itself."""
        raise NotImplementedError

    def on_mh_crashed(self, mh_id: str) -> None:
        """Hook invoked when a managed MH crashes (fault injection).

        Policies that keep location registers override this to purge
        the crashed host's entry; the default is a no-op.
        """


class LocalProxyPolicy(ProxyPolicy):
    """Scope: a MH's proxy is always its current local MSS.

    The association of algorithms L2 and R2.  No inform traffic on
    moves; delivering to a MH from elsewhere costs a search.
    """

    def __init__(self) -> None:
        self._manager: Optional["ProxyManager"] = None

    def wire(self, manager: "ProxyManager") -> None:
        self._manager = manager

    def proxy_of(self, mh_id: str) -> str:
        network = self._manager.network
        mh = network.mobile_host(mh_id)
        if mh.current_mss_id is None:
            raise ConfigurationError(
                f"{mh_id} has no local proxy while {mh.state.value}"
            )
        return mh.current_mss_id

    def proxy_for_uplink(self, mh_id: str, receiving_mss_id: str) -> str:
        # The uplink's receiver was the MH's local MSS at send time --
        # it acts as the proxy even if the MH has since started moving.
        return receiving_mss_id

    def deliver(
        self,
        manager: "ProxyManager",
        src_mss_id: str,
        mh_id: str,
        kind: str,
        payload: object,
        on_missed: Optional[Callable[[str], None]] = None,
    ) -> None:
        # Nobody tracks the MH: locate it with a search, then one
        # wireless hop (retrying across moves, as the network does).
        from repro.net.messages import Message

        manager.network.send_to_mh(
            src_mss_id,
            mh_id,
            Message(
                kind=kind,
                src=src_mss_id,
                dst=mh_id,
                payload=payload,
                scope=manager.scope,
            ),
            on_disconnected=(
                (lambda outcome: on_missed(mh_id)) if on_missed else None
            ),
        )


class FixedProxyPolicy(ProxyPolicy):
    """Scope: one proxy MSS per MH, fixed for the MH's lifetime.

    Obligation: the proxy is informed about its MH's location on every
    move (one fixed message from the new cell's MSS), so it can always
    reach the MH without a search -- total separation of mobility from
    the algorithm, at the price of per-move inform traffic.
    """

    def __init__(
        self, assignment: Optional[Dict[str, str]] = None
    ) -> None:
        #: mh_id -> proxy MSS; filled from initial locations if not
        #: given explicitly.
        self.assignment: Dict[str, str] = dict(assignment or {})
        #: the proxy's session-versioned location register.
        self.location_register = LocationRegister()
        self.inform_messages = 0

    def wire(self, manager: "ProxyManager") -> None:
        self._manager = manager
        network = manager.network
        for mh_id in manager.mh_ids:
            mh = network.mobile_host(mh_id)
            if mh_id not in self.assignment:
                if mh.current_mss_id is None:
                    raise ConfigurationError(
                        f"{mh_id} must be connected or explicitly "
                        f"assigned a proxy"
                    )
                self.assignment[mh_id] = mh.current_mss_id
            self.location_register.update(
                mh_id, mh.current_mss_id, mh.session
            )
        # Every join anywhere updates the mover's proxy.
        for mss_id in network.mss_ids():
            network.mss(mss_id).add_join_listener(
                lambda mh_id, prev, m=mss_id: self._on_join(m, mh_id)
            )

    def proxy_of(self, mh_id: str) -> str:
        try:
            return self.assignment[mh_id]
        except KeyError:
            raise ConfigurationError(
                f"{mh_id} has no assigned proxy"
            ) from None

    def _on_join(self, mss_id: str, mh_id: str) -> None:
        if mh_id not in self.assignment:
            return
        proxy = self.assignment[mh_id]
        manager = self._manager
        session = manager.network.mobile_host(mh_id).session
        if mss_id == proxy:
            self.location_register.update(mh_id, mss_id, session)
            return
        # Inform the proxy of the new location (one fixed message,
        # carrying the MH's session so stale informs cannot regress
        # the register).
        self.inform_messages += 1
        manager.network.mss(mss_id).send_fixed(
            proxy,
            manager.kind_inform,
            (mh_id, mss_id, session),
            manager.scope,
        )

    def on_inform(self, mh_id: str, mss_id: str, session: int) -> None:
        """Proxy-side handler: update the location register."""
        self.location_register.update(mh_id, mss_id, session)

    def on_mh_crashed(self, mh_id: str) -> None:
        if mh_id not in self.assignment:
            return
        session = self._manager.network.mobile_host(mh_id).session
        self.location_register.purge(mh_id, session)

    def deliver(
        self,
        manager: "ProxyManager",
        src_mss_id: str,
        mh_id: str,
        kind: str,
        payload: object,
        on_missed: Optional[Callable[[str], None]] = None,
    ) -> None:
        """One fixed hop to the registered MSS plus one wireless hop.

        No search is ever performed: if the register is momentarily
        stale (a move's inform is still in flight) or the wireless hop
        is lost to a departure, the proxy simply re-reads its register
        -- which the mover's new MSS is about to refresh -- and retries.
        A destination that disconnected resolves to ``on_missed``.
        """
        network = manager.network

        def retry() -> None:
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self.deliver,
                manager,
                src_mss_id,
                mh_id,
                kind,
                payload,
                on_missed,
            )

        def attempt(at_mss_id: str) -> None:
            mss = network.mss(at_mss_id)
            if mss.is_local(mh_id):
                network.send_wireless_down(
                    at_mss_id,
                    mh_id,
                    _proxy_message(
                        kind, at_mss_id, mh_id, payload, manager.scope
                    ),
                    on_lost=lambda message: retry(),
                )
            elif (
                mh_id in mss.disconnected_mhs
                or network.is_mh_crashed(mh_id)
            ):
                # Disconnected here -- or crashed anywhere: a crashed
                # host's vanish flag lives in whichever cell noticed
                # the silence, which need not be the believed one, so
                # without the explicit check the retry loop would spin
                # until the host recovers.
                if on_missed is not None:
                    on_missed(mh_id)
            else:
                # Stale register: the inform from the MH's new cell is
                # still in flight; re-read and retry shortly.
                manager.stale_deliveries += 1
                retry()

        believed = self.location_register.get(mh_id, src_mss_id)
        if believed == src_mss_id:
            attempt(src_mss_id)
        else:
            # The proxy -> current-MSS hop is one fixed message.
            network.metrics.record_fixed(manager.scope)
            network.scheduler.schedule(
                network.config.fixed_latency(network.rng),
                attempt,
                believed,
            )


def _proxy_message(kind, src, dst, payload, scope):
    from repro.net.messages import Message

    return Message(kind=kind, src=src, dst=dst, payload=payload,
                   scope=scope)


# register of forward handling lives in the manager (it owns handlers).
ProxyPolicies = List[ProxyPolicy]
