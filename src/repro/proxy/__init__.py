"""The proxy framework (Section 5; S19).

The paper's final contribution: decouple host mobility from algorithm
design by associating each MH with a *proxy* MSS.  A proxy association
is characterized by two parameters:

* **scope** -- which MHs associate with which proxy.
  :class:`LocalProxyPolicy` binds each MH to its current local MSS (the
  association of L2 and R2); :class:`FixedProxyPolicy` binds each MH to
  one MSS for its lifetime (total separation of mobility from the
  algorithm -- at the price of informing the proxy of every move).
* **obligations** -- what the proxy does when its MH moves away in the
  middle of a computation the MH initiated there (e.g. L2's proxy is
  obligated to search for the MH when its grant comes up).

Two demonstrations are built on the framework:

* :class:`ProxiedMessenger` -- point-to-point MH-to-MH messaging routed
  through proxies.  With fixed proxies, messages never search (the
  destination's proxy always knows its location) but every move costs
  inform traffic; with local proxies, moves are free but every message
  pays a search.  This reproduces the search/inform trade-off of
  Section 4 at the proxy level (benchmark E11).
* :class:`ProxiedMutex` -- Lamport's *static-host* mutual exclusion run
  unchanged at the proxies of the participating MHs, showing that a
  distributed algorithm for static hosts extends to mobile participants
  purely by choosing a proxy policy.
"""

from repro.proxy.adaptive import AdaptiveProxyPolicy
from repro.proxy.policy import (
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxyPolicy,
)
from repro.proxy.manager import ProxyManager
from repro.proxy.messenger import ProxiedMessenger
from repro.proxy.mutex import ProxiedMutex

__all__ = [
    "AdaptiveProxyPolicy",
    "FixedProxyPolicy",
    "LocalProxyPolicy",
    "ProxiedMessenger",
    "ProxiedMutex",
    "ProxyManager",
    "ProxyPolicy",
]
