"""Proxied MH-to-MH messaging: the search/inform trade-off, per proxy.

A sender MH uplinks a letter to its proxy; the proxy routes it to the
destination MH through the destination's proxy association:

* **fixed proxies** -- the destination's proxy is static knowledge, so
  the letter goes sender-proxy -> destination-proxy (fixed hop) and the
  destination proxy, whose location register is kept fresh by per-move
  inform traffic, forwards it without any search;
* **local proxies** -- nobody tracks the destination, so its current
  proxy must be found with a search.

Benchmark E11 sweeps the move-to-message ratio across both policies:
fixed proxies win when hosts message more than they move, local proxies
when they move more than they message -- Section 5's observation that a
fixed association "may be infeasible" for frequently moving hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.proxy.manager import ProxyManager


@dataclass(frozen=True)
class Letter:
    """One point-to-point payload between two MHs."""

    src_mh_id: str
    dst_mh_id: str
    payload: object


class ProxiedMessenger:
    """Point-to-point MH messaging on top of a proxy association."""

    def __init__(self, manager: ProxyManager) -> None:
        self.manager = manager
        self.kind_send = "messenger.send"
        self.kind_to_dst_proxy = f"{manager.scope}.letter"
        self.kind_deliver = f"{manager.scope}.letter_deliver"
        #: (time, recipient, payload) per delivered letter.
        self.delivered: List[Tuple[float, str, object]] = []
        self.missed: List[str] = []
        manager.register_uplink_handler(self.kind_send, self._at_src_proxy)
        network = manager.network
        for mss_id in network.mss_ids():
            network.mss(mss_id).register_handler(
                self.kind_to_dst_proxy, self._at_dst_proxy
            )
        for mh_id in manager.mh_ids:
            network.mobile_host(mh_id).register_handler(
                self.kind_deliver, self._at_dst_mh
            )

    # ------------------------------------------------------------------

    def send(self, src_mh_id: str, dst_mh_id: str, payload: object) -> None:
        """Send ``payload`` from one managed MH to another."""
        if dst_mh_id not in self.manager.mh_ids:
            raise ConfigurationError(
                f"{dst_mh_id} is not managed by this messenger"
            )
        self.manager.uplink(
            src_mh_id, self.kind_send, Letter(src_mh_id, dst_mh_id, payload)
        )

    def deliveries_of(self, payload: object) -> List[str]:
        """Recipients that received ``payload`` (for tests)."""
        return [mh for (_, mh, p) in self.delivered if p == payload]

    # ------------------------------------------------------------------

    def _at_src_proxy(self, mh_id: str, proxy: str, letter: Letter) -> None:
        # Policies with a static assignment (fixed, adaptive) expose the
        # destination's *home* proxy as universally known rendezvous
        # knowledge: one fixed hop there, and the home proxy completes
        # the delivery (register if tracked, search otherwise).  Under
        # a purely local policy nobody is a rendezvous: the sender's
        # proxy searches directly.
        assignment = getattr(self.manager.policy, "assignment", None)
        dst_home = (
            assignment.get(letter.dst_mh_id)
            if assignment is not None else None
        )
        if dst_home is None or dst_home == proxy:
            self._deliver_from_proxy(proxy, letter)
        else:
            self.manager.network.mss(proxy).send_fixed(
                dst_home,
                self.kind_to_dst_proxy,
                letter,
                self.manager.scope,
            )

    def _at_dst_proxy(self, message) -> None:
        self._deliver_from_proxy(message.dst, message.payload)

    def _deliver_from_proxy(self, proxy_mss_id: str, letter: Letter) -> None:
        self.manager.deliver(
            proxy_mss_id,
            letter.dst_mh_id,
            self.kind_deliver,
            letter,
            on_missed=self.missed.append,
        )

    def _at_dst_mh(self, message) -> None:
        letter: Letter = message.payload
        self.delivered.append(
            (
                self.manager.network.scheduler.now,
                letter.dst_mh_id,
                letter.payload,
            )
        )
