"""A static-host algorithm extended to MHs purely through proxies.

Section 5's recipe: "the distributed algorithm can be extended to the
mobile environment by executing the algorithm at the proxies of the
participating mobile hosts".  Here the unchanged Lamport substrate
(:class:`~repro.mutex.lamport_core.LamportMutexNode`) runs at the
proxies; the :class:`~repro.proxy.manager.ProxyManager` is the entire
mobility layer.  With :class:`LocalProxyPolicy` this reconstructs
algorithm L2; with :class:`FixedProxyPolicy` it yields an L2 variant
whose grants never need a search (the fixed proxy always knows its MH's
location) at the price of per-move inform traffic -- the same algorithm
code either way, which is the point of the framework.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.mutex.lamport_core import LamportMutexNode, MutexTransport
from repro.mutex.resource import CriticalResource
from repro.proxy.manager import ProxyManager


class _ProxyTransport(MutexTransport):
    """Transport between the proxies hosting Lamport nodes."""

    def __init__(self, mutex: "ProxiedMutex", mss_id: str) -> None:
        self._mutex = mutex
        self._mss_id = mss_id

    def peers(self) -> List[str]:
        return [p for p in self._mutex.proxy_ids if p != self._mss_id]

    def send(self, dst: str, kind: str, payload: object) -> None:
        self._mutex.manager.network.mss(self._mss_id).send_fixed(
            dst, kind, payload, self._mutex.scope
        )


class ProxiedMutex:
    """Lamport mutual exclusion executed at the proxies of mobile hosts.

    The participating proxies are the *distinct proxies of the managed
    MHs at construction time* (for the fixed policy they never change;
    for the local policy this class is a teaching construction --
    algorithm L2 is its production form).
    """

    def __init__(
        self,
        manager: ProxyManager,
        resource: CriticalResource,
        cs_duration: float = 1.0,
        scope: str = "proxied-mutex",
        on_complete: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.manager = manager
        self.resource = resource
        self.cs_duration = cs_duration
        self.scope = scope
        self.on_complete = on_complete
        self.proxy_ids = manager.proxies()
        if len(self.proxy_ids) < 2:
            raise ConfigurationError(
                "proxied mutex needs participants on >= 2 proxies"
            )
        self.completed: List[Tuple[float, str]] = []
        self._nodes: Dict[str, LamportMutexNode] = {}
        network = manager.network
        for mss_id in self.proxy_ids:
            node = LamportMutexNode(
                node_id=mss_id,
                transport=_ProxyTransport(self, mss_id),
                kind_prefix=scope,
                on_granted=lambda tag, m=mss_id: self._on_granted(m, tag),
            )
            self._nodes[mss_id] = node
            mss = network.mss(mss_id)
            mss.register_handler(
                f"{scope}.request",
                lambda msg, n=node: n.on_request(msg.payload),
            )
            mss.register_handler(
                f"{scope}.reply",
                lambda msg, n=node: n.on_reply(msg.payload),
            )
            mss.register_handler(
                f"{scope}.release",
                lambda msg, n=node: n.on_release(msg.payload),
            )
        manager.register_uplink_handler(
            f"{scope}.init", self._on_init
        )
        manager.register_uplink_handler(
            f"{scope}.done", self._on_done
        )
        # A done may be uplinked at any MSS (the MH moved): every MSS
        # can forward it to the granting proxy.
        for mss_id in network.mss_ids():
            network.mss(mss_id).register_handler(
                f"{scope}.done_fwd",
                lambda msg: self._finish(msg.dst, msg.payload),
            )
        for mh_id in manager.mh_ids:
            network.mobile_host(mh_id).register_handler(
                f"{scope}.grant", self._on_grant
            )

    # ------------------------------------------------------------------

    def request(self, mh_id: str) -> None:
        """Have ``mh_id`` request the region via its proxy."""
        self.manager.uplink(mh_id, f"{self.scope}.init", None)

    def node(self, mss_id: str) -> LamportMutexNode:
        """The Lamport node at proxy ``mss_id`` (for tests)."""
        return self._nodes[mss_id]

    # ------------------------------------------------------------------

    def _on_init(self, mh_id: str, proxy: str, payload: object) -> None:
        if proxy not in self._nodes:
            raise ConfigurationError(
                f"{proxy} is not a participating proxy"
            )
        self._nodes[proxy].request(tag=mh_id)

    def _on_granted(self, proxy: str, mh_id: str) -> None:
        # Obligation: reach the MH wherever it is now.
        self.manager.deliver(
            proxy, mh_id, f"{self.scope}.grant", (mh_id, proxy)
        )

    def _on_grant(self, message) -> None:
        mh_id, proxy = message.payload
        self.resource.enter(mh_id, info={"algorithm": self.scope})
        self.manager.network.scheduler.schedule(
            self.cs_duration, self._exit_region, mh_id, proxy
        )

    def _exit_region(self, mh_id: str, proxy: str) -> None:
        self.resource.leave(mh_id)
        self.manager.uplink(mh_id, f"{self.scope}.done", proxy)

    def _on_done(self, mh_id: str, current_proxy: str,
                 granting_proxy: str) -> None:
        # The done uplink lands at the MH's *current* proxy; route the
        # release to the proxy that holds the Lamport request.
        if current_proxy == granting_proxy:
            self._finish(granting_proxy, mh_id)
        else:
            self.manager.network.mss(current_proxy).send_fixed(
                granting_proxy,
                f"{self.scope}.done_fwd",
                mh_id,
                self.scope,
            )

    def _finish(self, proxy: str, mh_id: str) -> None:
        self._nodes[proxy].release(tag=mh_id)
        self.completed.append(
            (self.manager.network.scheduler.now, mh_id)
        )
        if self.on_complete is not None:
            self.on_complete(mh_id)
