"""Adaptive proxy scope: the paper's "less static solutions".

Section 5 closes with: a totally fixed association "is not always a
desirable solution because a proxy has to be informed of every move
... thus, we need to look for less static solutions in which the
association between the MHs and proxies change, depending on the
mobility of hosts."

:class:`AdaptiveProxyPolicy` implements exactly that: each MH starts
*fixed* (its home MSS tracks it), but the home proxy demotes a MH to
*local* mode once it observes too many moves without any delivery
(stop paying informs, pay a search per use instead), and promotes it
back to fixed mode once deliveries dominate again (one catch-up inform
refreshes the register).  The switch thresholds express the
move-to-use ratio at which the E11 curves cross.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.proxy.policy import (
    LocationRegister,
    ProxyPolicy,
    _proxy_message,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.proxy.manager import ProxyManager


class AdaptiveProxyPolicy(ProxyPolicy):
    """Per-MH switching between fixed and local proxy association.

    Args:
        demote_after_moves: consecutive moves without a delivery after
            which a MH's tracking is dropped (fixed -> local).
        promote_after_uses: consecutive deliveries without a move after
            which tracking resumes (local -> fixed; costs one catch-up
            inform).
    """

    def __init__(
        self,
        demote_after_moves: int = 3,
        promote_after_uses: int = 3,
    ) -> None:
        if demote_after_moves < 1 or promote_after_uses < 1:
            raise ConfigurationError("switch thresholds must be >= 1")
        self.demote_after_moves = demote_after_moves
        self.promote_after_uses = promote_after_uses
        self.assignment: Dict[str, str] = {}
        self.location_register = LocationRegister()
        #: per-MH mode: True = fixed (tracked), False = local.
        self.tracked: Dict[str, bool] = {}
        self._moves_streak: Dict[str, int] = {}
        self._uses_streak: Dict[str, int] = {}
        self.inform_messages = 0
        self.demotions = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def wire(self, manager: "ProxyManager") -> None:
        self._manager = manager
        network = manager.network
        for mh_id in manager.mh_ids:
            mh = network.mobile_host(mh_id)
            if mh.current_mss_id is None:
                raise ConfigurationError(
                    f"{mh_id} must be connected at setup"
                )
            self.assignment[mh_id] = mh.current_mss_id
            self.location_register.update(
                mh_id, mh.current_mss_id, mh.session
            )
            self.tracked[mh_id] = True
            self._moves_streak[mh_id] = 0
            self._uses_streak[mh_id] = 0
        for mss_id in network.mss_ids():
            network.mss(mss_id).add_join_listener(
                lambda mh_id, prev, m=mss_id: self._on_join(m, mh_id)
            )

    # ------------------------------------------------------------------
    # Scope
    # ------------------------------------------------------------------

    def proxy_of(self, mh_id: str) -> str:
        if mh_id not in self.assignment:
            raise ConfigurationError(f"{mh_id} has no assigned proxy")
        if self.tracked[mh_id]:
            return self.assignment[mh_id]
        mh = self._manager.network.mobile_host(mh_id)
        if mh.current_mss_id is not None:
            return mh.current_mss_id
        return self.assignment[mh_id]

    def proxy_for_uplink(self, mh_id: str, receiving_mss_id: str) -> str:
        if self.tracked.get(mh_id, False):
            return self.assignment[mh_id]
        return receiving_mss_id

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------

    def _on_join(self, mss_id: str, mh_id: str) -> None:
        if mh_id not in self.assignment:
            return
        self._moves_streak[mh_id] += 1
        self._uses_streak[mh_id] = 0
        if not self.tracked[mh_id]:
            return  # untracked: moves are free
        if self._moves_streak[mh_id] >= self.demote_after_moves:
            # Too mobile to track: the home proxy gives up on this MH.
            self.tracked[mh_id] = False
            self.demotions += 1
            return
        manager = self._manager
        proxy = self.assignment[mh_id]
        session = manager.network.mobile_host(mh_id).session
        if mss_id == proxy:
            self.location_register.update(mh_id, mss_id, session)
            return
        self.inform_messages += 1
        manager.network.mss(mss_id).send_fixed(
            proxy, manager.kind_inform, (mh_id, mss_id, session),
            manager.scope,
        )

    def on_inform(self, mh_id: str, mss_id: str, session: int) -> None:
        """Proxy-side register update (invoked by the manager)."""
        self.location_register.update(mh_id, mss_id, session)

    def on_mh_crashed(self, mh_id: str) -> None:
        if mh_id not in self.assignment:
            return
        session = self._manager.network.mobile_host(mh_id).session
        self.location_register.purge(mh_id, session)
        self._uses_streak[mh_id] = 0

    def _note_use(self, mh_id: str, located_at: str) -> None:
        self._uses_streak[mh_id] += 1
        self._moves_streak[mh_id] = 0
        if (
            not self.tracked[mh_id]
            and self._uses_streak[mh_id] >= self.promote_after_uses
        ):
            # Stable again: resume tracking with one catch-up inform.
            self.tracked[mh_id] = True
            self.promotions += 1
            session = self._manager.network.mobile_host(mh_id).session
            self.location_register.update(mh_id, located_at, session)
            manager = self._manager
            proxy = self.assignment[mh_id]
            if located_at != proxy:
                self.inform_messages += 1
                manager.network.metrics.record_fixed(manager.scope)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def deliver(
        self,
        manager: "ProxyManager",
        src_mss_id: str,
        mh_id: str,
        kind: str,
        payload: object,
        on_missed: Optional[Callable[[str], None]] = None,
    ) -> None:
        if self.tracked[mh_id]:
            self._deliver_tracked(
                manager, src_mss_id, mh_id, kind, payload, on_missed
            )
        else:
            self._deliver_searched(
                manager, src_mss_id, mh_id, kind, payload, on_missed
            )

    def _deliver_tracked(
        self, manager, src_mss_id, mh_id, kind, payload, on_missed,
        attempts: int = 0,
    ) -> None:
        network = manager.network
        if attempts >= 4:
            # The register keeps misleading us (informs still in
            # flight, or the host bouncing between cells): give up on
            # tracking for this delivery and search.
            manager.stale_deliveries += 1
            self._deliver_searched(
                manager, src_mss_id, mh_id, kind, payload, on_missed
            )
            return

        def retry() -> None:
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self._deliver_tracked,
                manager,
                src_mss_id,
                mh_id,
                kind,
                payload,
                on_missed,
                attempts + 1,
            )

        def attempt(at_mss_id: str) -> None:
            mss = network.mss(at_mss_id)
            if mss.is_local(mh_id):
                network.send_wireless_down(
                    at_mss_id,
                    mh_id,
                    _proxy_message(
                        kind, at_mss_id, mh_id, payload, manager.scope
                    ),
                    on_lost=lambda message: retry(),
                    on_delivered=lambda message: self._note_use(
                        mh_id, at_mss_id
                    ),
                )
            elif (
                mh_id in mss.disconnected_mhs
                or network.is_mh_crashed(mh_id)
            ):
                # The crashed host's vanish flag may live in a cell
                # other than the believed one; resolve instead of
                # retrying until it recovers.
                if on_missed is not None:
                    on_missed(mh_id)
            else:
                manager.stale_deliveries += 1
                retry()

        believed = self.location_register.get(mh_id, src_mss_id)
        if believed == src_mss_id:
            attempt(src_mss_id)
        else:
            network.metrics.record_fixed(manager.scope)
            network.scheduler.schedule(
                network.config.fixed_latency(network.rng),
                attempt,
                believed,
            )

    def _deliver_searched(
        self, manager, src_mss_id, mh_id, kind, payload, on_missed
    ) -> None:
        network = manager.network
        network.send_to_mh(
            src_mss_id,
            mh_id,
            _proxy_message(kind, src_mss_id, mh_id, payload,
                           manager.scope),
            on_delivered=lambda message: self._note_use(
                mh_id,
                network.mobile_host(mh_id).current_mss_id or src_mss_id,
            ),
            on_disconnected=(
                (lambda outcome: on_missed(mh_id)) if on_missed else None
            ),
        )
