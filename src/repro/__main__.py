"""``python -m repro`` entry point.

Console front end for the ICDCS 1994 reproduction (see docs/cli.md).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
