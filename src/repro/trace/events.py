"""The trace event model and the tracer itself.

A :class:`TraceEvent` is one observable step of a protocol execution:
a message transmission, a message receipt, a lifecycle change (join,
leave, crash), a token hop, a critical-section entry, a fault decision,
or a recovery action.  Events carry

* a monotonically increasing ``id`` (total order of observation),
* a causal ``parent_id`` -- the event that *caused* this one: a receive
  points at its send, and anything emitted while a handler runs points
  at the receive that triggered the handler,
* the ``scope`` the traffic is accounted under (same labels as
  :class:`~repro.metrics.MetricsCollector`), and
* the paper's cost ``category`` (``fixed`` / ``wireless`` / ``search`` /
  ``search_probe``) when the event is a priced transmission, ``None``
  for free events (local deliveries, state changes, fault bookkeeping).

Tracing is structurally free when disabled: every instrumentation point
goes through the network's ``trace`` attribute, which defaults to the
shared :data:`NULL_TRACER` -- its methods do nothing, allocate nothing,
and are guarded by ``enabled`` checks on the hot paths, so the exact
cost accounting of every experiment is byte-identical with or without
the layer compiled in.  Enabling tracing never touches the scheduler,
the metrics, or any RNG, so a traced run *also* produces identical
costs and message counts -- the trace is a pure observer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim import Scheduler


@dataclass(slots=True)
class TraceEvent:
    """One observed step of a protocol execution.

    Attributes:
        id: monotonically increasing event id (observation order).
        parent_id: id of the causally preceding event, or ``None`` for
            root events (spontaneous actions such as a workload firing).
        time: simulated time of the observation.
        etype: dotted event type (``"send.fixed"``, ``"recv"``,
            ``"cs.enter"``, ``"fault.mss_crash"``, ...).
        scope: metrics scope of the causing protocol (``"L2"``, ...).
        category: cost category for priced transmissions
            (``"fixed"`` / ``"wireless"`` / ``"search"`` /
            ``"search_probe"``) or ``None`` for free events.
        src: id of the acting/sending host, if any.
        dst: id of the receiving host, if any.
        kind: message kind for send/recv events, else ``None``.
        detail: free-form event payload (token values, reasons, ...).
    """

    id: int
    parent_id: Optional[int]
    time: float
    etype: str
    scope: str = "default"
    category: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    kind: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arrow = (
            f" {self.src}->{self.dst}" if self.src or self.dst else ""
        )
        return (
            f"TraceEvent(#{self.id} t={self.time:g} {self.etype}"
            f"{arrow} scope={self.scope})"
        )


class _Context:
    """Context manager pushing one event id on the tracer's causal stack."""

    __slots__ = ("_tracer", "_event_id")

    def __init__(self, tracer: "Tracer", event_id: Optional[int]) -> None:
        self._tracer = tracer
        self._event_id = event_id

    def __enter__(self) -> None:
        self._tracer._stack.append(self._event_id)

    def __exit__(self, *exc: object) -> None:
        self._tracer._stack.pop()


class _NullContext:
    """Shared do-nothing context manager used by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects :class:`TraceEvent` records from an instrumented run.

    The tracer is a pure observer: it reads the scheduler clock but
    never schedules events, never draws randomness, and never records
    metrics, so enabling it cannot perturb a simulation.

    Causality is tracked with an explicit context stack: the network
    pushes the receive event's id around each handler dispatch, so any
    event emitted from inside the handler (sends, state changes) is
    parented to the receive that triggered it.  Send events additionally
    stamp their id onto the message envelope, which the matching receive
    uses as its parent -- chaining causality across the wire.
    """

    enabled = True

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.events: List[TraceEvent] = []
        self._next_id = 0
        self._stack: List[Optional[int]] = []

    def emit(
        self,
        etype: str,
        *,
        scope: str = "default",
        category: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        kind: Optional[str] = None,
        parent: Optional[int] = None,
        **detail: Any,
    ) -> int:
        """Record one event and return its id.

        ``parent`` defaults to the innermost active causal context (the
        receive being handled), or ``None`` at the top level.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        event_id = self._next_id
        self._next_id += 1
        self.events.append(
            TraceEvent(
                id=event_id,
                parent_id=parent,
                time=self.scheduler.now,
                etype=etype,
                scope=scope,
                category=category,
                src=src,
                dst=dst,
                kind=kind,
                detail=detail,
            )
        )
        return event_id

    def context(self, event_id: Optional[int]) -> _Context:
        """Causal context: events emitted inside are children of
        ``event_id``."""
        return _Context(self, event_id)

    def current(self) -> Optional[int]:
        """Id of the innermost active causal context, if any."""
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        """Drop all recorded events (ids keep increasing)."""
        self.events.clear()

    def children_of(self, event_id: int) -> List[TraceEvent]:
        """All events whose ``parent_id`` is ``event_id``."""
        return [e for e in self.events if e.parent_id == event_id]

    def by_type(self, etype: str) -> List[TraceEvent]:
        """All events of type ``etype`` (exact match)."""
        return [e for e in self.events if e.etype == etype]


class NullTracer:
    """The default no-op tracer.

    Shares the :class:`Tracer` interface; every method is a stub.  Hot
    paths additionally guard on :attr:`enabled` so a disabled run pays
    at most one attribute load per instrumentation point.
    """

    enabled = False
    events: List[TraceEvent] = []

    def emit(self, etype: str, **kwargs: Any) -> None:
        return None

    def context(self, event_id: Optional[int]) -> _NullContext:
        return _NULL_CONTEXT

    def current(self) -> None:
        return None

    def clear(self) -> None:
        return None


#: the shared no-op tracer installed on every network by default.
NULL_TRACER = NullTracer()
