"""Structured event tracing for protocol executions.

The trace layer turns every send, receive, handoff step, token pass,
critical-section entry/exit, fault injection and recovery action into a
:class:`TraceEvent` with a monotonically increasing id, a causal parent
id, the metrics scope, and the paper's cost category.  Install a
:class:`Tracer` on a network (``network.trace = Tracer(scheduler)`` or
``Simulation(..., trace=True)``) and export the collected events with
:func:`to_jsonl`, :func:`to_chrome` (Perfetto) or :func:`to_mermaid`.

Tracing is off by default (:data:`NULL_TRACER`) and structurally free
when disabled; enabling it never changes costs, message counts, or
randomness -- the tracer is a pure observer.

Submodules :mod:`repro.trace.scenarios` and
:mod:`repro.trace.walkthroughs` hold the canonical small scenarios and
the Markdown walkthrough renderer behind ``docs/walkthroughs/``; they
are not imported here to keep this package import-light (the network
core imports it).
"""

from repro.trace.events import NULL_TRACER, NullTracer, TraceEvent, Tracer
from repro.trace.export import (
    event_to_dict,
    to_chrome,
    to_jsonl,
    to_mermaid,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "event_to_dict",
    "to_chrome",
    "to_jsonl",
    "to_mermaid",
]
