"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, Mermaid.

Three serializations of the same :class:`~repro.trace.TraceEvent`
stream:

* :func:`to_jsonl` -- one JSON object per line; the archival format,
  trivially greppable and diffable (the ground-truth artifact other
  PRs diff against).
* :func:`to_chrome` -- the Chrome ``trace_event`` JSON format, loadable
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Each
  host becomes a named track; message sends/receives are bound by flow
  arrows, so a token traversal renders as a zig-zag across MSS tracks.
* :func:`to_mermaid` -- a Mermaid sequence diagram, embeddable in
  Markdown; the format the rendered protocol walkthroughs use.

All exporters are deterministic: same events in, same bytes out.
The exports back the walkthroughs of the paper's Section 3-5 episodes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.trace.events import TraceEvent


def _jsonable(value: Any) -> Any:
    """Coerce ``value`` into something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    return repr(value)


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """One event as a plain JSON-serializable dict (schema of the
    JSONL export)."""
    record: Dict[str, Any] = {
        "id": event.id,
        "parent": event.parent_id,
        "t": event.time,
        "type": event.etype,
        "scope": event.scope,
    }
    if event.category is not None:
        record["category"] = event.category
    if event.src is not None:
        record["src"] = event.src
    if event.dst is not None:
        record["dst"] = event.dst
    if event.kind is not None:
        record["kind"] = event.kind
    if event.detail:
        record["detail"] = _jsonable(event.detail)
    return record


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Serialize events as JSON Lines (one object per line)."""
    return "\n".join(
        json.dumps(event_to_dict(event), sort_keys=True)
        for event in events
    )


def to_chrome(events: Sequence[TraceEvent]) -> str:
    """Serialize events in Chrome ``trace_event`` format (Perfetto).

    Hosts map to threads of one process; every event is an instant on
    its actor's track, and each send/recv pair additionally emits a
    flow arrow (``ph: s`` / ``ph: f``) keyed by the send event's id so
    the viewer draws the message in flight.
    """
    tids: Dict[str, int] = {}

    def tid_of(host: Optional[str]) -> int:
        if host is None:
            host = "(system)"
        if host not in tids:
            tids[host] = len(tids) + 1
        return tids[host]

    records: List[Dict[str, Any]] = []
    send_ids = {
        e.id for e in events if e.etype.startswith("send.")
    }
    for event in events:
        actor = event.src if event.etype.startswith("send.") else (
            event.dst if event.dst is not None else event.src
        )
        ts = event.time * 1_000_000.0  # sim time units -> "microseconds"
        args = {
            "scope": event.scope,
            "id": event.id,
            "parent": event.parent_id,
        }
        if event.category is not None:
            args["category"] = event.category
        if event.kind is not None:
            args["kind"] = event.kind
        if event.detail:
            args["detail"] = _jsonable(event.detail)
        records.append({
            "name": event.kind or event.etype,
            "cat": event.etype,
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": 1,
            "tid": tid_of(actor),
            "args": args,
        })
        if event.etype.startswith("send."):
            records.append({
                "name": event.kind or event.etype,
                "cat": "flow",
                "ph": "s",
                "id": event.id,
                "ts": ts,
                "pid": 1,
                "tid": tid_of(event.src),
            })
        elif event.etype == "recv" and event.parent_id in send_ids:
            records.append({
                "name": event.kind or event.etype,
                "cat": "flow",
                "ph": "f",
                "bp": "e",
                "id": event.parent_id,
                "ts": ts,
                "pid": 1,
                "tid": tid_of(event.dst),
            })
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": host},
        }
        for host, tid in tids.items()
    ]
    return json.dumps(
        {"traceEvents": meta + records, "displayTimeUnit": "ms"},
        indent=1,
        sort_keys=True,
    )


#: event types rendered as notes rather than arrows in Mermaid output.
_NOTE_LABELS = {
    "cs.enter": "enters CS",
    "cs.exit": "exits CS",
    "mh.leave": "leave(r)",
    "mh.join": "join",
    "mh.disconnect": "disconnect(r)",
    "mh.reconnect": "reconnect",
    "mh.orphaned": "orphaned (MSS crashed)",
    "fault.mss_crash": "CRASH",
    "fault.mss_recover": "recovers",
    "r2.regenerate": "token regenerated",
    "lv.significant_move": "significant move",
    "lv.update": "LV update",
    "token.append": "token_list append",
    "rel.retransmit": "retransmit",
    "rel.give_up": "gave up",
    "search.begin": "search",
}

_CATEGORY_TAGS = {
    "fixed": "C_fixed",
    "wireless": "C_wireless",
    "search": "C_search",
    "search_probe": "C_fixed (probe)",
}


def _short_kind(kind: Optional[str], etype: str) -> str:
    return kind if kind else etype


def _note_text(event: TraceEvent) -> str:
    label = _NOTE_LABELS.get(event.etype, event.etype)
    extras = []
    for key in ("token_val", "epoch", "reason", "mh_id", "add",
                "delete", "attempt", "pair"):
        if key in event.detail and event.detail[key] is not None:
            extras.append(f"{key}={_fmt_value(event.detail[key])}")
    return label + (f" ({', '.join(extras)})" if extras else "")


def _fmt_value(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_fmt_value(v) for v in value) + "]"
    return str(value)


def to_mermaid(
    events: Sequence[TraceEvent],
    title: Optional[str] = None,
    max_steps: Optional[int] = None,
) -> str:
    """Render events as a Mermaid sequence diagram.

    Message sends become arrows (solid for delivered, ``--x`` for
    dropped/lost), semantic events become notes over their actor.
    ``max_steps`` truncates long traces (a closing note says how many
    steps were cut -- never a silent cap).
    """
    lost_parents = {
        e.parent_id
        for e in events
        if e.etype in ("wireless.lost", "fault.drop")
        and e.parent_id is not None
    }
    lines: List[str] = ["sequenceDiagram"]
    if title:
        lines.append(f"    title {title}")
    participants: List[str] = []

    def seen(host: Optional[str]) -> Optional[str]:
        if host is None:
            return None
        if host not in participants:
            participants.append(host)
        return host

    body: List[str] = []
    steps = 0
    truncated = 0
    for event in events:
        line: Optional[str] = None
        if event.etype.startswith("send.") and event.src and event.dst:
            seen(event.src)
            seen(event.dst)
            tag = _CATEGORY_TAGS.get(event.category or "", "free")
            arrow = "--x" if event.id in lost_parents else "->>"
            line = (
                f"    {event.src}{arrow}{event.dst}: "
                f"{_short_kind(event.kind, event.etype)} [{tag}]"
            )
        elif event.etype in _NOTE_LABELS:
            actor = event.src or event.dst
            if actor is None:
                continue
            seen(actor)
            line = f"    Note over {actor}: {_note_text(event)}"
        if line is None:
            continue
        if max_steps is not None and steps >= max_steps:
            truncated += 1
            continue
        body.append(line)
        steps += 1
    for host in participants:
        lines.append(f"    participant {host}")
    lines.extend(body)
    if truncated:
        lines.append(
            f"    Note over {participants[0]}: "
            f"... {truncated} further steps truncated ..."
        )
    return "\n".join(lines)
