"""Canonical traced scenarios behind the rendered walkthroughs.

Each function builds a small, fully deterministic simulation with
tracing on, runs one protocol episode, and returns a
:class:`ScenarioRun` bundling the simulation, its trace, and the prose
the walkthrough pages embed.  The scenarios are sized to produce
diagrams a reader can actually follow (2-4 MSSs, 2-4 MHs, one or two
protocol executions) while still exercising the exact code paths the
full benchmarks price.

Determinism matters: ``docs/walkthroughs/`` is generated from these
runs and checked in, and CI regenerates it and fails on any diff.  All
latency models here are the constant defaults and every RNG is seeded,
so same code => same trace => same bytes.
Each episode demonstrates one protocol from the paper's Sections 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.facade import Simulation
from repro.faults import FaultPlan, LinkFault, MhCrash, MssCrash
from repro.groups.location_view import LocationViewGroup
from repro.mutex import (
    CriticalResource,
    L1Mutex,
    L2Mutex,
    R2Mutex,
    R2Variant,
)
from repro.net.messages import Message
from repro.trace.events import TraceEvent


@dataclass
class ScenarioRun:
    """One finished traced scenario, ready to render."""

    name: str
    title: str
    #: markdown paragraphs introducing the scenario.
    intro: str
    sim: Simulation
    #: markdown bullets of facts worth calling out under the diagram.
    notes: List[str] = field(default_factory=list)

    @property
    def events(self) -> List[TraceEvent]:
        return self.sim.tracer.events


def scenario_l1() -> ScenarioRun:
    """Algorithm L1: Lamport's mutex run by the mobile hosts."""
    sim = Simulation(n_mss=3, n_mh=3, seed=1, trace=True)
    resource = CriticalResource(sim.scheduler)
    mutex = L1Mutex(
        sim.network, sim.mh_ids, resource, cs_duration=1.0, scope="L1"
    )
    mutex.request(sim.mh_id(0))
    sim.drain()
    return ScenarioRun(
        name="l1",
        title="L1: Lamport's algorithm on the mobile hosts",
        intro=(
            "All three participants are MHs, so every one of the "
            "3(N-1) algorithm messages crosses a wireless link twice "
            "(uplink + downlink) and needs a search in between: each "
            "costs `2*C_wireless + C_search`. Watch how much traffic "
            "a single access generates, and where it lands -- on the "
            "battery-powered, low-bandwidth side of the system."
        ),
        sim=sim,
        notes=[
            f"accesses completed: {resource.access_count}",
            "every request/reply/release is MH-to-MH: uplink, search, "
            "downlink",
        ],
    )


def scenario_l2() -> ScenarioRun:
    """Algorithm L2: the same request served by MSS proxies."""
    sim = Simulation(n_mss=3, n_mh=3, seed=1, trace=True)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=1.0, scope="L2")
    mutex.request(sim.mh_id(0))
    sim.drain()
    return ScenarioRun(
        name="l2",
        title="L2: Lamport's algorithm at the support stations",
        intro=(
            "The same single access, but Lamport's algorithm now runs "
            "*unmodified among the M support stations*; the MH only "
            "sends `init`, receives the grant, and sends "
            "`release_resource` -- exactly 3 wireless messages "
            "regardless of N. The `3(M-1)` Lamport messages stay on "
            "the wired network at `C_fixed` each."
        ),
        sim=sim,
        notes=[
            f"accesses completed: {resource.access_count}",
            "the MH's share is three wireless messages: init, grant, "
            "release_resource",
        ],
    )


def scenario_r2_token_list() -> ScenarioRun:
    """R2'' -- the token-list variant, with the list visibly mutating."""
    sim = Simulation(n_mss=3, n_mh=3, seed=1, trace=True)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        cs_duration=1.0,
        variant=R2Variant.TOKEN_LIST,
        scope="R2''",
        max_traversals=2,
    )
    mutex.request(sim.mh_id(0))
    mutex.request(sim.mh_id(1))
    mutex.start()
    sim.drain()
    return ScenarioRun(
        name="r2_token_list",
        title="R2'': the token ring with a token_list",
        intro=(
            "The token circulates mss-0 -> mss-1 -> mss-2 -> mss-0 "
            "(`M*C_fixed` per traversal). Two MHs request; each grant "
            "costs search + wireless out, wireless + fixed back. The "
            "`token.arrive` events show the `token_list` at every "
            "hop: arriving at MSS *m* deletes all pairs `(m, _)`, and "
            "every completed access appends `(m, h)` -- so a host "
            "that raced the token around the ring would be refused "
            "at its next cell, even if it lies about its access "
            "count. That is the paper's R2'' robustness argument, "
            "visible hop by hop."
        ),
        sim=sim,
        notes=[
            f"accesses completed: {resource.access_count}",
            "follow token_list in the token.arrive / token.append "
            "events: pruned on arrival, extended on each access",
        ],
    )


def scenario_location_view_move() -> ScenarioRun:
    """LV(G): a group send, then a combined significant move."""
    sim = Simulation(n_mss=4, n_mh=4, seed=1, trace=True)
    members = [sim.mh_id(0), sim.mh_id(1), sim.mh_id(2)]
    group = LocationViewGroup(sim.network, members, scope="group-lv")
    group.send(sim.mh_id(0), payload="hello")
    sim.run(until=5.0)
    # mh-1 is the only member in mss-1's cell; moving it to mss-3
    # (outside the view) is a *combined* significant move: add mss-3,
    # delete mss-1, one change request, one incremental update fan-out.
    sim.mh(1).move_to(sim.mss_id(3))
    sim.drain()
    return ScenarioRun(
        name="location_view_move",
        title="Location view: a significant move updates LV(G)",
        intro=(
            "Three members sit in cells mss-0/mss-1/mss-2, so "
            "LV(G) = {mss-0, mss-1, mss-2} with mss-0 coordinating. "
            "First a group message fans out across the view "
            "(`(|LV|-1)*C_fixed + |G|*C_wireless`). Then mh-1 -- the "
            "*sole* member in mss-1's cell -- moves to mss-3, outside "
            "the view: one combined add+delete change request goes to "
            "the coordinator, which serializes it and distributes a "
            "full copy to the added MSS plus incremental updates to "
            "the rest, within the paper's `(|LV|+3)*C_fixed` bound. "
            "The MH itself spent nothing on any of this."
        ),
        sim=sim,
        notes=[
            f"significant moves: {group.stats.significant_moves} "
            f"(of {group.stats.moves} total)",
            f"final view: {sorted(group.coordinator_view())}",
            "the lv.significant_move event carries both the add and "
            "the delete of the combined case",
        ],
    )


def scenario_reliable_retransmit() -> ScenarioRun:
    """The reliable channel recovering one deterministic loss."""
    plan = FaultPlan(
        link_faults=(
            LinkFault(drop=1.0, src="mss-0", dst="mss-1",
                      start=0.0, end=4.0),
        ),
        reliable=True,
        retransmit_timeout=4.0,
        seed=1,
    )
    sim = Simulation(n_mss=2, n_mh=0, seed=1, trace=True,
                     fault_plan=plan)
    received: List[object] = []
    sim.mss(1).register_handler(
        "demo.ping", lambda message: received.append(message.payload)
    )
    sim.network.send_fixed(
        Message(kind="demo.ping", src="mss-0", dst="mss-1",
                payload="are you there?", scope="demo")
    )
    sim.drain()
    return ScenarioRun(
        name="reliable_retransmit",
        title="Reliable transport: loss, timeout, retransmit, ack",
        intro=(
            "The link mss-0 -> mss-1 drops *everything* until t=4. "
            "The reliable layer wraps the application message in a "
            "`rel.data` envelope (seq 1): the first transmission is "
            "charged and then eaten by the fault injector "
            "(`fault.drop`), the retransmit timer fires at the 4.0 "
            "timeout, the second copy gets through, mss-1 acks and "
            "releases the inner message to its handler in order. "
            "Every physical copy -- original, retransmit, ack -- is a "
            "real `C_fixed` message; that is how `bench_a8` prices "
            "recovery."
        ),
        sim=sim,
        notes=[
            f"payload delivered: {received == ['are you there?']}",
            f"retransmits: {sim.network.reliable.retransmits}",
            "the rel.send event is the *logical* send; each "
            "send.fixed under it is one physical attempt",
        ],
    )


def scenario_r2_crash_recovery() -> ScenarioRun:
    """R2 surviving an MSS crash: orphans, rejoin, regeneration."""
    plan = FaultPlan(
        crashes=(MssCrash("mss-1", at=0.5, recover_at=40.0),),
        rejoin_delay=5.0,
        seed=1,
    )
    sim = Simulation(n_mss=3, n_mh=3, seed=1, trace=True,
                     fault_plan=plan)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        cs_duration=1.0,
        variant=R2Variant.TOKEN_LIST,
        scope="R2''",
        max_traversals=6,
        token_timeout=15.0,
    )
    mutex.request(sim.mh_id(0))
    mutex.request(sim.mh_id(1))
    mutex.start()
    sim.drain()
    return ScenarioRun(
        name="r2_crash_recovery",
        title="R2 crash recovery: losing a station, not the algorithm",
        intro=(
            "mss-1 crashes at t=0.5 -- while the token is in flight "
            "towards it and mh-1's request sits in its queue -- and "
            "stays down until t=40. The trace shows the whole "
            "recovery sequence the counters only summarize: "
            "`fault.mss_crash` orphans mh-1 (`mh.orphaned`), the "
            "token is swallowed by the dead station (`fault.drop` at "
            "t=1), the orphan rejoins elsewhere (`fault.mh_rejoin` "
            "-> `mh.reconnect`) and resubmits its lost request "
            "(`r2.resubmit`), and the leader's watchdog regenerates "
            "the token under a bumped epoch (`r2.regenerate`, epoch "
            "0 -> 1) so any stale copy that later surfaced would be "
            "refused. Every request is eventually served exactly "
            "once."
        ),
        sim=sim,
        notes=[
            f"accesses completed: {resource.access_count}",
            f"token regenerations: {mutex.regenerations}",
            "compare epochs on token.arrive events before and after "
            "the regeneration",
        ],
    )


def scenario_mh_crash_recovery() -> ScenarioRun:
    """An MH crash recovered from a distance-based checkpoint."""
    from repro.recovery import CounterClient

    plan = FaultPlan(
        mh_crashes=(MhCrash("mh-0", at=14.0, recover_at=20.0),),
        seed=1,
    )
    sim = Simulation(n_mss=3, n_mh=2, seed=1, trace=True,
                     fault_plan=plan, recovery="distance:3")
    counter = CounterClient(sim.recovery)
    # One unit of work in the starting cell homes a checkpoint there;
    # two handoffs then drag the checkpoint *pointer* (never the
    # payload) along; a second unit after the moves stays unprotected
    # and is what the crash visibly costs.
    sim.scheduler.schedule(1.0, counter.note_work, "mh-0")
    sim.scheduler.schedule(4.0, sim.mh(0).move_to, "mss-1")
    sim.scheduler.schedule(8.0, sim.mh(0).move_to, "mss-2")
    sim.scheduler.schedule(11.0, counter.note_work, "mh-0")
    sim.drain()
    return ScenarioRun(
        name="mh_crash_recovery",
        title="MH crash recovery from a distance-based checkpoint",
        intro=(
            "mh-0 performs a unit of recoverable work in mss-0's "
            "cell; the distance-3 policy checkpoints it immediately "
            "(`recovery.checkpoint` -> `recovery.save`, one wireless "
            "uplink) and the payload stays at mss-0. Two handoffs "
            "later the host is at mss-2, and only the tiny checkpoint "
            "*meta* travelled with it, riding the Section 2 handoff "
            "for free -- its trail now reads mss-1, mss-0. At t=14 "
            "the host crashes (`fault.mh_crash`): the second, "
            "never-checkpointed unit of work dies with it. Recovery "
            "at t=20 replays the ordinary reconnect, and the local "
            "meta starts the fetch (`recovery.fetch`, distance 2): "
            "one fixed hop per trail entry walks mss-1 to mss-0, the "
            "home returns the payload to mss-2 (`recovery.payload`), "
            "the checkpoint is *re-homed* there, and one wireless "
            "downlink (`recovery.restore`) reinstates the counter. "
            "The recovery cost is bounded by how far the host moved "
            "since the checkpoint -- never by how long it ran."
        ),
        sim=sim,
        notes=[
            f"checkpoints taken: {sim.recovery.checkpoints_taken}",
            f"restored: {sim.recovery.restored}",
            f"work after recovery: {counter.work['mh-0']} "
            f"(lost to the crash: {counter.lost['mh-0']})",
            "recovery.ckpt prices the overhead while healthy; "
            "recovery.restore prices the fetch walk after the crash",
        ],
    )


#: every canonical scenario, by name (the ``repro trace`` CLI menu).
SCENARIOS: Dict[str, Callable[[], ScenarioRun]] = {
    "l1": scenario_l1,
    "l2": scenario_l2,
    "r2_token_list": scenario_r2_token_list,
    "location_view_move": scenario_location_view_move,
    "reliable_retransmit": scenario_reliable_retransmit,
    "r2_crash_recovery": scenario_r2_crash_recovery,
    "mh_crash_recovery": scenario_mh_crash_recovery,
}


def run_scenario(name: str) -> ScenarioRun:
    """Build and run one canonical scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; options: {sorted(SCENARIOS)}"
        ) from None
    return factory()
