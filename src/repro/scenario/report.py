"""Structured per-run scenario reports.

:func:`build_report` turns one finished run into a plain JSON-ready
dict: what ran, what it cost in the paper's currency, which faults bit,
what the workload achieved, and what the invariant monitors concluded.
:func:`render_summary` formats a batch of results as the table the CLI
prints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.monitor import HealthMonitor
from repro.scenario.spec import SCHEMA_VERSION, ScenarioSpec

__all__ = ["build_report", "render_summary"]


def build_report(
    spec: ScenarioSpec,
    seed: int,
    sim,
    workload_stats: Dict[str, Any],
    wall_time_s: float,
) -> Dict[str, Any]:
    """One run's structured report as a JSON-serializable dict."""
    metrics = sim.metrics.report(sim.cost_model)
    hub = sim.monitor_hub
    violations: List[Dict[str, Any]] = []
    monitor_count = 0
    if hub is not None:
        monitor_count = len(hub.monitors)
        violations = [
            {
                "monitor": v.monitor,
                "invariant": v.invariant,
                "time": v.time,
                "message": v.message,
            }
            for v in hub.violations
        ]
    last_health: Optional[Dict[str, Any]] = None
    if hub is not None:
        for monitor in hub.monitors:
            if isinstance(monitor, HealthMonitor) and monitor.samples:
                last_health = dict(monitor.samples[-1])
    report: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "scenario": spec.name,
        "title": spec.title,
        "tags": list(spec.tags),
        "seed": seed,
        "topology": {
            "n_mss": spec.n_mss,
            "n_mh": spec.n_mh,
            "placement": spec.placement,
            "search": spec.search,
        },
        "duration": spec.duration,
        "final_time": sim.now,
        "wall_time_s": round(wall_time_s, 3),
        "messages": metrics["totals"],
        "cost": {
            "total": metrics.get("cost_total", 0.0),
            "by_scope": metrics.get("cost_by_scope", {}),
        },
        "energy_total": metrics["energy_total"],
        "faults": metrics.get("faults", {}),
        "recovery": metrics.get("recovery"),
        "workload": workload_stats,
        "monitors": {
            "count": monitor_count,
            "ok": not violations,
            "violations": violations,
        },
    }
    if last_health is not None:
        report["health"] = last_health
    return report


def render_summary(results) -> List[str]:
    """Lines of the summary table for a batch of ScenarioResults."""
    lines = [
        f"{'scenario':<28}{'seed':>6}{'events':>9}{'cost':>10}"
        f"{'faults':>8}  status"
    ]
    for result in results:
        report = result.report
        n_faults = sum(report["faults"].values())
        n_violations = len(report["monitors"]["violations"])
        if result.ok:
            status = "ok"
        elif n_violations:
            status = f"{n_violations} VIOLATION(S)"
        else:
            status = "; ".join(result.failures)
        lines.append(
            f"{report['scenario']:<28}{report['seed']:>6}"
            f"{result.events:>9}{report['cost']['total']:>10.0f}"
            f"{n_faults:>8}  {status}"
        )
        if not result.ok:
            for failure in result.failures:
                lines.append(f"    - {failure}")
    return lines
