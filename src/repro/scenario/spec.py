"""The declarative scenario spec.

A :class:`ScenarioSpec` is a pure-data description of one complete
churn experiment: the topology (M support stations, N mobile hosts,
their initial placement), the workload driving protocol traffic, the
mobility and disconnection churn, scheduled mass events (flash crowds,
tunnels, stadium egress, diurnal rate changes), the
:class:`~repro.faults.FaultPlan` it all runs under, the monitor
deadlines, and the expected-outcome assertions that make the scenario a
test and not just a demo.

Specs are built by :mod:`repro.scenario.loader` from plain dicts (JSON
or YAML files, inline dicts in tests) and executed by
:mod:`repro.scenario.runner` under the full
:mod:`repro.monitor` suite.  The spec itself never touches the
simulator -- it is comparable, hashable-by-name, serializable data, so
a scenario means the same thing in the registry, the CLI, CI, and the
pytest plugin.
Part of the declarative chaos-scenario platform (ROADMAP chaos arc).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.faults import FaultPlan

#: bump when the spec schema changes shape incompatibly.
SCHEMA_VERSION = 1

#: workload kinds understood by the runner.
WORKLOAD_KINDS = ("mutex", "groups", "multicast", "proxy", "none")

#: mobility kinds understood by the runner.
MOBILITY_KINDS = ("uniform", "localized", "none")

#: scheduled mass-event kinds understood by the runner.
EVENT_KINDS = (
    "mass_disconnect",  # tunnel / airplane: a cohort drops off the air
    "converge",         # flash crowd: a cohort moves into one cell
    "scatter",          # stadium egress: a cell empties across the map
    "move",             # one scheduled handoff (deterministic races)
    "request",          # one scheduled mutex request
    "set_rate",         # diurnal curves: change workload/mobility rates
)

#: mutex algorithms a scenario workload may name.
MUTEX_ALGORITHMS = ("L1", "L2", "R1", "R2", "R2'", "R2''")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario, fully validated.

    Instances come out of :func:`repro.scenario.loader.load_spec`;
    construct through the loader (not directly) so every field has
    been checked and every nested dict normalized.
    """

    name: str
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()

    # -- topology ------------------------------------------------------
    n_mss: int = 4
    n_mh: int = 8
    seed: int = 0
    placement: Any = "round_robin"
    search: str = "abstract"

    # -- time ----------------------------------------------------------
    duration: float = 200.0
    #: extra sim-time granted after ``duration`` for in-flight requests
    #: to complete before the ring is stopped and the run drained.
    settle: float = 400.0

    # -- drivers -------------------------------------------------------
    workload: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "none"}
    )
    mobility: Optional[Dict[str, Any]] = None
    disconnects: Optional[Dict[str, Any]] = None
    events: Tuple[Dict[str, Any], ...] = ()

    # -- adversity -----------------------------------------------------
    faults: Optional[FaultPlan] = None

    # -- certification -------------------------------------------------
    monitors: Dict[str, float] = field(default_factory=dict)
    expect: Dict[str, Any] = field(default_factory=dict)

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dict; inverse of the loader."""
        out: Dict[str, Any] = {
            "name": self.name,
            "title": self.title,
            "description": self.description,
            "tags": list(self.tags),
            "n_mss": self.n_mss,
            "n_mh": self.n_mh,
            "seed": self.seed,
            "placement": self.placement,
            "search": self.search,
            "duration": self.duration,
            "settle": self.settle,
            "workload": dict(self.workload),
        }
        if self.mobility is not None:
            out["mobility"] = dict(self.mobility)
        if self.disconnects is not None:
            out["disconnects"] = dict(self.disconnects)
        if self.events:
            out["events"] = [dict(event) for event in self.events]
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        if self.monitors:
            out["monitors"] = dict(self.monitors)
        if self.expect:
            out["expect"] = dict(self.expect)
        return out
