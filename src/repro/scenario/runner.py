"""Executing declarative scenarios under the full monitor suite.

:func:`run_scenario` builds a :class:`~repro.facade.Simulation` from a
:class:`~repro.scenario.spec.ScenarioSpec`, wires the declared
workload, mobility, disconnection churn and scheduled mass events,
runs it under every safety monitor plus a liveness watchdog and health
sampler, evaluates the spec's expected-outcome assertions, and returns
a :class:`ScenarioResult`.  :func:`certify` repeats a scenario across
several seeds -- a scenario is *certified* when every seed finishes
with zero invariant violations and every expectation met.

The run discipline mirrors the CLI: drive traffic until ``duration``,
stop the drivers, grant up to ``settle`` extra sim-time for in-flight
mutex requests to complete, stop any token ring, then settle the
remaining events.
Certifies the paper's invariants under churn (ROADMAP chaos arc); large mass-event cohorts are coalesced via :mod:`repro.scale` (ROADMAP item 2).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.facade import Simulation
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)
from repro.mobility import (
    DisconnectionModel,
    LocalizedMobility,
    UniformMobility,
)
from repro.monitor import HealthMonitor, LivenessMonitor, safety_monitors
from repro.mutex import CriticalResource, L1Mutex, L2Mutex, R1Mutex, R2Mutex
from repro.mutex.r2 import R2Variant
from repro.scale import dispatch_coalesced
from repro.scenario.report import build_report
from repro.scenario.spec import ScenarioSpec
from repro.sim import PoissonProcess
from repro.workload import GroupMessagingWorkload, MutexWorkload

__all__ = ["ScenarioResult", "run_scenario", "certify"]

_GROUP_CLASSES = {
    "pure_search": PureSearchGroup,
    "always_inform": AlwaysInformGroup,
    "location_view": LocationViewGroup,
}

_R2_VARIANTS = {
    "R2": R2Variant.PLAIN,
    "R2'": R2Variant.COUNTER,
    "R2''": R2Variant.TOKEN_LIST,
}


@dataclass
class ScenarioResult:
    """What one scenario run produced."""

    spec: ScenarioSpec
    seed: int
    report: Dict[str, Any]
    events: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Zero invariant violations and every expectation met."""
        return not self.failures and self.report["monitors"]["ok"]


class _Run:
    """Mutable state for one scenario execution."""

    def __init__(self, spec: ScenarioSpec, seed: int,
                 monitor_mode: str = "event") -> None:
        self.spec = spec
        self.seed = seed
        monitors = spec.monitors
        self.sim = Simulation(
            monitor_mode=monitor_mode,
            n_mss=spec.n_mss,
            n_mh=spec.n_mh,
            seed=seed,
            placement=(list(spec.placement)
                       if isinstance(spec.placement, (list, tuple))
                       else spec.placement),
            search=spec.search,
            fault_plan=spec.faults,
            monitors=safety_monitors() + [
                LivenessMonitor(
                    request_deadline=monitors.get("request_deadline",
                                                  1000.0),
                    token_deadline=monitors.get("token_deadline",
                                                1000.0),
                ),
                HealthMonitor(
                    interval=monitors.get("health_interval", 50.0)
                ),
            ],
        )
        # Every source of randomness outside the Simulation itself is
        # seeded from (scenario name, seed) so one scenario's draws
        # never shift another's.
        self.event_rng = random.Random(f"scenario:{spec.name}:{seed}")
        self.mutex = None
        self.resource: Optional[CriticalResource] = None
        self.workload = None        # MutexWorkload / GroupMessagingWorkload
        self.traffic = None         # PoissonProcess (proxy / multicast)
        self.group = None
        self.messenger = None
        self.feed = None
        self.sent = 0
        self.mobility = None
        self.disconnects = None
        self.participants = list(self.sim.mh_ids)

    # -- helpers -------------------------------------------------------

    def live_cells(self) -> List[str]:
        cells = [
            mss_id for mss_id in self.sim.mss_ids
            if not self.sim.network.is_mss_crashed(mss_id)
        ]
        return cells or list(self.sim.mss_ids)

    def _move_if_possible(self, mh_id: str, cell: str) -> None:
        mh = self.sim.network.mobile_host(mh_id)
        if not mh.is_connected or mh.current_mss_id == cell:
            return
        if self.sim.network.is_mss_crashed(cell):
            return
        mh.move_to(cell)

    # -- workload wiring -----------------------------------------------

    def wire_workload(self) -> None:
        spec = self.spec
        sim = self.sim
        workload = spec.workload
        kind = workload["kind"]
        if kind == "mutex":
            self.resource = CriticalResource(sim.scheduler)
            algorithm = workload["algorithm"]
            if algorithm == "L1":
                self.mutex = L1Mutex(sim.network, sim.mh_ids,
                                     self.resource,
                                     cs_duration=workload["cs_duration"])
            elif algorithm == "L2":
                self.mutex = L2Mutex(sim.network, self.resource,
                                     cs_duration=workload["cs_duration"])
            elif algorithm == "R1":
                self.mutex = R1Mutex(sim.network, sim.mh_ids,
                                     self.resource,
                                     cs_duration=workload["cs_duration"])
            else:
                self.mutex = R2Mutex(
                    sim.network,
                    self.resource,
                    variant=_R2_VARIANTS[algorithm],
                    cs_duration=workload["cs_duration"],
                    token_timeout=workload["token_timeout"],
                    max_traversals=workload.get("max_traversals"),
                )
                for index in workload["malicious_mhs"]:
                    self.mutex.malicious_mhs.add(f"mh-{index}")
                self.mutex.start()
            if algorithm not in ("L1", "R1"):
                self.workload = MutexWorkload(
                    sim.network, self.mutex, sim.mh_ids,
                    workload["request_rate"],
                    rng=random.Random(self.seed + 7),
                )
        elif kind == "groups":
            members = sim.mh_ids[: workload["group_size"]]
            self.participants = members
            self.group = _GROUP_CLASSES[workload["strategy"]](
                sim.network, members
            )
            self.workload = GroupMessagingWorkload(
                sim.network, self.group, workload["message_rate"],
                rng=random.Random(self.seed + 7),
            )
        elif kind == "multicast":
            from repro.multicast import ExactlyOnceMulticast

            members = sim.mh_ids[: workload["group_size"]]
            self.participants = members
            self.feed = ExactlyOnceMulticast(sim.network, members,
                                             gc=workload["gc"])
            rng = random.Random(self.seed + 7)

            def send_multicast() -> None:
                sender = rng.choice(members)
                if sim.network.mobile_host(sender).is_connected:
                    self.sent += 1
                    self.feed.send(sender, ("m", self.sent))

            self.traffic = PoissonProcess(
                sim.scheduler, workload["message_rate"], send_multicast,
                rng=random.Random(self.seed + 8),
            )
        elif kind == "proxy":
            from repro.proxy import (
                AdaptiveProxyPolicy,
                FixedProxyPolicy,
                LocalProxyPolicy,
                ProxiedMessenger,
                ProxyManager,
            )

            policy = {
                "fixed": FixedProxyPolicy,
                "local": LocalProxyPolicy,
                "adaptive": AdaptiveProxyPolicy,
            }[workload["policy"]]()
            manager = ProxyManager(sim.network, policy, sim.mh_ids)
            self.messenger = ProxiedMessenger(manager)
            rng = random.Random(self.seed + 7)

            def send_letter() -> None:
                src, dst = rng.sample(sim.mh_ids, 2)
                if sim.network.mobile_host(src).is_connected:
                    self.sent += 1
                    self.messenger.send(src, dst, ("letter", self.sent))

            self.traffic = PoissonProcess(
                sim.scheduler, workload["message_rate"], send_letter,
                rng=random.Random(self.seed + 8),
            )

    def wire_churn(self) -> None:
        spec = self.spec
        sim = self.sim
        if spec.mobility is not None:
            kind = spec.mobility["kind"]
            if kind == "uniform":
                self.mobility = UniformMobility(
                    sim.network, self.participants,
                    spec.mobility["rate"],
                    rng=random.Random(self.seed + 101),
                )
            else:  # localized
                home = [
                    f"mss-{i}"
                    for i in range(min(spec.mobility["home_cells"],
                                       spec.n_mss))
                ]
                self.mobility = LocalizedMobility(
                    sim.network, self.participants,
                    spec.mobility["rate"],
                    rng=random.Random(self.seed + 101),
                    home_cells=home,
                    escape_probability=spec.mobility[
                        "escape_probability"],
                )
        if spec.disconnects is not None:
            self.disconnects = DisconnectionModel(
                sim.network, self.participants,
                spec.disconnects["rate"],
                spec.disconnects["downtime"],
                rng=random.Random(self.seed + 211),
                supply_prev=spec.disconnects["supply_prev"],
            )

    # -- scheduled mass events ------------------------------------------

    def schedule_events(self) -> None:
        for event in self.spec.events:
            handler = getattr(self, "_event_" + event["kind"])
            self.sim.scheduler.schedule_at(event["at"], handler, event)

    def _cohort(self, fraction: float) -> List[str]:
        connected = [
            mh_id for mh_id in self.participants
            if self.sim.network.mobile_host(mh_id).is_connected
        ]
        count = max(1, round(fraction * len(connected))) if connected \
            else 0
        return self.event_rng.sample(connected, min(count,
                                                    len(connected)))

    def _event_mass_disconnect(self, event: Dict[str, Any]) -> None:
        # Cohort follow-ups go through the coalesced dispatcher: small
        # cohorts keep exact per-MH delays, large ones share at most
        # ~32 scheduler events instead of one per MH (ROADMAP item 2).
        spread = event["reconnect_spread"]
        ops = []
        for mh_id in self._cohort(event["fraction"]):
            self.sim.network.mobile_host(mh_id).disconnect()
            target = self.event_rng.choice(self.live_cells())
            delay = event["downtime"] + (
                self.event_rng.uniform(0.0, spread) if spread else 0.0
            )
            ops.append((
                delay, self._reconnect,
                (mh_id, target, event["supply_prev"]),
            ))
        dispatch_coalesced(self.sim.scheduler, ops)

    def _reconnect(self, mh_id: str, mss_id: str,
                   supply_prev: bool) -> None:
        mh = self.sim.network.mobile_host(mh_id)
        if not mh.is_disconnected:
            return
        if self.sim.network.is_mss_crashed(mss_id):
            mss_id = self.event_rng.choice(self.live_cells())
        mh.reconnect(mss_id, supply_prev=supply_prev)

    def _event_converge(self, event: Dict[str, Any]) -> None:
        cell = f"mss-{event['cell']}"
        spread = event["spread"]
        ops = []
        for mh_id in self._cohort(event["fraction"]):
            delay = self.event_rng.uniform(0.0, spread) if spread \
                else 0.0
            ops.append((delay, self._move_if_possible, (mh_id, cell)))
        dispatch_coalesced(self.sim.scheduler, ops)

    def _event_scatter(self, event: Dict[str, Any]) -> None:
        source = (f"mss-{event['from_cell']}"
                  if event["from_cell"] is not None else None)
        spread = event["spread"]
        ops = []
        for mh_id in self.participants:
            mh = self.sim.network.mobile_host(mh_id)
            if not mh.is_connected:
                continue
            if source is not None and mh.current_mss_id != source:
                continue
            options = [
                cell for cell in self.live_cells()
                if cell != mh.current_mss_id
            ]
            if not options:
                continue
            target = self.event_rng.choice(options)
            delay = self.event_rng.uniform(0.0, spread) if spread \
                else 0.0
            ops.append((delay, self._move_if_possible, (mh_id, target)))
        dispatch_coalesced(self.sim.scheduler, ops)

    def _event_move(self, event: Dict[str, Any]) -> None:
        self._move_if_possible(f"mh-{event['mh']}",
                               f"mss-{event['cell']}")

    def _event_request(self, event: Dict[str, Any]) -> None:
        mh_id = f"mh-{event['mh']}"
        if self.workload is not None:
            self.workload.request_now(mh_id)
            return
        if not self.sim.network.mobile_host(mh_id).is_connected:
            return
        if isinstance(self.mutex, R1Mutex):
            self.mutex.want(mh_id)
        elif self.mutex is not None:
            self.mutex.request(mh_id)

    def _event_set_rate(self, event: Dict[str, Any]) -> None:
        rate = event.get("workload_rate")
        if rate is not None:
            if self.workload is not None:
                self.workload.set_rate(rate)
            elif self.traffic is not None:
                self.traffic.set_rate(rate)
        rate = event.get("mobility_rate")
        if rate is not None and self.mobility is not None:
            self.mobility.set_rate(rate)

    # -- execution ------------------------------------------------------

    def execute(self) -> int:
        spec = self.spec
        sim = self.sim
        workload_kind = spec.workload["kind"]
        algorithm = spec.workload.get("algorithm")
        if workload_kind == "mutex" and algorithm == "R1":
            # R1's ring only circulates once started; wants arrive via
            # scheduled 'request' events.
            self.mutex.start()

        events = sim.run(until=spec.duration)
        for driver in (self.workload, self.traffic, self.mobility,
                       self.disconnects):
            if driver is not None:
                driver.stop()

        if workload_kind == "mutex":
            deadline = sim.now + spec.settle
            if self.workload is not None:
                while (self.workload.completed < self.workload.issued
                       and sim.now < deadline):
                    events += sim.run(
                        until=min(sim.now + 50.0, deadline)
                    )
            if algorithm in ("R1", "R2", "R2'", "R2''"):
                # Stop the token at the ring head, else it circulates
                # forever (cf. the CLI's ring-stop discipline).
                self.mutex.max_traversals = 0
                events += sim.run(until=sim.now + 200.0)
            else:
                events += sim.drain()
        else:
            events += sim.drain()
        return events

    # -- expectations ---------------------------------------------------

    def evaluate(self) -> List[str]:
        expect = self.spec.expect
        failures: List[str] = []

        def check(label: str, actual, minimum) -> None:
            if actual < minimum:
                failures.append(
                    f"{label}: expected >= {minimum}, got {actual}"
                )

        if "min_completed" in expect:
            completed = (self.workload.completed
                         if self.workload is not None else 0)
            check("completed requests", completed,
                  expect["min_completed"])
        if expect.get("all_requests_served"):
            if self.workload is None:
                failures.append(
                    "all_requests_served: no request workload ran"
                )
            elif self.workload.completed < self.workload.issued:
                failures.append(
                    f"all_requests_served: "
                    f"{self.workload.completed} of "
                    f"{self.workload.issued} requests completed"
                )
        if "min_accesses" in expect:
            accesses = (self.resource.access_count
                        if self.resource is not None else 0)
            check("region accesses", accesses, expect["min_accesses"])
        if "min_sent" in expect:
            sent = self.sent
            if self.workload is not None:
                sent = getattr(self.workload, "sent",
                               getattr(self.workload, "issued", 0))
            check("messages sent", sent, expect["min_sent"])
        if "min_deliveries" in expect:
            check("deliveries", self._deliveries(),
                  expect["min_deliveries"])
        if "max_gave_up" in expect:
            dropped = (self.workload.dropped
                       if self.workload is not None else 0)
            if dropped > expect["max_gave_up"]:
                failures.append(
                    f"dropped arrivals: expected <= "
                    f"{expect['max_gave_up']}, got {dropped}"
                )
        for name, minimum in expect.get("min_faults", {}).items():
            check(f"fault {name!r}",
                  self.sim.metrics.fault_total(name), minimum)
        if self.resource is not None:
            # Belt and braces next to the MutualExclusionMonitor.
            self.resource.assert_no_overlap()
        if self.feed is not None:
            total = self.feed.messages_sent
            for member in self.participants:
                seqs = self.feed.delivered_seqs(member)
                if seqs != list(range(1, total + 1)):
                    failures.append(
                        f"multicast: {member} saw {len(seqs)} of "
                        f"{total} messages exactly-once in order"
                    )
        return failures

    def _deliveries(self) -> int:
        if self.group is not None:
            return self.group.stats.deliveries
        if self.messenger is not None:
            return len(self.messenger.delivered)
        if self.feed is not None:
            return sum(
                len(self.feed.delivered_seqs(member))
                for member in self.participants
            )
        return 0

    def workload_stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {"kind": self.spec.workload["kind"]}
        if self.workload is not None:
            for attr in ("issued", "completed", "dropped", "sent"):
                value = getattr(self.workload, attr, None)
                if value is not None:
                    stats[attr] = value
        if self.traffic is not None:
            stats["sent"] = self.sent
        if self.resource is not None:
            stats["accesses"] = self.resource.access_count
        if self.group is not None:
            stats["deliveries"] = self.group.stats.deliveries
            stats["moves"] = self.group.stats.moves
        if self.messenger is not None:
            stats["delivered"] = len(self.messenger.delivered)
            stats["missed"] = len(self.messenger.missed)
        if self.feed is not None:
            stats["multicast_sent"] = self.feed.messages_sent
        if self.mutex is not None and hasattr(self.mutex,
                                              "regenerations"):
            stats["token_regenerations"] = self.mutex.regenerations
        return stats


def run_scenario(spec: ScenarioSpec,
                 seed: Optional[int] = None,
                 monitor_mode: str = "event") -> ScenarioResult:
    """Execute one scenario and return its result.

    Args:
        spec: a validated scenario.
        seed: override for the spec's own seed (certification sweeps).
        monitor_mode: monitor dispatch strategy forwarded to
            :class:`Simulation` -- ``"batched"`` runs the same exact
            monitors through the ledger/drain pipeline (the
            equivalence gate exercises both).
    """
    seed = spec.seed if seed is None else seed
    started = time.perf_counter()
    run = _Run(spec, seed, monitor_mode=monitor_mode)
    run.wire_workload()
    run.wire_churn()
    run.schedule_events()
    events = run.execute()
    run.sim.monitor_hub.finalize()
    failures = run.evaluate()
    report = build_report(
        spec, seed, run.sim, run.workload_stats(),
        wall_time_s=time.perf_counter() - started,
    )
    return ScenarioResult(spec=spec, seed=seed, report=report,
                          events=events, failures=failures)


def certify(spec: ScenarioSpec, seeds) -> List[ScenarioResult]:
    """Run ``spec`` once per seed; the pack's certification gate.

    The scenario is certified when every returned result is ``ok``.
    """
    return [run_scenario(spec, seed=seed) for seed in seeds]
