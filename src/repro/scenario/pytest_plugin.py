"""Pytest integration: every pack scenario is a parametrized test.

Load it from a ``conftest.py``::

    pytest_plugins = ["repro.scenario.pytest_plugin"]

Any test that takes the ``scenario_spec`` fixture is parametrized over
the whole built-in pack (one test id per scenario name); the
``scenario_seed`` fixture resolves the run seed, honouring the same
``REPRO_CHAOS_SEED`` environment variable the chaos suites use so CI
seed sweeps cover the pack too.
Part of the declarative chaos-scenario platform (ROADMAP chaos arc).
"""

from __future__ import annotations

import os

import pytest

from repro.scenario.registry import builtin_registry

__all__ = ["scenario_seed"]


def pytest_generate_tests(metafunc) -> None:
    if "scenario_spec" in metafunc.fixturenames:
        specs = builtin_registry().specs()
        metafunc.parametrize(
            "scenario_spec", specs, ids=[spec.name for spec in specs]
        )


@pytest.fixture
def scenario_seed() -> int:
    """Seed for scenario runs; ``REPRO_CHAOS_SEED`` overrides."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "7"))
