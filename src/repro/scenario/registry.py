"""The scenario registry and the built-in pack.

A :class:`ScenarioRegistry` maps names to validated
:class:`~repro.scenario.spec.ScenarioSpec` objects and answers
tag-filtered queries; :func:`builtin_registry` loads the shipped pack
from ``src/repro/scenario/pack/*.json`` exactly once per process.
Part of the declarative chaos-scenario platform (ROADMAP chaos arc).
"""

from __future__ import annotations

import glob
import os
from typing import Dict, Iterable, List, Optional

from repro.errors import ConfigurationError
from repro.scenario.loader import load_file
from repro.scenario.spec import ScenarioSpec

__all__ = ["ScenarioRegistry", "builtin_registry", "pack_dir"]


def pack_dir() -> str:
    """Directory holding the shipped scenario JSON files."""
    return os.path.join(os.path.dirname(__file__), "pack")


class ScenarioRegistry:
    """A named, tag-queryable collection of scenario specs."""

    def __init__(self, specs: Iterable[ScenarioSpec] = ()) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ScenarioSpec) -> None:
        if spec.name in self._specs:
            raise ConfigurationError(
                f"duplicate scenario name {spec.name!r}"
            )
        self._specs[spec.name] = spec

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; options: "
                f"{', '.join(self.names())}"
            ) from None

    def names(self, tag: Optional[str] = None) -> List[str]:
        """Scenario names, optionally restricted to one tag."""
        return sorted(
            name
            for name, spec in self._specs.items()
            if tag is None or spec.has_tag(tag)
        )

    def specs(self, tag: Optional[str] = None) -> List[ScenarioSpec]:
        """Specs in name order, optionally restricted to one tag."""
        return [self._specs[name] for name in self.names(tag)]

    def tags(self) -> List[str]:
        """Every tag used by at least one scenario."""
        out = set()
        for spec in self._specs.values():
            out.update(spec.tags)
        return sorted(out)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs


_BUILTIN: Optional[ScenarioRegistry] = None


def builtin_registry() -> ScenarioRegistry:
    """The shipped scenario pack, loaded once per process."""
    global _BUILTIN
    if _BUILTIN is None:
        registry = ScenarioRegistry()
        for path in sorted(glob.glob(os.path.join(pack_dir(), "*.json"))):
            registry.register(load_file(path))
        _BUILTIN = registry
    return _BUILTIN
