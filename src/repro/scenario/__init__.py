"""Declarative chaos scenarios (spec, loader, registry, runner).

One scenario is one JSON-shaped dict: topology, workload, mobility and
disconnection churn, scheduled mass events (flash crowds, tunnels,
stadium egress, diurnal rate changes), a
:class:`~repro.faults.FaultPlan`, monitor deadlines and
expected-outcome assertions.  The loader validates it, the registry
names it, the runner executes it under the full invariant-monitor
suite, and the report captures what happened as structured JSON.

The shipped pack (``repro/scenario/pack/*.json``) is certified in CI:
every scenario tagged ``chaos`` must finish with zero invariant
violations across at least three seeds.

Quick start::

    from repro.scenario import builtin_registry, run_scenario

    spec = builtin_registry().get("partition_heal_storm")
    result = run_scenario(spec, seed=7)
    assert result.ok, result.failures
Stress-certifies the paper's invariants under churn (ROADMAP chaos-scenario arc).
"""

from repro.scenario.loader import load_file, load_spec
from repro.scenario.registry import (
    ScenarioRegistry,
    builtin_registry,
    pack_dir,
)
from repro.scenario.report import build_report, render_summary
from repro.scenario.runner import ScenarioResult, certify, run_scenario
from repro.scenario.spec import (
    EVENT_KINDS,
    MOBILITY_KINDS,
    MUTEX_ALGORITHMS,
    SCHEMA_VERSION,
    WORKLOAD_KINDS,
    ScenarioSpec,
)

__all__ = [
    "EVENT_KINDS",
    "MOBILITY_KINDS",
    "MUTEX_ALGORITHMS",
    "SCHEMA_VERSION",
    "WORKLOAD_KINDS",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "build_report",
    "builtin_registry",
    "certify",
    "load_file",
    "load_spec",
    "pack_dir",
    "render_summary",
    "run_scenario",
]
