"""Loading and validating declarative scenario specs.

:func:`load_spec` turns a plain dict (parsed JSON/YAML, or written
inline in a test) into a validated :class:`~repro.scenario.spec.
ScenarioSpec`; :func:`load_file` reads one from disk.  Every validation
failure raises :class:`~repro.errors.ConfigurationError` with the
scenario name and the offending key in the message -- a scenario pack
is configuration, and configuration errors must point at the line to
fix, not at a traceback inside the runner.
Part of the declarative chaos-scenario platform (ROADMAP chaos arc).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.scenario.spec import (
    EVENT_KINDS,
    MOBILITY_KINDS,
    MUTEX_ALGORITHMS,
    WORKLOAD_KINDS,
    ScenarioSpec,
)

__all__ = ["load_spec", "load_file"]

_TOP_LEVEL_KEYS = {
    "name", "title", "description", "tags",
    "n_mss", "n_mh", "seed", "placement", "search",
    "duration", "settle",
    "workload", "mobility", "disconnects", "events",
    "faults", "monitors", "expect",
    # tolerated metadata for hand-written files
    "schema_version",
}

_GROUP_STRATEGIES = ("pure_search", "always_inform", "location_view")
_PROXY_POLICIES = ("fixed", "local", "adaptive")
_SEARCHES = ("abstract", "broadcast", "home-agent", "caching", "regional")
_PLACEMENTS = ("round_robin", "single_cell", "random")

_MONITOR_KEYS = {"request_deadline", "token_deadline", "health_interval"}
_EXPECT_KEYS = {
    "min_completed", "all_requests_served", "min_accesses",
    "min_deliveries", "min_sent", "min_faults", "max_gave_up",
}


class _Check:
    """Validation helpers that prefix every error with the scenario."""

    def __init__(self, name: str) -> None:
        self.name = name

    def fail(self, message: str) -> None:
        raise ConfigurationError(f"scenario {self.name!r}: {message}")

    def number(self, where: str, value, minimum=None,
               maximum=None, allow_none: bool = False):
        if value is None and allow_none:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.fail(f"{where} must be a number, got {value!r}")
        if minimum is not None and value < minimum:
            self.fail(f"{where} must be >= {minimum}, got {value}")
        if maximum is not None and value > maximum:
            self.fail(f"{where} must be <= {maximum}, got {value}")
        return value

    def integer(self, where: str, value, minimum=None):
        if isinstance(value, bool) or not isinstance(value, int):
            self.fail(f"{where} must be an integer, got {value!r}")
        if minimum is not None and value < minimum:
            self.fail(f"{where} must be >= {minimum}, got {value}")
        return value

    def boolean(self, where: str, value):
        if not isinstance(value, bool):
            self.fail(f"{where} must be a boolean, got {value!r}")
        return value

    def choice(self, where: str, value, options):
        if value not in options:
            self.fail(
                f"{where} must be one of {sorted(options)}, got {value!r}"
            )
        return value

    def mapping(self, where: str, value) -> Dict[str, Any]:
        if not isinstance(value, dict):
            self.fail(f"{where} must be an object, got "
                      f"{type(value).__name__}")
        return value

    def known_keys(self, where: str, value: Dict[str, Any], known) -> None:
        unknown = set(value) - set(known)
        if unknown:
            self.fail(
                f"{where} has unknown keys {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )


def _validate_workload(check: _Check, data: Dict[str, Any]) -> Dict:
    workload = dict(check.mapping("workload", data))
    kind = workload.get("kind", "none")
    check.choice("workload.kind", kind, WORKLOAD_KINDS)
    workload["kind"] = kind
    if kind == "mutex":
        check.known_keys("workload", workload, {
            "kind", "algorithm", "request_rate", "cs_duration",
            "token_timeout", "max_traversals", "malicious_mhs",
        })
        algorithm = workload.setdefault("algorithm", "L2")
        check.choice("workload.algorithm", algorithm, MUTEX_ALGORITHMS)
        rate = workload.get("request_rate")
        if algorithm in ("L1", "R1"):
            if rate is not None:
                check.fail(
                    f"workload.request_rate is not supported for "
                    f"{algorithm} (no completion hook); schedule "
                    f"explicit 'request' events instead"
                )
        else:
            check.number("workload.request_rate",
                         workload.setdefault("request_rate", 0.05),
                         minimum=1e-9)
        check.number("workload.cs_duration",
                     workload.setdefault("cs_duration", 1.0),
                     minimum=1e-9)
        check.number("workload.token_timeout",
                     workload.setdefault("token_timeout", 30.0),
                     minimum=1e-9)
        if workload.get("max_traversals") is not None:
            check.integer("workload.max_traversals",
                          workload["max_traversals"], minimum=1)
        malicious = workload.setdefault("malicious_mhs", [])
        if not isinstance(malicious, list):
            check.fail("workload.malicious_mhs must be a list of MH "
                       "indices")
        for index in malicious:
            check.integer("workload.malicious_mhs[]", index, minimum=0)
        if malicious and not algorithm.startswith("R2"):
            check.fail("workload.malicious_mhs requires an R2-family "
                       "algorithm")
    elif kind == "groups":
        check.known_keys("workload", workload, {
            "kind", "strategy", "group_size", "message_rate",
        })
        check.choice("workload.strategy",
                     workload.setdefault("strategy", "location_view"),
                     _GROUP_STRATEGIES)
        check.integer("workload.group_size",
                      workload.setdefault("group_size", 6), minimum=2)
        check.number("workload.message_rate",
                     workload.setdefault("message_rate", 0.05),
                     minimum=1e-9)
    elif kind == "multicast":
        check.known_keys("workload", workload, {
            "kind", "group_size", "message_rate", "gc",
        })
        check.integer("workload.group_size",
                      workload.setdefault("group_size", 6), minimum=2)
        check.number("workload.message_rate",
                     workload.setdefault("message_rate", 0.05),
                     minimum=1e-9)
        check.boolean("workload.gc", workload.setdefault("gc", True))
    elif kind == "proxy":
        check.known_keys("workload", workload, {
            "kind", "policy", "message_rate",
        })
        check.choice("workload.policy",
                     workload.setdefault("policy", "adaptive"),
                     _PROXY_POLICIES)
        check.number("workload.message_rate",
                     workload.setdefault("message_rate", 0.05),
                     minimum=1e-9)
    else:  # none
        check.known_keys("workload", workload, {"kind"})
    return workload


def _validate_mobility(check: _Check, data) -> Optional[Dict]:
    if data is None:
        return None
    mobility = dict(check.mapping("mobility", data))
    kind = mobility.setdefault("kind", "uniform")
    check.choice("mobility.kind", kind, MOBILITY_KINDS)
    if kind == "none":
        check.known_keys("mobility", mobility, {"kind"})
        return None
    check.number("mobility.rate", mobility.get("rate"), minimum=1e-9)
    if kind == "uniform":
        check.known_keys("mobility", mobility, {"kind", "rate"})
    else:  # localized
        check.known_keys("mobility", mobility, {
            "kind", "rate", "home_cells", "escape_probability",
        })
        check.integer("mobility.home_cells",
                      mobility.setdefault("home_cells", 2), minimum=1)
        check.number("mobility.escape_probability",
                     mobility.setdefault("escape_probability", 0.0),
                     minimum=0.0, maximum=1.0)
    return mobility


def _validate_disconnects(check: _Check, data) -> Optional[Dict]:
    if data is None:
        return None
    disconnects = dict(check.mapping("disconnects", data))
    check.known_keys("disconnects", disconnects, {
        "rate", "downtime", "supply_prev",
    })
    check.number("disconnects.rate", disconnects.get("rate"),
                 minimum=1e-9)
    check.number("disconnects.downtime", disconnects.get("downtime"),
                 minimum=1e-9)
    check.boolean("disconnects.supply_prev",
                  disconnects.setdefault("supply_prev", True))
    return disconnects


def _validate_event(check: _Check, event, index: int,
                    spec_fields: Dict[str, Any]) -> Dict:
    where = f"events[{index}]"
    event = dict(check.mapping(where, event))
    kind = event.get("kind")
    check.choice(f"{where}.kind", kind, EVENT_KINDS)
    check.number(f"{where}.at", event.get("at"), minimum=0.0)
    n_mss = spec_fields["n_mss"]
    n_mh = spec_fields["n_mh"]
    if kind == "mass_disconnect":
        check.known_keys(where, event, {
            "kind", "at", "fraction", "downtime", "supply_prev",
            "reconnect_spread",
        })
        check.number(f"{where}.fraction",
                     event.setdefault("fraction", 1.0),
                     minimum=1e-9, maximum=1.0)
        check.number(f"{where}.downtime", event.get("downtime"),
                     minimum=1e-9)
        check.boolean(f"{where}.supply_prev",
                      event.setdefault("supply_prev", True))
        check.number(f"{where}.reconnect_spread",
                     event.setdefault("reconnect_spread", 0.0),
                     minimum=0.0)
    elif kind == "converge":
        check.known_keys(where, event, {
            "kind", "at", "cell", "fraction", "spread",
        })
        cell = check.integer(f"{where}.cell", event.get("cell"),
                             minimum=0)
        if cell >= n_mss:
            check.fail(f"{where}.cell {cell} out of range for "
                       f"n_mss={n_mss}")
        check.number(f"{where}.fraction",
                     event.setdefault("fraction", 1.0),
                     minimum=1e-9, maximum=1.0)
        check.number(f"{where}.spread", event.setdefault("spread", 0.0),
                     minimum=0.0)
    elif kind == "scatter":
        check.known_keys(where, event, {
            "kind", "at", "from_cell", "spread",
        })
        if event.get("from_cell") is not None:
            cell = check.integer(f"{where}.from_cell",
                                 event["from_cell"], minimum=0)
            if cell >= n_mss:
                check.fail(f"{where}.from_cell {cell} out of range for "
                           f"n_mss={n_mss}")
        else:
            event["from_cell"] = None
        check.number(f"{where}.spread", event.setdefault("spread", 0.0),
                     minimum=0.0)
    elif kind == "move":
        check.known_keys(where, event, {"kind", "at", "mh", "cell"})
        mh = check.integer(f"{where}.mh", event.get("mh"), minimum=0)
        if mh >= n_mh:
            check.fail(f"{where}.mh {mh} out of range for n_mh={n_mh}")
        cell = check.integer(f"{where}.cell", event.get("cell"),
                             minimum=0)
        if cell >= n_mss:
            check.fail(f"{where}.cell {cell} out of range for "
                       f"n_mss={n_mss}")
    elif kind == "request":
        check.known_keys(where, event, {"kind", "at", "mh"})
        mh = check.integer(f"{where}.mh", event.get("mh"), minimum=0)
        if mh >= n_mh:
            check.fail(f"{where}.mh {mh} out of range for n_mh={n_mh}")
        if spec_fields["workload"]["kind"] != "mutex":
            check.fail(f"{where}: 'request' events need a mutex "
                       f"workload")
    else:  # set_rate
        check.known_keys(where, event, {
            "kind", "at", "workload_rate", "mobility_rate",
        })
        if ("workload_rate" not in event
                and "mobility_rate" not in event):
            check.fail(f"{where}: set_rate needs workload_rate and/or "
                       f"mobility_rate")
        if "workload_rate" in event:
            check.number(f"{where}.workload_rate",
                         event["workload_rate"], minimum=1e-9)
            if spec_fields["workload"]["kind"] in ("none", "mutex") and \
                    spec_fields["workload"].get("algorithm") in ("L1",
                                                                 "R1"):
                check.fail(f"{where}: workload has no adjustable rate")
            if spec_fields["workload"]["kind"] == "none":
                check.fail(f"{where}: workload has no adjustable rate")
        if "mobility_rate" in event:
            check.number(f"{where}.mobility_rate",
                         event["mobility_rate"], minimum=1e-9)
            if spec_fields["mobility"] is None:
                check.fail(f"{where}: no mobility model to re-rate")
    return event


def _validate_expect(check: _Check, data) -> Dict[str, Any]:
    expect = dict(check.mapping("expect", data))
    check.known_keys("expect", expect, _EXPECT_KEYS)
    for key in ("min_completed", "min_accesses", "min_deliveries",
                "min_sent", "max_gave_up"):
        if key in expect:
            check.integer(f"expect.{key}", expect[key], minimum=0)
    if "all_requests_served" in expect:
        check.boolean("expect.all_requests_served",
                      expect["all_requests_served"])
    if "min_faults" in expect:
        min_faults = check.mapping("expect.min_faults",
                                   expect["min_faults"])
        for name, count in min_faults.items():
            check.integer(f"expect.min_faults[{name!r}]", count,
                          minimum=1)
    return expect


def load_spec(data: Dict[str, Any]) -> ScenarioSpec:
    """Validate a plain dict into a :class:`ScenarioSpec`.

    Raises :class:`~repro.errors.ConfigurationError` with the scenario
    name and offending key on any problem.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"scenario spec must be an object, got "
            f"{type(data).__name__}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            "scenario spec needs a nonempty string 'name'"
        )
    check = _Check(name)
    check.known_keys("spec", data, _TOP_LEVEL_KEYS)

    tags = data.get("tags", [])
    if isinstance(tags, str) or not hasattr(tags, "__iter__"):
        check.fail("tags must be a list of strings")
    tags = tuple(tags)
    for tag in tags:
        if not isinstance(tag, str) or not tag:
            check.fail(f"tags must be nonempty strings, got {tag!r}")

    n_mss = check.integer("n_mss", data.get("n_mss", 4), minimum=1)
    n_mh = check.integer("n_mh", data.get("n_mh", 8), minimum=0)
    seed = check.integer("seed", data.get("seed", 0))
    duration = check.number("duration", data.get("duration", 200.0),
                            minimum=1e-9)
    settle = check.number("settle", data.get("settle", 400.0),
                          minimum=0.0)

    placement = data.get("placement", "round_robin")
    if isinstance(placement, str):
        check.choice("placement", placement, _PLACEMENTS)
    elif isinstance(placement, list):
        if len(placement) != n_mh:
            check.fail(
                f"placement lists {len(placement)} cells for "
                f"{n_mh} MHs"
            )
        for cell in placement:
            check.integer("placement[]", cell, minimum=0)
    else:
        check.fail(f"placement must be a name or a list of cell "
                   f"indices, got {placement!r}")
    search = check.choice("search", data.get("search", "abstract"),
                          _SEARCHES)

    workload = _validate_workload(check, data.get("workload",
                                                  {"kind": "none"}))
    mobility = _validate_mobility(check, data.get("mobility"))
    disconnects = _validate_disconnects(check, data.get("disconnects"))

    spec_fields = {"n_mss": n_mss, "n_mh": n_mh, "workload": workload,
                   "mobility": mobility}
    raw_events = data.get("events", [])
    if isinstance(raw_events, (str, dict)) or not hasattr(
        raw_events, "__iter__"
    ):
        check.fail("events must be a list of objects")
    events = tuple(
        _validate_event(check, event, i, spec_fields)
        for i, event in enumerate(raw_events)
    )

    faults = None
    if data.get("faults") is not None:
        try:
            faults = FaultPlan.from_dict(
                check.mapping("faults", data["faults"])
            )
        except ConfigurationError as exc:
            check.fail(f"faults: {exc}")

    monitors = dict(check.mapping("monitors", data.get("monitors", {})))
    check.known_keys("monitors", monitors, _MONITOR_KEYS)
    for key, value in monitors.items():
        check.number(f"monitors.{key}", value, minimum=1e-9)

    expect = _validate_expect(check, data.get("expect", {}))

    title = data.get("title", "")
    description = data.get("description", "")
    for field_name, value in (("title", title),
                              ("description", description)):
        if not isinstance(value, str):
            check.fail(f"{field_name} must be a string")

    return ScenarioSpec(
        name=name,
        title=title,
        description=description,
        tags=tags,
        n_mss=n_mss,
        n_mh=n_mh,
        seed=seed,
        placement=placement,
        search=search,
        duration=duration,
        settle=settle,
        workload=workload,
        mobility=mobility,
        disconnects=disconnects,
        events=events,
        faults=faults,
        monitors=monitors,
        expect=expect,
    )


def load_file(path: str) -> ScenarioSpec:
    """Read one scenario spec from a JSON (or YAML) file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml  # type: ignore
        except ImportError:
            raise ConfigurationError(
                f"{path}: YAML scenario files need PyYAML installed; "
                f"use JSON instead"
            ) from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"{os.path.basename(path)}: not valid JSON: {exc}"
            ) from None
    try:
        return load_spec(data)
    except ConfigurationError as exc:
        raise ConfigurationError(
            f"{os.path.basename(path)}: {exc}"
        ) from None
