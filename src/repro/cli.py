"""Command-line interface: run mobile-system scenarios from a shell.

Three subcommands, one per section of the paper::

    python -m repro mutex  --algorithm L2 --n-mss 6 --n-mh 20 \
        --request-rate 0.05 --move-rate 0.02 --duration 500
    python -m repro groups --strategy location_view --group-size 8 \
        --message-rate 0.05 --move-rate 0.01 --duration 1000
    python -m repro proxy  --policy adaptive --move-rate 0.05 \
        --message-rate 0.05 --duration 1000

plus ``multicast`` (the paper's reference [1]), ``compare`` (measured
vs predicted costs), ``trace`` (run a canonical traced scenario and
export it as a Mermaid diagram, JSONL, or Chrome trace JSON -- see
``docs/cli.md``) and ``perf`` (the benchmark harness -- see
``docs/performance.md``).

Each prints a summary of what happened plus the cost report in the
paper's currency.  All runs are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import random
from typing import List, Optional

from repro.facade import Simulation
from repro.groups import (
    AlwaysInformGroup,
    LocationViewGroup,
    PureSearchGroup,
)
from repro.metrics import CostModel
from repro.mobility import UniformMobility
from repro.mutex import CriticalResource, L1Mutex, L2Mutex, R1Mutex, R2Mutex
from repro.mutex.r2 import R2Variant
from repro.proxy import (
    AdaptiveProxyPolicy,
    FixedProxyPolicy,
    LocalProxyPolicy,
    ProxiedMessenger,
    ProxyManager,
)
from repro.sim import PoissonProcess
from repro.workload import GroupMessagingWorkload, MutexWorkload

GROUP_STRATEGIES = {
    "pure_search": PureSearchGroup,
    "always_inform": AlwaysInformGroup,
    "location_view": LocationViewGroup,
}

PROXY_POLICIES = {
    "fixed": FixedProxyPolicy,
    "local": LocalProxyPolicy,
    "adaptive": AdaptiveProxyPolicy,
}

MUTEX_ALGORITHMS = ("L1", "L2", "R1", "R2", "R2'", "R2''")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Run scenarios from 'Structuring Distributed Algorithms "
            "for Mobile Hosts' (ICDCS 1994)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n-mss", type=int, default=6,
                       help="number of support stations (M)")
        p.add_argument("--n-mh", type=int, default=12,
                       help="number of mobile hosts (N)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--duration", type=float, default=500.0,
                       help="simulated time to run")
        p.add_argument("--move-rate", type=float, default=0.0,
                       help="moves per MH per time unit")
        p.add_argument("--search", default="abstract",
                       choices=["abstract", "broadcast", "home-agent",
                                "caching"])
        p.add_argument("--c-fixed", type=float, default=1.0)
        p.add_argument("--c-wireless", type=float, default=5.0)
        p.add_argument("--c-search", type=float, default=10.0)
        p.add_argument(
            "--fault-plan", default=None, metavar="PATH_OR_JSON",
            help="fault plan to run under: path to a JSON file, or an "
                 "inline JSON object (starts with '{')",
        )
        p.add_argument(
            "--recovery", default=None, metavar="POLICY",
            help="checkpointing policy for crash recovery: 'none', "
                 "'per-message', 'periodic:<interval>', or "
                 "'distance:<cells>' (Khatri-style; see "
                 "docs/system-model.md)",
        )

    mutex = sub.add_parser(
        "mutex", help="distributed mutual exclusion (Section 3)"
    )
    common(mutex)
    mutex.add_argument("--algorithm", default="L2",
                       choices=MUTEX_ALGORITHMS)
    mutex.add_argument("--request-rate", type=float, default=0.05,
                       help="requests per MH per time unit")
    mutex.add_argument("--cs-duration", type=float, default=0.5)

    groups = sub.add_parser(
        "groups", help="group location management (Section 4)"
    )
    common(groups)
    groups.add_argument("--strategy", default="location_view",
                        choices=sorted(GROUP_STRATEGIES))
    groups.add_argument("--group-size", type=int, default=6)
    groups.add_argument("--message-rate", type=float, default=0.05,
                        help="group messages per time unit")

    proxy = sub.add_parser(
        "proxy", help="the proxy framework (Section 5)"
    )
    common(proxy)
    proxy.add_argument("--policy", default="fixed",
                       choices=sorted(PROXY_POLICIES))
    proxy.add_argument("--message-rate", type=float, default=0.05,
                       help="MH-to-MH letters per time unit")

    multicast = sub.add_parser(
        "multicast",
        help="exactly-once multicast (the paper's reference [1])",
    )
    common(multicast)
    multicast.add_argument("--group-size", type=int, default=6)
    multicast.add_argument("--message-rate", type=float, default=0.05)
    multicast.add_argument("--no-gc", action="store_true",
                           help="disable buffer garbage collection")

    compare = sub.add_parser(
        "compare",
        help="reproduce the paper's headline comparisons, "
             "measured vs predicted",
    )
    common(compare)
    compare.add_argument(
        "--experiment", default="all",
        choices=["all", "lamport", "ring", "groups", "recovery"],
        help="which comparison to run (default: all)",
    )

    trace = sub.add_parser(
        "trace",
        help="run a canonical traced scenario and export its trace",
    )
    trace.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="scenario to run (see --list)",
    )
    trace.add_argument(
        "--format", default="summary", dest="fmt",
        choices=["summary", "mermaid", "jsonl", "chrome"],
        help="output format: human summary, Mermaid sequence diagram, "
             "JSON Lines, or Chrome trace_event JSON (Perfetto)",
    )
    trace.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the export to PATH instead of stdout",
    )
    trace.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the available scenarios and exit",
    )

    monitor = sub.add_parser(
        "monitor",
        help="run scenarios under the invariant monitors and report "
             "violations",
    )
    monitor.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="scenario to certify (default: all; see --list)",
    )
    monitor.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the available scenarios and exit",
    )
    monitor.add_argument(
        "--request-deadline", type=float, default=200.0,
        help="liveness watchdog: max sim-time age of an unserved "
             "request (default 200)",
    )
    monitor.add_argument(
        "--token-deadline", type=float, default=120.0,
        help="liveness watchdog: max sim-time without a token arrival "
             "while requests pend (default 120)",
    )
    monitor.add_argument(
        "--health-interval", type=float, default=25.0,
        help="sim-time between health gauge samples (default 25)",
    )
    monitor.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="write the health time-series as JSONL to PATH",
    )
    monitor.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write the final health sample as Prometheus text to PATH",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="run the declarative chaos-scenario pack under the "
             "invariant monitors (see docs/scenarios.md)",
    )
    scenarios.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="run one scenario (default: all matching --tag)",
    )
    scenarios.add_argument(
        "--tag", default=None, metavar="TAG",
        help="restrict to scenarios carrying TAG (e.g. 'chaos')",
    )
    scenarios.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated seeds to certify across "
             "(default: each scenario's own seed)",
    )
    scenarios.add_argument(
        "--report-dir", default=None, metavar="DIR",
        help="write one structured JSON report per run into DIR",
    )
    scenarios.add_argument(
        "--file", default=None, metavar="PATH",
        help="run a scenario spec from PATH instead of the built-in "
             "pack",
    )
    scenarios.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the pack (names, tags, titles) and exit",
    )

    scale = sub.add_parser(
        "scale",
        help="drive an array-backed population at large N "
             "(see docs/scaling.md)",
    )
    scale.add_argument("--n-mss", type=int, default=16,
                       help="number of support stations (M)")
    scale.add_argument("--n-mh", type=int, default=10_000,
                       help="population size N (array-backed)")
    scale.add_argument("--seed", type=int, default=0)
    scale.add_argument("--duration", type=float, default=200.0,
                       help="simulated time to run")
    scale.add_argument("--tick", type=float, default=10.0,
                       help="sim-time between crowd churn waves")
    scale.add_argument("--move-fraction", type=float, default=0.01,
                       help="fraction of the passive crowd moved per "
                            "tick")
    scale.add_argument("--disconnect-fraction", type=float,
                       default=0.002)
    scale.add_argument("--reconnect-fraction", type=float, default=0.5)
    scale.add_argument("--n-active", type=int, default=8,
                       help="promoted hosts running real L2 mutex "
                            "traffic")
    scale.add_argument("--max-active", type=int, default=None,
                       help="soft cap on promoted hosts "
                            "(default 1024)")

    serve = sub.add_parser(
        "serve",
        help="run a monitored soak workload and serve live telemetry "
             "over HTTP (/metrics, /health, /invariants)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default loopback)")
    serve.add_argument("--port", type=int, default=8077,
                       help="TCP port; 0 picks a free one")
    serve.add_argument("--n-mss", type=int, default=6)
    serve.add_argument("--n-mh", type=int, default=40)
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument("--duration", type=float, default=0.0,
                       help="simulated time to run; 0 means soak "
                            "until interrupted")
    serve.add_argument("--quantum", type=float, default=50.0,
                       help="sim-time advanced per serve-loop step; "
                            "the ledger drains between steps so "
                            "scrapes stay fresh")
    serve.add_argument("--request-rate", type=float, default=0.05,
                       help="mutex requests per MH per time unit")
    serve.add_argument("--move-rate", type=float, default=0.02,
                       help="moves per MH per time unit")
    serve.add_argument("--linger", type=float, default=0.0,
                       help="wall-clock seconds to keep serving after "
                            "a bounded --duration run completes")
    serve.add_argument("--monitor-mode", default="batched",
                       choices=["event", "batched"],
                       help="monitor dispatch strategy (default "
                            "batched; see docs/observability.md)")

    perf = sub.add_parser(
        "perf",
        help="measure events/sec on the curated perf scenarios",
    )
    perf.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="scenario to measure (default: all; see --list)",
    )
    perf.add_argument(
        "--repeats", type=int, default=3,
        help="repeats per scenario, best-of (default 3)",
    )
    perf.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the available scenarios and exit",
    )
    perf.add_argument(
        "--compare", default=None, metavar="BENCH",
        help="after measuring, print a per-scenario delta table "
             "against this BENCH_<n>.json record (speedup/regression "
             "%% and gate margins); exits 1 on a regression past the "
             "CI floor",
    )

    return parser


def _parse_fault_plan(spec: Optional[str]):
    if spec is None:
        return None
    from repro.errors import ConfigurationError
    from repro.faults import FaultPlan

    try:
        if spec.lstrip().startswith("{"):
            return FaultPlan.from_json(spec)
        return FaultPlan.load(spec)
    except (OSError, ValueError, ConfigurationError) as exc:
        raise SystemExit(f"--fault-plan: {exc}") from exc


def _parse_recovery(spec: Optional[str]):
    if spec is None:
        return None
    from repro.errors import ConfigurationError
    from repro.recovery import policy_from_spec

    try:
        return policy_from_spec(spec)
    except ConfigurationError as exc:
        raise SystemExit(f"--recovery: {exc}") from exc


def _build_sim(args) -> Simulation:
    return Simulation(
        n_mss=args.n_mss,
        n_mh=args.n_mh,
        seed=args.seed,
        cost_model=CostModel(
            c_fixed=args.c_fixed,
            c_wireless=args.c_wireless,
            c_search=args.c_search,
        ),
        search=args.search,
        fault_plan=_parse_fault_plan(getattr(args, "fault_plan", None)),
        recovery=_parse_recovery(getattr(args, "recovery", None)),
    )


def _maybe_mobility(sim: Simulation, args, mh_ids) -> Optional[object]:
    if args.move_rate <= 0:
        return None
    return UniformMobility(
        sim.network, mh_ids, args.move_rate,
        rng=random.Random(args.seed + 101),
    )


def _print_report(sim: Simulation, emit) -> None:
    report = sim.metrics.report(sim.cost_model)
    emit("")
    emit("message totals : "
         + ", ".join(f"{k}={v}" for k, v in report["totals"].items()))
    emit(f"total cost     : {report['cost_total']:.1f}")
    for scope in sorted(report["cost_by_scope"]):
        emit(f"  {scope:<16}: {report['cost_by_scope'][scope]:.1f}")
    emit(f"MH energy      : {report['energy_total']} wireless ops")
    if sim.recovery is not None:
        restored = [seq for (_, _, seq) in sim.recovery.restored]
        emit(f"checkpointing  : policy={sim.recovery.policy.name} "
             f"taken={sim.recovery.checkpoints_taken} "
             f"restored={len([s for s in restored if s >= 0])} "
             f"restarted={len([s for s in restored if s < 0])}")
    snap = sim.metrics.snapshot()
    if snap.faults or snap.recovery_times:
        from repro.metrics.render import fault_summary

        emit("")
        emit("fault events:")
        for line in fault_summary(snap).splitlines():
            emit(f"  {line}")


def _run_mutex(args, emit) -> int:
    sim = _build_sim(args)
    resource = CriticalResource(sim.scheduler)
    note_access = None
    if sim.recovery is not None:
        # Each completed access is one unit of recoverable work: the
        # policy decides when to checkpoint the counter, and a crash /
        # restore cycle shows up in the checkpointing report below.
        from repro.recovery import CounterClient

        access_counter = CounterClient(sim.recovery)
        note_access = access_counter.note_work
    name = args.algorithm
    if name == "L1":
        mutex = L1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=args.cs_duration,
                        on_complete=note_access)
    elif name == "L2":
        mutex = L2Mutex(sim.network, resource,
                        cs_duration=args.cs_duration,
                        on_complete=note_access)
    elif name == "R1":
        mutex = R1Mutex(sim.network, sim.mh_ids, resource,
                        cs_duration=args.cs_duration,
                        on_complete=note_access)
    else:
        variant = {
            "R2": R2Variant.PLAIN,
            "R2'": R2Variant.COUNTER,
            "R2''": R2Variant.TOKEN_LIST,
        }[name]
        mutex = R2Mutex(sim.network, resource, variant=variant,
                        cs_duration=args.cs_duration,
                        on_complete=note_access)
        mutex.start()

    if name in ("L1", "R1"):
        emit(f"note: {name} is a baseline; requests are issued once "
             f"up front (it has no completion-driven workload hook)")
        requesters = sim.mh_ids[: max(1, args.n_mh // 3)]
        for mh_id in requesters:
            if name == "L1":
                mutex.request(mh_id)
            else:
                mutex.want(mh_id)
        if name == "R1":
            mutex.start()
        workload = None
    else:
        workload = MutexWorkload(
            sim.network, mutex, sim.mh_ids, args.request_rate,
            rng=random.Random(args.seed + 7),
        )
    mobility = _maybe_mobility(sim, args, sim.mh_ids)

    sim.run(until=args.duration)
    if workload is not None:
        workload.stop()
    if mobility is not None:
        mobility.stop()
    if name in ("R2", "R2'", "R2''"):
        # Let in-flight requests finish, then stop the ring.
        issued = workload.issued if workload else 0
        deadline = sim.now + 20 * args.duration
        while (workload and workload.completed < issued
               and sim.now < deadline):
            sim.run(until=sim.now + 50.0)
        mutex.max_traversals = 0
        sim.run(until=sim.now + 200.0)
    elif name == "R1":
        # Stop the token at its next arrival at the ring head, else it
        # would circulate forever.
        mutex.max_traversals = 0
        sim.run(until=sim.now + 10 * args.duration)
    else:
        sim.drain()

    emit(f"algorithm      : {name}")
    emit(f"region accesses: {resource.access_count}")
    if workload is not None:
        emit(f"requests       : issued={workload.issued} "
             f"completed={workload.completed} "
             f"dropped={workload.dropped}")
    resource.assert_no_overlap()
    emit("safety         : verified (no overlapping accesses)")
    _print_report(sim, emit)
    return 0


def _run_groups(args, emit) -> int:
    if args.group_size > args.n_mh:
        raise SystemExit("--group-size cannot exceed --n-mh")
    sim = _build_sim(args)
    members = sim.mh_ids[: args.group_size]
    strategy = GROUP_STRATEGIES[args.strategy](sim.network, members)
    workload = GroupMessagingWorkload(
        sim.network, strategy, args.message_rate,
        rng=random.Random(args.seed + 7),
    )
    mobility = _maybe_mobility(sim, args, members)
    sim.run(until=args.duration)
    workload.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()

    stats = strategy.stats
    emit(f"strategy       : {args.strategy}")
    emit(f"group          : {len(members)} members")
    emit(f"MSG (messages) : {stats.messages}")
    emit(f"MOB (moves)    : {stats.moves}")
    emit(f"MOB/MSG ratio  : {stats.mobility_to_message_ratio:.2f}")
    if args.strategy == "location_view":
        emit(f"significant f  : {stats.significant_fraction:.2f}")
        emit(f"|LV| now/max   : {strategy.view_size()}"
             f"/{strategy.max_view_size}")
    emit(f"deliveries     : {stats.deliveries} "
         f"(missed in transients: {stats.missed})")
    if stats.messages:
        cost = sim.cost(strategy.scope)
        emit(f"effective cost : {cost / stats.messages:.1f} per message")
    _print_report(sim, emit)
    return 0


def _run_proxy(args, emit) -> int:
    sim = _build_sim(args)
    policy = PROXY_POLICIES[args.policy]()
    manager = ProxyManager(sim.network, policy, sim.mh_ids)
    messenger = ProxiedMessenger(manager)
    rng = random.Random(args.seed + 7)
    sent = [0]

    def send_one() -> None:
        src, dst = rng.sample(sim.mh_ids, 2)
        if sim.network.mobile_host(src).is_connected:
            sent[0] += 1
            messenger.send(src, dst, ("letter", sent[0]))

    traffic = PoissonProcess(sim.scheduler, args.message_rate, send_one,
                             rng=random.Random(args.seed + 8))
    mobility = _maybe_mobility(sim, args, sim.mh_ids)
    sim.run(until=args.duration)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()

    emit(f"policy         : {args.policy}")
    emit(f"letters        : sent={sent[0]} "
         f"delivered={len(messenger.delivered)} "
         f"missed={len(messenger.missed)}")
    if hasattr(policy, "inform_messages"):
        emit(f"informs        : {policy.inform_messages}")
    if hasattr(policy, "demotions"):
        emit(f"mode switches  : demotions={policy.demotions} "
             f"promotions={policy.promotions}")
    if sent[0]:
        emit(f"effective cost : {sim.cost('proxy') / sent[0]:.1f} "
             f"per letter")
    _print_report(sim, emit)
    return 0


def _run_multicast(args, emit) -> int:
    from repro.multicast import ExactlyOnceMulticast

    if args.group_size > args.n_mh:
        raise SystemExit("--group-size cannot exceed --n-mh")
    sim = _build_sim(args)
    members = sim.mh_ids[: args.group_size]
    feed = ExactlyOnceMulticast(sim.network, members, gc=not args.no_gc)
    rng = random.Random(args.seed + 7)
    sent = [0]

    def send_one() -> None:
        sender = rng.choice(members)
        if sim.network.mobile_host(sender).is_connected:
            sent[0] += 1
            feed.send(sender, ("m", sent[0]))

    traffic = PoissonProcess(sim.scheduler, args.message_rate, send_one,
                             rng=random.Random(args.seed + 8))
    mobility = _maybe_mobility(sim, args, members)
    sim.run(until=args.duration)
    traffic.stop()
    if mobility is not None:
        mobility.stop()
    sim.drain()

    total = feed.messages_sent
    exact = all(
        feed.delivered_seqs(member) == list(range(1, total + 1))
        for member in members
    )
    emit(f"group          : {len(members)} members")
    emit(f"messages       : {total}")
    emit(f"exactly once   : {exact} (every member, in total order)")
    peak = max(feed.buffer_size(mss_id) for mss_id in sim.mss_ids)
    emit(f"buffered now   : {peak} "
         + ("(GC disabled)" if args.no_gc else "(after GC)"))
    _print_report(sim, emit)
    return 0 if exact else 1


def _run_compare(args, emit) -> int:
    from repro.analysis import comparisons, formulas

    model = CostModel(
        c_fixed=args.c_fixed,
        c_wireless=args.c_wireless,
        c_search=args.c_search,
    )
    n = max(args.n_mh, 4)
    m = max(args.n_mss, 4)
    failures = 0

    def row(label: str, measured: float, predicted: float) -> None:
        nonlocal failures
        ok = abs(measured - predicted) < 1e-9
        if not ok:
            failures += 1
        emit(f"  {label:<34}{measured:>10.1f}{predicted:>11.1f}"
             f"   {'OK' if ok else 'MISMATCH'}")

    def fresh(n_mss, n_mh):
        return Simulation(n_mss=n_mss, n_mh=n_mh, seed=args.seed,
                          cost_model=model, search=args.search)

    if args.experiment in ("all", "lamport"):
        emit(f"== Lamport: L1 (N={n} MHs) vs L2 (M={m} MSSs) ==")
        emit(f"  {'quantity':<34}{'measured':>10}{'predicted':>11}")
        sim = fresh(n, n)  # one cell per MH: every message searches
        resource = CriticalResource(sim.scheduler)
        l1 = L1Mutex(sim.network, sim.mh_ids, resource)
        l1.request("mh-0")
        sim.drain()
        row("L1 cost / execution", sim.cost("L1"),
            formulas.l1_execution_cost(n, model))
        row("L1 total MH energy", sim.metrics.energy(),
            formulas.l1_energy_total(n))
        sim = fresh(m, n)
        resource = CriticalResource(sim.scheduler)
        l2 = L2Mutex(sim.network, resource)
        l2.request("mh-0")
        sim.mh(0).move_to(sim.mss_id(1))
        sim.drain()
        row("L2 cost / execution", sim.cost("L2"),
            formulas.l2_execution_cost(m, model))
        factor = comparisons.l1_vs_l2(n, m, model)
        emit(f"  winner: {factor.winner} by {factor.factor:.1f}x")
        emit("")

    if args.experiment in ("all", "ring"):
        emit(f"== Token ring: R1 (N={n}) vs R2 (M={m}), K=2 ==")
        emit(f"  {'quantity':<34}{'measured':>10}{'predicted':>11}")
        sim = fresh(n, n)
        resource = CriticalResource(sim.scheduler)
        r1 = R1Mutex(sim.network, sim.mh_ids, resource,
                     max_traversals=1)
        r1.want("mh-1")
        r1.want("mh-2")
        r1.start()
        sim.drain()
        row("R1 cost / traversal", sim.cost("R1"),
            formulas.r1_traversal_cost(n, model))
        sim = fresh(m, m)
        resource = CriticalResource(sim.scheduler)
        r2 = R2Mutex(sim.network, resource, max_traversals=1)
        before = sim.metrics.snapshot()
        for i in range(2):
            r2.request(f"mh-{i}")
        sim.drain()
        for i in range(2):
            sim.mh(i).move_to(sim.mss_id((i + 2) % m))
        sim.drain()
        r2.start()
        sim.drain()
        row("R2 cost / traversal (K=2)",
            sim.metrics.since(before).cost(model, "R2"),
            formulas.r2_traversal_cost(2, m, model))
        k_star = comparisons.r1_r2_crossover_k(n, m, model)
        emit(f"  crossover: R2 wins while K < {k_star:.1f}")
        emit("")

    if args.experiment in ("all", "groups"):
        g = min(5, n)
        emit(f"== Group strategies, one message, |G|={g} ==")
        emit(f"  {'quantity':<34}{'measured':>10}{'predicted':>11}")
        from repro.groups import (
            AlwaysInformGroup, LocationViewGroup, PureSearchGroup,
        )
        for label, cls, predicted in (
            ("pure search / message", PureSearchGroup,
             formulas.pure_search_message_cost(g, model)),
            ("always inform / message", AlwaysInformGroup,
             formulas.always_inform_message_cost(g, model)),
            ("location view / message", LocationViewGroup,
             formulas.location_view_message_cost(g, g, model)),
        ):
            sim = fresh(g + 2, g)
            group = cls(sim.network, sim.mh_ids)
            before = sim.metrics.snapshot()
            group.send("mh-0", "x")
            sim.drain()
            row(label, sim.metrics.since(before).cost(model, group.scope),
                predicted)
        ratio = comparisons.always_inform_vs_pure_search_ratio(model)
        emit(f"  always-inform beats pure search while "
             f"MOB/MSG < {ratio:.2f}")
        emit("")

    if args.experiment in ("all", "recovery"):
        from repro.recovery.bench import (
            DEFAULT_RUN_LENGTHS, run_length_table,
        )
        short_n, long_n = DEFAULT_RUN_LENGTHS
        emit(f"== Checkpoint policies: overhead vs recovery cost "
             f"({short_n}- vs {long_n}-move runs) ==")
        emit(f"  {'policy':<16}{'moves':>6}{'ckpts':>7}"
             f"{'ckpt cost':>11}{'restore cost':>14}{'work lost':>11}")
        rows = run_length_table(seed=args.seed, cost_model=model)
        for r in rows:
            emit(f"  {r.policy:<16}{r.n_moves:>6}{r.checkpoints:>7}"
                 f"{r.ckpt_cost:>11.1f}{r.restore_cost:>14.1f}"
                 f"{r.work_lost:>11}")
        by_policy = {}
        for r in rows:
            by_policy.setdefault(r.policy, {})[r.n_moves] = r
        dist = by_policy["distance:2"]
        independent = (
            dist[short_n].restore_cost == dist[long_n].restore_cost
        )
        if not independent:
            failures += 1
        emit(f"  distance-bounded restore cost independent of run "
             f"length: {dist[short_n].restore_cost:.1f} "
             f"{'==' if independent else '!='} "
             f"{dist[long_n].restore_cost:.1f}"
             f"   {'OK' if independent else 'MISMATCH'}")
        emit("")

    emit("all comparisons matched the paper's formulas"
         if failures == 0 else f"{failures} MISMATCHES")
    return 0 if failures == 0 else 1


def _run_trace(args, emit) -> int:
    from collections import Counter

    from repro.trace import to_chrome, to_jsonl, to_mermaid
    from repro.trace.scenarios import SCENARIOS, run_scenario

    if args.list_scenarios:
        for name, factory in SCENARIOS.items():
            emit(f"{name:<22} {(factory.__doc__ or '').splitlines()[0]}")
        return 0
    if args.scenario is None:
        raise SystemExit("trace: --scenario is required (see --list)")
    try:
        run = run_scenario(args.scenario)
    except KeyError as exc:
        raise SystemExit(f"trace: {exc.args[0]}") from exc

    if args.fmt == "mermaid":
        text = to_mermaid(run.events, title=run.title)
    elif args.fmt == "jsonl":
        text = to_jsonl(run.events)
    elif args.fmt == "chrome":
        text = to_chrome(run.events)
    else:
        by_type = Counter(e.etype for e in run.events)
        lines = [
            f"scenario       : {run.name} -- {run.title}",
            f"trace events   : {len(run.events)}",
        ]
        for etype, count in sorted(by_type.items()):
            lines.append(f"  {etype:<20}: {count}")
        lines.append("notes:")
        lines.extend(f"  - {note}" for note in run.notes)
        text = "\n".join(lines)

    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        emit(f"wrote {len(run.events)} events to {args.out} "
             f"({args.fmt})")
    else:
        for line in text.splitlines():
            emit(line)
    if args.fmt == "summary" and args.out is None:
        _print_report(run.sim, emit)
    return 0


def _run_monitor(args, emit) -> int:
    from repro.monitor import (
        HealthMonitor,
        LivenessMonitor,
        default_monitors,
        replay_events,
    )
    from repro.trace.scenarios import SCENARIOS, run_scenario

    if args.list_scenarios:
        for name, factory in SCENARIOS.items():
            emit(f"{name:<22} {(factory.__doc__ or '').splitlines()[0]}")
        return 0
    names = [args.scenario] if args.scenario else list(SCENARIOS)
    total_violations = 0
    last_health = None
    for name in names:
        try:
            run = run_scenario(name)
        except KeyError as exc:
            raise SystemExit(f"monitor: {exc.args[0]}") from exc
        monitors = default_monitors(
            request_deadline=args.request_deadline,
            token_deadline=args.token_deadline,
            health_interval=args.health_interval,
        )
        hub = replay_events(run.events, monitors,
                            network=run.sim.network)
        n = len(hub.violations)
        total_violations += n
        status = "ok" if n == 0 else f"{n} VIOLATION(S)"
        emit(f"{name:<22} {len(run.events):>5} events  "
             f"{len(hub.monitors)} monitors  {status}")
        for violation in hub.violations:
            emit(f"  {violation.monitor}: {violation.render()}")
        for monitor in hub.monitors:
            if isinstance(monitor, HealthMonitor):
                last_health = monitor
            if isinstance(monitor, LivenessMonitor):
                age = monitor.oldest_pending_age(run.sim.now)
                if age:
                    emit(f"  oldest pending request: {age:g}")
    if args.health_out is not None and last_health is not None:
        with open(args.health_out, "w", encoding="utf-8") as fh:
            fh.write(last_health.to_jsonl())
        emit(f"wrote {len(last_health.samples)} health samples to "
             f"{args.health_out}")
    if args.prom_out is not None and last_health is not None:
        with open(args.prom_out, "w", encoding="utf-8") as fh:
            fh.write(last_health.to_prometheus())
        emit(f"wrote Prometheus gauges to {args.prom_out}")
    if total_violations == 0:
        emit("all invariants held")
        return 0
    emit(f"{total_violations} invariant violation(s)")
    return 1


def _run_scenarios(args, emit) -> int:
    import json
    import os

    from repro.errors import ConfigurationError
    from repro.scenario import (
        builtin_registry,
        load_file,
        render_summary,
        run_scenario,
    )

    try:
        registry = builtin_registry()
    except ConfigurationError as exc:
        raise SystemExit(f"scenarios: {exc}") from exc

    if args.list_scenarios:
        for spec in registry.specs(args.tag):
            tags = ",".join(spec.tags)
            emit(f"{spec.name:<28} [{tags}] {spec.title}")
        return 0

    if args.file is not None:
        try:
            specs = [load_file(args.file)]
        except (OSError, ConfigurationError) as exc:
            raise SystemExit(f"scenarios: {exc}") from exc
    elif args.scenario is not None:
        try:
            specs = [registry.get(args.scenario)]
        except KeyError as exc:
            raise SystemExit(f"scenarios: {exc.args[0]}") from exc
    else:
        specs = registry.specs(args.tag)
        if not specs:
            raise SystemExit(
                f"scenarios: no scenario carries tag {args.tag!r}; "
                f"tags: {', '.join(registry.tags())}"
            )

    seeds = None
    if args.seeds is not None:
        try:
            seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        except ValueError:
            raise SystemExit(
                f"scenarios: --seeds must be comma-separated integers, "
                f"got {args.seeds!r}"
            ) from None
        if not seeds:
            raise SystemExit("scenarios: --seeds is empty")

    if args.report_dir is not None:
        os.makedirs(args.report_dir, exist_ok=True)
    results = []
    for spec in specs:
        for seed in (seeds if seeds is not None else [spec.seed]):
            result = run_scenario(spec, seed=seed)
            results.append(result)
            if args.report_dir is not None:
                path = os.path.join(
                    args.report_dir, f"{spec.name}-seed{seed}.json"
                )
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(result.report, fh, indent=2)
                    fh.write("\n")
    for line in render_summary(results):
        emit(line)
    if args.report_dir is not None:
        emit(f"wrote {len(results)} report(s) to {args.report_dir}")
    failed = [r for r in results if not r.ok]
    if failed:
        emit(f"{len(failed)} of {len(results)} run(s) FAILED "
             f"certification")
        return 1
    emit(f"all {len(results)} run(s) certified: every invariant held, "
         f"every expectation met")
    return 0


def _run_scale(args, emit) -> int:
    from repro.scale import CrowdChurn

    sim = Simulation(
        n_mss=args.n_mss,
        n_mh=args.n_mh,
        seed=args.seed,
        population_store=True,
        max_active=args.max_active,
    )
    churn = CrowdChurn(
        sim.population,
        sim.scheduler,
        tick=args.tick,
        move_fraction=args.move_fraction,
        disconnect_fraction=args.disconnect_fraction,
        reconnect_fraction=args.reconnect_fraction,
        rng=random.Random(args.seed + 31),
    )
    churn.start()
    resource = CriticalResource(sim.scheduler)
    workload = None
    if args.n_active > 0:
        mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
        active_ids = [sim.mh_id(i)
                      for i in range(min(args.n_active, args.n_mh))]
        workload = MutexWorkload(sim.network, mutex, active_ids,
                                 request_rate=0.05,
                                 rng=random.Random(args.seed + 37))
    sim.run(until=args.duration)
    churn.stop()
    if workload is not None:
        workload.stop()
    sim.drain()
    resource.assert_no_overlap()

    summary = sim.population.summary()
    emit(f"population     : {summary['population']} MHs in "
         f"{args.n_mss} cells")
    emit(f"array state    : {summary['array_bytes'] / 1024:.0f} KiB "
         f"({summary['array_bytes'] / max(1, args.n_mh):.0f} B/MH)")
    emit(f"passive        : {summary['passive_connected']} connected, "
         f"{summary['passive_disconnected']} disconnected")
    emit(f"active set     : {summary['active']} promoted "
         f"(cap {summary['max_active']}; "
         f"{summary['promotions']} promotions, "
         f"{summary['demotions']} demotions)")
    emit(f"churn          : {churn.ticks} waves -- "
         f"{churn.moved} moves, {churn.disconnected} disconnects, "
         f"{churn.reconnected} reconnects "
         f"({summary['batch_ops']} batched ops)")
    mi = summary["move_interval"]
    if mi["count"]:
        emit(f"move interval  : mean {mi['mean']:.1f} "
             f"(stddev {mi['stddev']:.1f}, n={mi['count']})")
    dt = summary["downtime"]
    if dt["count"]:
        emit(f"downtime       : mean {dt['mean']:.1f} "
             f"(stddev {dt['stddev']:.1f}, n={dt['count']})")
    emit(f"events         : {sim.scheduler.events_processed}")
    try:
        import resource as _resource

        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        emit(f"peak RSS       : {peak // 1024} MiB")
    except ImportError:  # pragma: no cover - non-unix
        pass
    _print_report(sim, emit)
    return 0


def _run_serve(args, emit) -> int:
    """Soak a monitored workload while serving live telemetry.

    The event loop advances in ``--quantum`` sim-time steps and drains
    the observability ledger between steps, so ``/metrics`` and
    ``/invariants`` always reflect a recently certified prefix of the
    run (``repro_obs_certified_until``).  Memory stays bounded: the
    hub runs with ``record=False`` so drained rows are dropped after
    replay.
    """
    import time as _time

    from repro.obs import TelemetryServer, instrument_network
    from repro.workload import MutexWorkload as _MutexWorkload

    sim = Simulation(
        n_mss=args.n_mss,
        n_mh=args.n_mh,
        seed=args.seed,
        monitors=True,
        monitor_mode=args.monitor_mode,
    )
    instrument_network(sim.network, sim.monitor_hub.timers)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = _MutexWorkload(
        sim.network, mutex, sim.mh_ids,
        request_rate=args.request_rate,
        rng=random.Random(args.seed + 1),
    )
    mobility = (
        UniformMobility(sim.network, sim.mh_ids, args.move_rate,
                        rng=random.Random(args.seed + 2))
        if args.move_rate > 0 else None
    )
    server = TelemetryServer(sim, host=args.host, port=args.port)
    server.start()
    emit(f"serving on {server.url}")
    emit("routes: /metrics /health /invariants")
    try:
        while True:
            target = sim.now + args.quantum
            if args.duration > 0:
                target = min(target, args.duration)
            sim.run(until=target)
            if sim.monitor_hub is not None:
                sim.monitor_hub.drain_batches()
            if args.duration > 0 and sim.now >= args.duration:
                break
    except KeyboardInterrupt:
        emit("interrupted; shutting down")
    finally:
        workload.stop()
        if mobility is not None:
            mobility.stop()
        sim.drain()
        emit(sim.monitor_report())
        if args.linger > 0:
            emit(f"run complete; serving for {args.linger:.0f}s more")
            _time.sleep(args.linger)
        server.stop()
    return 0


def _run_perf(args, emit) -> int:
    from repro.errors import ConfigurationError, PerfGateError
    from repro.perf import SCENARIOS, run_scenario, scenario_names

    if args.list_scenarios:
        for name in scenario_names():
            scenario = SCENARIOS[name]
            tag = " [smoke]" if scenario.smoke else ""
            emit(f"{name:<18} {scenario.description}{tag}")
        return 0
    names = [args.scenario] if args.scenario else scenario_names()
    if args.compare:
        return _run_perf_compare(args, names, emit)
    for name in names:
        try:
            result = run_scenario(name, repeats=args.repeats)
        except ConfigurationError as exc:
            raise SystemExit(f"perf: {exc}") from exc
        except PerfGateError as exc:
            emit(f"perf: GATE FAILED: {exc}")
            return 1
        gates = ""
        if result.rss_growth_kb is not None:
            gates = f"  rss+{result.rss_growth_kb}KiB"
        emit(f"{name:<18} {result.events:>9} events  "
             f"{result.wall_time_s:>8.3f}s  "
             f"{result.events_per_sec:>10.0f} ev/s{gates}")
    return 0


#: the CI regression floor `repro perf --compare` reports margins
#: against (normalized events/sec as a fraction of the baseline's;
#: same default as tools/perf_harness.py --check).
_PERF_FLOOR = 0.70


def _run_perf_compare(args, names, emit) -> int:
    """Measure, then diff against a recorded BENCH_<n>.json."""
    from repro.errors import ConfigurationError, PerfGateError
    from repro.perf import (
        SCENARIOS,
        check_regressions,
        compare,
        delta_table,
        load_bench,
        run_suite,
    )

    try:
        baseline = load_bench(args.compare)
    except OSError as exc:
        raise SystemExit(f"perf: cannot load {args.compare}: {exc}")
    except (ValueError, ConfigurationError) as exc:
        raise SystemExit(f"perf: {exc}")
    try:
        current = run_suite(names, repeats=args.repeats, progress=emit)
    except ConfigurationError as exc:
        raise SystemExit(f"perf: {exc}") from exc
    except PerfGateError as exc:
        emit(f"perf: GATE FAILED: {exc}")
        return 1
    deltas = compare(current, baseline)
    # Scenarios measured now but absent from the baseline record (a
    # scenario added since that BENCH was written) have no delta; they
    # are reported informationally instead of crashing or silently
    # vanishing from the table.
    new_names = [
        name for name in current["scenarios"]
        if name not in baseline["scenarios"]
    ]
    if not deltas and not new_names:
        emit(f"perf: no scenarios in common with {args.compare}")
        return 1
    emit("")
    emit(f"vs {args.compare}:")
    if deltas:
        emit(delta_table(deltas))
    for name in new_names:
        cur = current["scenarios"][name]
        emit(f"{name:<18}{'new scenario (no baseline)':>30}  "
             f"{cur['events_per_sec']:>10.0f} ev/s")
    emit("")
    emit(f"gate margins (CI floor: {_PERF_FLOOR:.2f}x normalized):")
    for delta in deltas:
        ratio = (
            delta.normalized_ratio
            if delta.normalized_ratio is not None
            else delta.raw_ratio
        )
        cur = current["scenarios"][delta.name]
        scenario = SCENARIOS.get(delta.name)
        if scenario is None:
            continue
        bits = [f"speed {(ratio - _PERF_FLOOR) * 100:+8.1f}pt above floor"]
        if (scenario.max_rss_growth_kb is not None
                and cur.get("rss_growth_kb") is not None):
            bits.append(
                f"rss {cur['rss_growth_kb']}/"
                f"{scenario.max_rss_growth_kb} KiB"
            )
        if (scenario.max_retained_blocks_per_kevent is not None
                and cur.get("retained_blocks_per_kevent") is not None):
            bits.append(
                f"retained {cur['retained_blocks_per_kevent']}/"
                f"{scenario.max_retained_blocks_per_kevent} blk/kev"
            )
        emit(f"{delta.name:<18}" + "  ".join(bits))
    failures = check_regressions(deltas, max_regression=1.0 - _PERF_FLOOR)
    if failures:
        for failure in failures:
            emit(f"perf: REGRESSION: {failure}")
        return 1
    return 0


def main(argv: Optional[List[str]] = None, emit=print) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "mutex":
        return _run_mutex(args, emit)
    if args.command == "groups":
        return _run_groups(args, emit)
    if args.command == "proxy":
        return _run_proxy(args, emit)
    if args.command == "multicast":
        return _run_multicast(args, emit)
    if args.command == "compare":
        return _run_compare(args, emit)
    if args.command == "trace":
        return _run_trace(args, emit)
    if args.command == "monitor":
        return _run_monitor(args, emit)
    if args.command == "scenarios":
        return _run_scenarios(args, emit)
    if args.command == "scale":
        return _run_scale(args, emit)
    if args.command == "serve":
        return _run_serve(args, emit)
    if args.command == "perf":
        return _run_perf(args, emit)
    raise SystemExit(f"unknown command {args.command!r}")
