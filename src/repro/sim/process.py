"""Process helpers for recurring simulated activities.

Two small building blocks drive workloads and mobility: a fixed-interval
:class:`PeriodicProcess` and an exponential-interarrival
:class:`PoissonProcess`.  Both call a user callback once per firing and
reschedule themselves until stopped or until an optional event budget is
exhausted.
These drive the workloads exercising the paper's Section 3-5 algorithms.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.scheduler import Event, Scheduler


class PeriodicProcess:
    """Invoke ``action`` every ``interval`` time units.

    The first firing happens at ``start_after`` (default: one interval
    from creation time).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        interval: float,
        action: Callable[[], Any],
        start_after: Optional[float] = None,
        max_firings: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive: {interval}")
        self._scheduler = scheduler
        self._interval = interval
        self._action = action
        self._max_firings = max_firings
        self.firings = 0
        self._stopped = False
        first = interval if start_after is None else start_after
        self._pending: Optional[Event] = scheduler.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        self._action()
        if self._max_firings is not None and self.firings >= self._max_firings:
            self._stopped = True
            return
        self._pending = self._scheduler.schedule(self._interval, self._fire)

    def stop(self) -> None:
        """Stop future firings.  Idempotent."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None


class PoissonProcess:
    """Invoke ``action`` with exponential interarrival times.

    ``rate`` is the expected number of firings per unit of simulated
    time.  Randomness comes from the supplied :class:`random.Random` so
    runs stay reproducible.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        rate: float,
        action: Callable[[], Any],
        rng: random.Random,
        max_firings: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive: {rate}")
        self._scheduler = scheduler
        self._rate = rate
        self._action = action
        self._rng = rng
        self._max_firings = max_firings
        self.firings = 0
        self._stopped = False
        self._pending: Optional[Event] = scheduler.schedule(
            self._next_delay(), self._fire
        )

    @property
    def rate(self) -> float:
        """The current expected firings per unit of simulated time."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate; takes effect from the next firing.

        The interarrival draw already pending keeps its old delay
        (there is no thinning/rescheduling), which is exactly the
        behaviour a piecewise-constant rate curve wants.
        """
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive: {rate}")
        self._rate = rate

    def _next_delay(self) -> float:
        return self._rng.expovariate(self._rate)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.firings += 1
        self._action()
        if self._max_firings is not None and self.firings >= self._max_firings:
            self._stopped = True
            return
        self._pending = self._scheduler.schedule(self._next_delay(), self._fire)

    def stop(self) -> None:
        """Stop future firings.  Idempotent."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
