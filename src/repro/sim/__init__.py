"""Deterministic discrete-event simulation kernel (substrate S1).

The kernel is intentionally small: a binary-heap scheduler with a
monotonically increasing tie-breaking sequence number, cancellable event
handles, and a tiny process helper for periodic activities.  Everything
else in the library (channels, hosts, mobility, algorithms) is built on
top of :class:`Scheduler`.
This is the deterministic substrate beneath every protocol in the paper reproduction.
"""

from repro.sim.scheduler import Event, Scheduler
from repro.sim.process import PeriodicProcess, PoissonProcess

__all__ = ["Event", "Scheduler", "PeriodicProcess", "PoissonProcess"]
