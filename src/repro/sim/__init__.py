"""Deterministic discrete-event simulation kernel (substrate S1).

The kernel is intentionally small: two interchangeable schedulers (a
binary heap and a calendar queue, both with a monotonically increasing
tie-breaking sequence number and byte-identical firing order),
cancellable event handles, pooled fire-and-forget posting, and a tiny
process helper for periodic activities.  Everything else in the library
(channels, hosts, mobility, algorithms) is built on top of
:class:`Scheduler`.
This is the deterministic substrate beneath every protocol in the paper reproduction.
"""

from repro.sim.scheduler import (
    CalendarScheduler,
    Event,
    SCHEDULER_KINDS,
    Scheduler,
    make_scheduler,
)
from repro.sim.process import PeriodicProcess, PoissonProcess

__all__ = [
    "CalendarScheduler",
    "Event",
    "SCHEDULER_KINDS",
    "Scheduler",
    "make_scheduler",
    "PeriodicProcess",
    "PoissonProcess",
]
