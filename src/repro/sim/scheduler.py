"""Discrete-event scheduler.

The scheduler is the single source of simulated time.  Events are
callbacks scheduled at absolute times; ties are broken by insertion
order, which makes every run fully deterministic for a fixed seed and
call sequence.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule_at` /
    :meth:`Scheduler.schedule` and may be cancelled before they fire.
    """

    __slots__ = ("time", "seq", "action", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4f}, seq={self.seq}, {state})"


class Scheduler:
    """Binary-heap discrete-event scheduler.

    Guarantees:

    * events fire in nondecreasing time order;
    * events scheduled at the same time fire in the order they were
      scheduled (FIFO tie-break via a sequence counter);
    * :attr:`now` never moves backwards.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now: float = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = Event(time, self._seq, action, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` after a nonnegative ``delay``."""
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, action, *args)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are skipped silently).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event time moved backwards")
            self.now = event.time
            self._events_processed += 1
            event.action(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Returns the number of events fired by this call.  When ``until``
        is given, :attr:`now` is advanced to ``until`` even if the queue
        drained earlier, so repeated ``run(until=...)`` calls observe a
        continuous clock.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    return fired
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and until > self.now:
                self.now = until
            return fired
        finally:
            self._running = False

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``).

        Raises :class:`SimulationError` if the bound is hit, which almost
        always indicates a livelock (e.g. two hosts bouncing a message).
        """
        fired = self.run(max_events=max_events)
        if self._heap and any(not ev.cancelled for ev in self._heap):
            raise SimulationError(
                f"drain() exceeded {max_events} events; likely livelock"
            )
        return fired
