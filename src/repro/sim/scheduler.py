"""Discrete-event scheduler.

The scheduler is the single source of simulated time.  Events are
callbacks scheduled at absolute times; ties are broken by insertion
order, which makes every run fully deterministic for a fixed seed and
call sequence.

Hot-path design (this is the innermost loop of every simulation):

* Heap entries are plain ``(time, seq, event)`` tuples.  ``seq`` is
  unique, so comparisons resolve on the first two slots in C-level
  tuple comparison and the :class:`Event` object itself is never
  compared -- no Python-level ``__lt__`` dispatch per sift step.
* Cancellation is lazy with an exact live counter: ``cancel()``
  increments ``_n_cancelled`` while the entry stays in the heap, pops
  decrement it, so :attr:`pending_count` and :meth:`drain` are O(1)
  instead of scanning the heap.  When cancelled entries outnumber live
  ones the heap is compacted in place, keeping memory and pop cost
  proportional to the live population even under cancel-heavy
  workloads (retransmit timers, stopped processes).
The deterministic substrate beneath every protocol in the paper reproduction.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule_at` /
    :meth:`Scheduler.schedule` and may be cancelled before they fire.
    """

    __slots__ = ("time", "seq", "action", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[..., Any],
        args: tuple,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False
        # Back-reference used only to keep the scheduler's cancelled
        # counter exact; cleared when the entry leaves the heap so a
        # late cancel() of an already-fired event cannot skew it.
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            scheduler = self._scheduler
            if scheduler is not None:
                scheduler._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4f}, seq={self.seq}, {state})"


class Scheduler:
    """Binary-heap discrete-event scheduler.

    Guarantees:

    * events fire in nondecreasing time order;
    * events scheduled at the same time fire in the order they were
      scheduled (FIFO tie-break via a sequence counter);
    * :attr:`now` never moves backwards.
    """

    #: compaction only kicks in past this many cancelled entries, so
    #: small heaps never pay the rebuild.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self.now: float = 0.0
        self._events_processed = 0
        self._n_cancelled = 0
        self._running = False

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        O(1): maintained via the live cancellation counter rather than
        a heap scan.
        """
        return len(self._heap) - self._n_cancelled

    def _note_cancel(self) -> None:
        """Bookkeeping for one newly cancelled in-heap entry."""
        self._n_cancelled += 1
        if (
            self._n_cancelled > self._COMPACT_MIN
            and self._n_cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so aliases of ``_heap`` held by a
        running loop stay valid.  Rebuilding preserves the firing order
        exactly: ``(time, seq)`` keys are unique, so the heap's pop
        sequence is the sorted order regardless of layout.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._n_cancelled = 0

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` after a nonnegative ``delay``."""
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, action, *args)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are skipped silently).
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._n_cancelled -= 1
                continue
            event._scheduler = None
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event time moved backwards")
            self.now = event.time
            self._events_processed += 1
            event.action(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Returns the number of events fired by this call.  When ``until``
        is given, :attr:`now` is advanced to ``until`` even if the queue
        drained earlier, so repeated ``run(until=...)`` calls observe a
        continuous clock.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        fired = 0
        # The heap list is aliased for speed; _compact mutates it in
        # place, so the alias stays valid across callbacks.
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    return fired
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    self._n_cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                event._scheduler = None
                if time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event time moved backwards")
                self.now = time
                self._events_processed += 1
                event.action(*event.args)
                fired += 1
            if until is not None and until > self.now:
                self.now = until
            return fired
        finally:
            self._running = False

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``).

        Raises :class:`SimulationError` if the bound is hit, which almost
        always indicates a livelock (e.g. two hosts bouncing a message).
        """
        fired = self.run(max_events=max_events)
        if self.pending_count:
            raise SimulationError(
                f"drain() exceeded {max_events} events; likely livelock"
            )
        return fired
