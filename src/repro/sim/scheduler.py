"""Discrete-event schedulers: binary heap and calendar queue.

The scheduler is the single source of simulated time.  Events are
callbacks scheduled at absolute times; ties are broken by insertion
order, which makes every run fully deterministic for a fixed seed and
call sequence.

Hot-path design (this is the innermost loop of every simulation):

* Heap entries are plain ``(time, seq, event)`` tuples.  ``seq`` is
  unique, so comparisons resolve on the first two slots in C-level
  tuple comparison and the :class:`Event` object itself is never
  compared -- no Python-level ``__lt__`` dispatch per sift step.
* Cancellation is lazy with an exact live counter: ``cancel()``
  increments ``_n_cancelled`` while the entry stays in the heap, pops
  decrement it, so :attr:`pending_count` and :meth:`drain` are O(1)
  instead of scanning the heap.  When cancelled entries outnumber live
  ones the heap is compacted in place -- checked both on cancel and in
  the run loop, so interleaved cancellations are reclaimed even when
  no cancelled entry ever reaches the heap top.
* Fire-and-forget work uses :meth:`Scheduler.post` /
  :meth:`Scheduler.post_at`, which return no handle; because nothing
  can cancel (or even see) such an event, the scheduler recycles the
  :class:`Event` object through a :class:`repro.pool.Pool` free list
  the moment it fires.
* :class:`CalendarScheduler` is a calendar queue (R. Brown, CACM 1988):
  O(1) amortized enqueue/dequeue at high event density, with bucket
  count and width auto-resized from the observed event-interarrival
  distribution.  Pop order is byte-identical to the heap's because both
  orders are the unique sorted order of the ``(time, seq)`` keys
  (ROADMAP item 3).

The deterministic substrate beneath every protocol in the paper reproduction.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.pool import Pool


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule_at` /
    :meth:`Scheduler.schedule` and may be cancelled before they fire.
    Events created by the handle-free ``post`` API are marked
    ``pooled`` and recycled after firing; they are never exposed.
    """

    __slots__ = ("time", "seq", "action", "args", "cancelled", "pooled",
                 "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Optional[Callable[..., Any]],
        args: tuple,
        scheduler: Optional["Scheduler"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False
        self.pooled = False
        # Back-reference used only to keep the scheduler's cancelled
        # counter exact; cleared when the entry leaves the heap so a
        # late cancel() of an already-fired event cannot skew it.
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            scheduler = self._scheduler
            if scheduler is not None:
                scheduler._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.4f}, seq={self.seq}, {state})"


def _new_blank_event() -> Event:
    return Event(0.0, 0, None, (), None)


def _reset_event(event: Event) -> None:
    # Drop callback/argument references so the free list cannot pin
    # protocol objects (messages, hosts) alive between reuses.
    event.action = None
    event.args = ()
    event.cancelled = False
    event._scheduler = None


class Scheduler:
    """Binary-heap discrete-event scheduler.

    Guarantees:

    * events fire in nondecreasing time order;
    * events scheduled at the same time fire in the order they were
      scheduled (FIFO tie-break via a sequence counter);
    * :attr:`now` never moves backwards.

    Args:
        pooling: recycle ``post``/``post_at`` event objects through a
            free list (byte-identical behaviour; saves ~1 allocation
            per fire-and-forget event).  Disable to rule pooling out
            when debugging.
    """

    #: compaction only kicks in past this many cancelled entries, so
    #: small heaps never pay the rebuild.
    _COMPACT_MIN = 64

    #: retained-block bound for the event free list.
    _POOL_CAPACITY = 4096

    def __init__(self, pooling: bool = True) -> None:
        self._heap: list = []
        self._seq = 0
        self.now: float = 0.0
        self._events_processed = 0
        self._n_cancelled = 0
        self._running = False
        self._pool: Optional[Pool] = (
            Pool(
                _new_blank_event,
                reset=_reset_event,
                capacity=self._POOL_CAPACITY,
                name="scheduler.events",
            )
            if pooling
            else None
        )

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events.

        O(1): maintained via the live cancellation counter rather than
        a heap scan.
        """
        return len(self._heap) - self._n_cancelled

    @property
    def pool_stats(self) -> Optional[dict]:
        """Event free-list counters, or ``None`` with pooling off."""
        return self._pool.stats() if self._pool is not None else None

    def _note_cancel(self) -> None:
        """Bookkeeping for one newly cancelled in-heap entry.

        The threshold is *at least* half, not strictly more: perfectly
        interleaved cancel patterns (every other entry) park the
        cancelled fraction exactly at 1/2, where a strict comparison
        would never fire and the heap would retain 2x live entries
        indefinitely.
        """
        self._n_cancelled += 1
        if (
            self._n_cancelled > self._COMPACT_MIN
            and self._n_cancelled * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so aliases of ``_heap`` held by a
        running loop stay valid.  Rebuilding preserves the firing order
        exactly: ``(time, seq)`` keys are unique, so the heap's pop
        sequence is the sorted order regardless of layout.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._n_cancelled = 0

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, args, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``action(*args)`` after a nonnegative ``delay``."""
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, action, *args)

    def post_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: returns no handle.

        Because the event can never be cancelled or inspected, its
        :class:`Event` object is recycled through the scheduler's free
        list when it fires.  Identical ordering (same ``seq`` stream)
        to ``schedule_at``.
        """
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool is None:
            event = Event(time, seq, action, args, None)
        elif pool._outstanding is None:
            # Fast path: the free list is touched directly; the method
            # call plus reset hook of Pool.acquire cost more than the
            # whole enqueue at this call rate.
            free = pool._free
            if free:
                event = free.pop()
                pool.reused += 1
                event.time = time
                event.seq = seq
                event.action = action
                event.args = args
            else:
                event = Event(time, seq, action, args, None)
                pool.created += 1
            event.pooled = True
        else:
            event = pool.acquire()
            event.time = time
            event.seq = seq
            event.action = action
            event.args = args
            event.pooled = True
        heapq.heappush(self._heap, (time, seq, event))

    def post(
        self, delay: float, action: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule`: returns no handle."""
        if delay < 0:
            raise ConfigurationError(f"negative delay: {delay}")
        self.post_at(self.now + delay, action, *args)

    def step(self) -> bool:
        """Fire the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are skipped silently).
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._n_cancelled -= 1
                continue
            event._scheduler = None
            if event.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event time moved backwards")
            self.now = event.time
            self._events_processed += 1
            event.action(*event.args)
            if event.pooled:
                self._pool.release(event)
            n_cancelled = self._n_cancelled
            if n_cancelled > self._COMPACT_MIN and n_cancelled * 2 >= len(heap):
                self._compact()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Returns the number of events fired by this call.  When ``until``
        is given, :attr:`now` is advanced to ``until`` even if the queue
        drained earlier, so repeated ``run(until=...)`` calls observe a
        continuous clock.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        fired = 0
        # The heap list is aliased for speed; _compact mutates it in
        # place, so the alias stays valid across callbacks.
        heap = self._heap
        heappop = heapq.heappop
        pool = self._pool
        fast_pool = pool is not None and pool._outstanding is None
        free = pool._free if pool is not None else None
        pool_capacity = pool.capacity if pool is not None else 0
        compact_min = self._COMPACT_MIN
        try:
            while heap:
                if max_events is not None and fired >= max_events:
                    return fired
                entry = heap[0]
                event = entry[2]
                if event.cancelled:
                    heappop(heap)
                    self._n_cancelled -= 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                event._scheduler = None
                if time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event time moved backwards")
                self.now = time
                self._events_processed += 1
                event.action(*event.args)
                fired += 1
                if event.pooled:
                    if fast_pool:
                        # Inline Pool.release + _reset_event: one method
                        # call per event is the single biggest loop cost.
                        event.action = None
                        event.args = ()
                        event.cancelled = False
                        pool.released += 1
                        if len(free) < pool_capacity:
                            free.append(event)
                    else:
                        pool.release(event)
                # Reclaim interleaved cancellations: live pops shrink the
                # heap, so the cancelled fraction can cross 1/2 without
                # any new cancel() ever seeing it (the _note_cancel check
                # alone misses that case).
                n_cancelled = self._n_cancelled
                if n_cancelled > compact_min and n_cancelled * 2 >= len(heap):
                    self._compact()
            if until is not None and until > self.now:
                self.now = until
            return fired
        finally:
            self._running = False

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``).

        Raises :class:`SimulationError` if the bound is hit, which almost
        always indicates a livelock (e.g. two hosts bouncing a message).
        """
        fired = self.run(max_events=max_events)
        if self.pending_count:
            raise SimulationError(
                f"drain() exceeded {max_events} events; likely livelock"
            )
        return fired


class CalendarScheduler(Scheduler):
    """Calendar-queue scheduler (bucketed, O(1) amortized).

    Events live in ``n_buckets`` circular day-buckets of ``width``
    simulated seconds each; an event at time ``t`` belongs to absolute
    day ``int(t / width)`` and is stored in bucket ``day % n_buckets``.
    Buckets keep entries sorted ascending on ``(-time, -seq)`` so the
    soonest entry is the *last* element: peek is ``bucket[-1]`` and pop
    is ``bucket.pop()`` -- both O(1) -- while insert is a C-level
    :func:`bisect.insort`.

    Dequeue scans day windows forward from ``int(now / width)``; the
    first bucket whose top entry belongs to the scanned day holds the
    global minimum (all pending times are ``>= now``, and day number is
    monotone in time).  If a full lap finds nothing -- every pending
    event is more than ``n_buckets`` days ahead -- it falls back to a
    direct scan of all bucket tops, so correctness never depends on the
    width guess.

    Bucket count doubles when entries exceed ``2 * n_buckets`` and
    halves below ``n_buckets / 2``; each resize re-derives ``width``
    from the observed inter-arrival gap of the soonest entries.  Resize
    affects only performance: pop order is always the sorted
    ``(time, seq)`` order, byte-identical to :class:`Scheduler`
    (ROADMAP item 3's determinism claim).
    """

    _MIN_BUCKETS = 16

    #: entries sampled from the head of the queue when deriving width.
    _WIDTH_SAMPLE = 256

    def __init__(
        self,
        pooling: bool = True,
        width: Optional[float] = None,
        n_buckets: int = _MIN_BUCKETS,
    ) -> None:
        super().__init__(pooling=pooling)
        if n_buckets < 1:
            raise ConfigurationError(f"n_buckets must be >= 1: {n_buckets}")
        if width is not None and width <= 0:
            raise ConfigurationError(f"bucket width must be > 0: {width}")
        self._fixed_width = width is not None
        self._width = float(width) if width is not None else 1.0
        self._inv_width = 1.0 / self._width
        self._n_buckets = int(n_buckets)
        self._buckets: List[list] = [[] for _ in range(self._n_buckets)]
        self._n_entries = 0

    @property
    def pending_count(self) -> int:
        return self._n_entries - self._n_cancelled

    def _note_cancel(self) -> None:
        self._n_cancelled += 1
        if (
            self._n_cancelled > self._COMPACT_MIN
            and self._n_cancelled * 2 >= self._n_entries
        ):
            self._compact()

    def _compact(self) -> None:
        removed = 0
        for bucket in self._buckets:
            if bucket:
                n_before = len(bucket)
                bucket[:] = [e for e in bucket if not e[2].cancelled]
                removed += n_before - len(bucket)
        self._n_entries -= removed
        self._n_cancelled = 0
        if (
            self._n_buckets > self._MIN_BUCKETS
            and self._n_entries * 2 < self._n_buckets
        ):
            self._resize(max(self._MIN_BUCKETS, self._n_buckets >> 1))

    def _choose_width(self, entries: list) -> float:
        """Bucket width from the mean inter-arrival gap of the soonest
        entries (``entries`` ascending on ``(-time, -seq)``, so the
        queue head is at the end)."""
        if self._fixed_width:
            return self._width
        k = min(len(entries), self._WIDTH_SAMPLE)
        if k < 2:
            return self._width
        head = entries[-k:]
        span = (-head[0][0]) - (-head[-1][0])  # latest - soonest in sample
        if span <= 0.0:
            return self._width
        # ~8 events per day window: wide enough that the day scan almost
        # always hits its first bucket, narrow enough that insort stays
        # a handful of C-level compares (measured optimum on the
        # sched_density scenarios; the classic rule of thumb of ~3 loses
        # ~20% to extra empty-bucket scans in CPython).
        return 8.0 * span / (k - 1)

    def _resize(self, n_new: int) -> None:
        entries: list = []
        for bucket in self._buckets:
            entries.extend(bucket)
        entries.sort()  # ascending (-time, -seq): queue head last
        self._width = self._choose_width(entries)
        self._inv_width = 1.0 / self._width
        self._n_buckets = n_new
        buckets: List[list] = [[] for _ in range(n_new)]
        inv = self._inv_width
        for entry in entries:  # sorted order keeps each bucket sorted
            buckets[int(-entry[0] * inv) % n_new].append(entry)
        self._buckets = buckets

    def schedule_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> Event:
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, args, self)
        insort(
            self._buckets[int(time * self._inv_width) % self._n_buckets],
            (-time, -seq, event),
        )
        self._n_entries += 1
        if self._n_entries > self._n_buckets << 1:
            self._resize(self._n_buckets << 1)
        return event

    def post_at(
        self, time: float, action: Callable[..., Any], *args: Any
    ) -> None:
        if time < self.now:
            raise ConfigurationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool is None:
            event = Event(time, seq, action, args, None)
        elif pool._outstanding is None:
            free = pool._free
            if free:
                event = free.pop()
                pool.reused += 1
                event.time = time
                event.seq = seq
                event.action = action
                event.args = args
            else:
                event = Event(time, seq, action, args, None)
                pool.created += 1
            event.pooled = True
        else:
            event = pool.acquire()
            event.time = time
            event.seq = seq
            event.action = action
            event.args = args
            event.pooled = True
        insort(
            self._buckets[int(time * self._inv_width) % self._n_buckets],
            (-time, -seq, event),
        )
        self._n_entries += 1
        if self._n_entries > self._n_buckets << 1:
            self._resize(self._n_buckets << 1)

    def _min_bucket(self) -> Optional[list]:
        """The bucket whose top entry is the global minimum, or ``None``
        when the queue is empty.

        Day comparison uses exactly the same ``int(t * inv_width)``
        arithmetic as insertion, so the scan can never disagree with
        placement about which window an entry belongs to (no float
        boundary hazards).
        """
        if not self._n_entries:
            return None
        buckets = self._buckets
        n = self._n_buckets
        inv = self._inv_width
        day = int(self.now * inv)
        for k in range(n):
            bucket = buckets[(day + k) % n]
            if bucket and int(-bucket[-1][0] * inv) <= day + k:
                return bucket
        # Full lap without a hit: everything is >= n days ahead.  Direct
        # min over bucket tops (entries are negated, so max of tops).
        best: Optional[list] = None
        for bucket in buckets:
            if bucket and (best is None or bucket[-1] > best[-1]):
                best = bucket
        return best

    def step(self) -> bool:
        while self._n_entries:
            bucket = self._min_bucket()
            entry = bucket[-1]
            event = entry[2]
            if event.cancelled:
                bucket.pop()
                self._n_entries -= 1
                self._n_cancelled -= 1
                continue
            bucket.pop()
            self._n_entries -= 1
            event._scheduler = None
            time = -entry[0]
            if time < self.now:  # pragma: no cover - defensive
                raise SimulationError("event time moved backwards")
            self.now = time
            self._events_processed += 1
            event.action(*event.args)
            if event.pooled:
                self._pool.release(event)
            n_cancelled = self._n_cancelled
            if (
                n_cancelled > self._COMPACT_MIN
                and n_cancelled * 2 >= self._n_entries
            ):
                self._compact()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        fired = 0
        pool = self._pool
        fast_pool = pool is not None and pool._outstanding is None
        free = pool._free if pool is not None else None
        pool_capacity = pool.capacity if pool is not None else 0
        compact_min = self._COMPACT_MIN
        try:
            # Bucket geometry is mirrored into locals and refreshed
            # after anything that can resize (callbacks scheduling new
            # events, compaction) -- the refresh is three C-level
            # attribute loads, the mirror saves them on every scan step.
            buckets = self._buckets
            n = self._n_buckets
            inv = self._inv_width
            while self._n_entries:
                if max_events is not None and fired >= max_events:
                    return fired
                # Inline _min_bucket (same int arithmetic; see there for
                # the correctness argument).  The first probe hits the
                # current day's bucket, which holds the minimum almost
                # always once the width is tuned.
                day = int(self.now * inv)
                bucket = buckets[day % n]
                if not bucket or int(-bucket[-1][0] * inv) > day:
                    bucket = None
                    k = 1
                    while k < n:
                        b = buckets[(day + k) % n]
                        if b and int(-b[-1][0] * inv) <= day + k:
                            bucket = b
                            break
                        k += 1
                    if bucket is None:
                        # Full lap: everything >= n days out; direct max
                        # over tops (entries are negated).
                        for b in buckets:
                            if b and (bucket is None or b[-1] > bucket[-1]):
                                bucket = b
                entry = bucket[-1]
                event = entry[2]
                if event.cancelled:
                    bucket.pop()
                    self._n_entries -= 1
                    self._n_cancelled -= 1
                    continue
                time = -entry[0]
                if until is not None and time > until:
                    break
                bucket.pop()
                self._n_entries -= 1
                event._scheduler = None
                if time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("event time moved backwards")
                self.now = time
                self._events_processed += 1
                event.action(*event.args)
                fired += 1
                if event.pooled:
                    if fast_pool:
                        event.action = None
                        event.args = ()
                        event.cancelled = False
                        pool.released += 1
                        if len(free) < pool_capacity:
                            free.append(event)
                    else:
                        pool.release(event)
                n_cancelled = self._n_cancelled
                if (
                    n_cancelled > compact_min
                    and n_cancelled * 2 >= self._n_entries
                ):
                    self._compact()
                buckets = self._buckets
                n = self._n_buckets
                inv = self._inv_width
            if until is not None and until > self.now:
                self.now = until
            return fired
        finally:
            self._running = False


#: scheduler kinds accepted by :func:`make_scheduler` and
#: ``Simulation(scheduler=...)``.
SCHEDULER_KINDS = ("heap", "calendar")


def make_scheduler(kind: str = "heap", **kwargs: Any) -> Scheduler:
    """Build a scheduler by kind name (``"heap"`` or ``"calendar"``)."""
    if kind == "heap":
        return Scheduler(**kwargs)
    if kind == "calendar":
        return CalendarScheduler(**kwargs)
    raise ConfigurationError(
        f"unknown scheduler kind {kind!r}; choose one of {SCHEDULER_KINDS}"
    )
