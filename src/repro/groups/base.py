"""Shared machinery for the three group location strategies.

Common to the paper's Section 4 group location management strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass
class GroupStats:
    """The paper's accounting quantities for one group strategy run.

    ``moves`` is MOB (total member moves), ``messages`` is MSG (group
    messages sent; location updates are *not* counted in MSG),
    ``significant_moves`` counts the moves that changed LV(G) (location
    view only), and ``deliveries``/``missed`` track per-member message
    outcomes.
    """

    moves: int = 0
    messages: int = 0
    significant_moves: int = 0
    deliveries: int = 0
    missed: int = 0
    membership_changes: int = 0
    #: sum over all messages of the recipient count at send time; the
    #: accounting invariant is ``deliveries + missed ==
    #: expected_recipients`` even when membership changes mid-run.
    expected_recipients: int = 0

    @property
    def mobility_to_message_ratio(self) -> float:
        """MOB / MSG -- the paper's figure of merit."""
        if self.messages == 0:
            return float("inf") if self.moves else 0.0
        return self.moves / self.messages

    @property
    def significant_fraction(self) -> float:
        """f = significant moves / total moves."""
        if self.moves == 0:
            return 0.0
        return self.significant_moves / self.moves


@dataclass(frozen=True)
class DeliveryEnvelope:
    """Wraps a group payload with its message id for exact accounting."""

    msg_id: int
    payload: object


class GroupStrategy:
    """Base class: membership, delivery log and MOB accounting.

    Accounting invariant: for every group message, each of the |G|-1
    non-sender members is recorded *exactly once* as either delivered
    or missed (``stats.deliveries + stats.missed ==
    stats.messages * (|G|-1)``), even under arbitrary races between
    messages in flight and member moves.  Strategies report outcomes
    through :meth:`_record_delivered` / :meth:`_record_missed`; the
    first report per (message, recipient) wins and duplicates are
    ignored.

    Args:
        network: the simulated system.
        members: mobile hosts forming the group G (fixed membership, as
            Section 4 assumes).
        scope: metrics scope for all of this strategy's traffic.
    """

    def __init__(
        self,
        network: "Network",
        members: List[str],
        scope: str,
    ) -> None:
        if len(members) < 2:
            raise ConfigurationError("a group needs at least two members")
        if len(set(members)) != len(members):
            raise ConfigurationError("group members must be unique")
        self.network = network
        self.members = list(members)
        self.scope = scope
        self.stats = GroupStats()
        #: (time, recipient, payload) per successful delivery.
        self.delivered: List[Tuple[float, str, object]] = []
        self.kind_deliver = f"{scope}.deliver"
        self._msg_seq = 0
        self._accounted: set = set()
        self._provisional: set = set()
        self._wired: set = set()
        for mh_id in self.members:
            self._wire_member(mh_id)

    def _wire_member(self, mh_id: str) -> None:
        if mh_id in self._wired:
            return
        self._wired.add(mh_id)
        mh = self.network.mobile_host(mh_id)
        mh.register_handler(self.kind_deliver, self._on_deliver)
        mh.add_attach_listener(
            lambda m=mh_id: self._on_member_attached(m)
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def send(self, sender_mh_id: str, payload: object) -> None:
        """Send a group message from ``sender_mh_id`` to all members."""
        if sender_mh_id not in self.members:
            raise ConfigurationError(
                f"{sender_mh_id} is not a member of this group"
            )
        self.stats.messages += 1
        self.stats.expected_recipients += len(self.members) - 1
        self._msg_seq += 1
        self._send(sender_mh_id, payload, self._msg_seq)

    def add_member(self, mh_id: str) -> None:
        """Admit ``mh_id`` into the group (membership extension).

        The paper assumes fixed membership; this extension keeps the
        membership list itself externally consistent (the group
        membership service the paper defers to) while the *location
        state* each strategy maintains is updated through the
        strategy's own messages.
        """
        if mh_id in self.members:
            raise ConfigurationError(f"{mh_id} is already a member")
        mh = self.network.mobile_host(mh_id)
        if not mh.is_connected:
            raise ConfigurationError(
                f"{mh_id} must be connected to join the group"
            )
        self._wire_member(mh_id)
        self.members.append(mh_id)
        self.stats.membership_changes += 1
        self._on_member_added(mh_id)

    def remove_member(self, mh_id: str) -> None:
        """Remove ``mh_id`` from the group (membership extension)."""
        if mh_id not in self.members:
            raise ConfigurationError(f"{mh_id} is not a member")
        self.members.remove(mh_id)
        self.stats.membership_changes += 1
        self._on_member_removed(mh_id)

    def deliveries_of(self, payload: object) -> List[str]:
        """Recipients that received ``payload`` (for tests)."""
        return [mh for (_, mh, p) in self.delivered if p == payload]

    # ------------------------------------------------------------------
    # Strategy hooks
    # ------------------------------------------------------------------

    def _send(self, sender_mh_id: str, payload: object,
              msg_id: int) -> None:
        raise NotImplementedError

    def _after_member_attached(self, mh_id: str) -> None:
        """Strategy-specific reaction to a member's (re)attachment."""

    def _on_member_added(self, mh_id: str) -> None:
        """Strategy-specific state setup for a joining member."""

    def _on_member_removed(self, mh_id: str) -> None:
        """Strategy-specific state teardown for a leaving member."""

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _on_member_attached(self, mh_id: str) -> None:
        if mh_id not in self.members:
            return  # removed from the group; moves no longer concern it
        self.stats.moves += 1
        self._after_member_attached(mh_id)

    def _on_deliver(self, message) -> None:
        envelope: DeliveryEnvelope = message.payload
        if self._record_outcome(envelope.msg_id, message.dst,
                                delivered=True):
            self.delivered.append(
                (
                    self.network.scheduler.now,
                    message.dst,
                    envelope.payload,
                )
            )

    def _record_delivered(self, msg_id: int, mh_id: str) -> bool:
        """Mark (message, recipient) delivered; False if already
        accounted."""
        return self._record_outcome(msg_id, mh_id, delivered=True)

    def _record_missed(self, msg_id: int, mh_id: str) -> bool:
        """Mark (message, recipient) missed; False if already
        accounted."""
        return self._record_outcome(msg_id, mh_id, delivered=False)

    def _record_missed_provisionally(self, msg_id: int, mh_id: str) -> None:
        """Mark (message, recipient) missed, but allow a later delivery
        to upgrade the outcome.

        Used when a strategy cannot tell at send time whether a member
        caught mid-move will still be reached (e.g. a location-view
        fan-out that does not cover the member's destination cell yet).
        """
        key = (msg_id, mh_id)
        if key in self._accounted:
            return
        self._accounted.add(key)
        self._provisional.add(key)
        self.stats.missed += 1

    def _record_outcome(
        self, msg_id: int, mh_id: str, delivered: bool
    ) -> bool:
        key = (msg_id, mh_id)
        if key in self._accounted:
            if delivered and key in self._provisional:
                # A provisional miss turned out to be delivered after
                # all: upgrade the outcome.
                self._provisional.discard(key)
                self.stats.missed -= 1
                self.stats.deliveries += 1
                return True
            return False
        self._accounted.add(key)
        if delivered:
            self.stats.deliveries += 1
        else:
            self._provisional.discard(key)
            self.stats.missed += 1
        return True

    def current_mss_of(self, mh_id: str) -> Optional[str]:
        """Ground-truth location (used only for initial state setup)."""
        mh = self.network.mobile_host(mh_id)
        return mh.current_mss_id
