"""Location-view strategy (Section 4.3) -- the paper's contribution.

Instead of per-member locations, the system maintains the *location
view* ``LV(G)``: the set of MSSs that currently have at least one member
of G in their cell.  Each MSS in the view holds a copy of ``LV(G)`` and
the set of members local to its cell.

* A group message costs ``(|LV|-1)*C_fixed + |G|*C_wireless``
  (uplink, fan-out to the view, downlink to every other member): the
  static-network traffic is proportional to |LV|, not |G|.
* Only *significant* moves -- into a cell outside the view, or the sole
  member leaving a view cell -- change ``LV(G)``.  Updates are
  serialized through a fixed *coordinator* MSS, so FIFO fixed channels
  give every copy the same update sequence.  One update costs at most
  ``(|LV|+3)*C_fixed``: the three extras are new-MSS -> previous-MSS,
  previous-MSS -> coordinator, coordinator -> new-MSS.
* A move that is both cases at once (sole member leaves M' for an
  outside cell M) sends one *combined* add+delete request.

The onus of location management thus sits entirely on the static
network: members spend no battery on location updates and may
disconnect without disturbing the bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.groups.base import DeliveryEnvelope, GroupStrategy
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class MoveNotice:
    """New MSS -> previous MSS: 'member arrived here from your cell'."""

    mh_id: str
    new_mss_id: str


@dataclass(frozen=True)
class ChangeRequest:
    """Previous MSS -> coordinator: add and/or delete view entries."""

    add_mss_id: Optional[str]
    delete_mss_id: Optional[str]


@dataclass(frozen=True)
class FullCopy:
    """Coordinator -> newly added MSS: the complete current view."""

    view: frozenset


@dataclass(frozen=True)
class IncrementalUpdate:
    """Coordinator -> view MSSs: one (possibly combined) add+delete.

    A combined significant move (sole member leaves M' for an outside
    cell M) is distributed as a single incremental message per
    recipient, keeping the update within the paper's
    ``(|LV|+3)*C_fixed`` bound."""

    add_mss_id: Optional[str]
    delete_mss_id: Optional[str]


@dataclass(frozen=True)
class GroupMessage:
    """The group payload, fanned out across the view."""

    sender_mh_id: str
    payload: object
    msg_id: int


class LocationViewGroup(GroupStrategy):
    """The location-view strategy with a coordinator MSS."""

    def __init__(
        self,
        network: "Network",
        members: List[str],
        scope: str = "group-lv",
        coordinator_mss_id: Optional[str] = None,
    ) -> None:
        super().__init__(network, members, scope)
        mss_ids = network.mss_ids()
        if coordinator_mss_id is None:
            coordinator_mss_id = mss_ids[0]
        if coordinator_mss_id not in mss_ids:
            raise ConfigurationError(
                f"unknown coordinator: {coordinator_mss_id}"
            )
        self.coordinator_mss_id = coordinator_mss_id
        self.kind_msg = f"{scope}.msg"
        self.kind_fanout = f"{scope}.fanout"
        self.kind_notice = f"{scope}.notice"
        self.kind_change = f"{scope}.change"
        self.kind_full = f"{scope}.full"
        self.kind_incr = f"{scope}.incr"
        #: per-MSS copy of LV(G); only view MSSs (and the coordinator)
        #: hold one.
        self.view_copies: Dict[str, Set[str]] = {}
        #: per-MSS set of group members local to its cell.
        self.local_members: Dict[str, Set[str]] = {
            mss_id: set() for mss_id in mss_ids
        }
        self.max_view_size = 0
        #: optional hook invoked at the coordinator right after a view
        #: addition has been applied and distributed; layered protocols
        #: (e.g. the ordered group) use it to bring the new cell up to
        #: date with whatever they fanned out before the addition.
        self.on_view_add = None
        for mss_id in mss_ids:
            mss = network.mss(mss_id)
            mss.register_handler(self.kind_msg, self._on_group_message)
            mss.register_handler(self.kind_fanout, self._on_fanout)
            mss.register_handler(self.kind_notice, self._on_move_notice)
            mss.register_handler(self.kind_change, self._on_change)
            mss.register_handler(self.kind_full, self._on_full_copy)
            mss.register_handler(self.kind_incr, self._on_incremental)
            mss.add_join_listener(
                lambda mh_id, prev, m=mss_id: self._on_member_join(
                    m, mh_id, prev
                )
            )
        self._bootstrap()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Install the initial view from the members' starting cells
        (part of constructing the system, not of its execution)."""
        view: Set[str] = set()
        for member in self.members:
            mss_id = self.current_mss_of(member)
            if mss_id is None:
                raise ConfigurationError(
                    f"member {member} must be connected at setup"
                )
            view.add(mss_id)
            self.local_members[mss_id].add(member)
        for mss_id in view:
            self.view_copies[mss_id] = set(view)
        self.view_copies.setdefault(self.coordinator_mss_id, set(view))
        self.view_copies[self.coordinator_mss_id] = set(view)
        self.max_view_size = len(view)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def coordinator_view(self) -> Set[str]:
        """The coordinator's (authoritative) copy of LV(G)."""
        return set(self.view_copies[self.coordinator_mss_id])

    def view_size(self) -> int:
        """|LV(G)| according to the coordinator."""
        return len(self.view_copies[self.coordinator_mss_id])

    # ------------------------------------------------------------------
    # Group messages
    # ------------------------------------------------------------------

    def _send(self, sender_mh_id: str, payload: object,
              msg_id: int) -> None:
        mh = self.network.mobile_host(sender_mh_id)
        mh.send_to_mss(
            self.kind_msg,
            GroupMessage(sender_mh_id, payload, msg_id),
            self.scope,
        )

    def _on_group_message(self, message: Message) -> None:
        mss_id = message.dst
        group_message: GroupMessage = message.payload
        copy = self.view_copies.get(mss_id)
        if copy is None:
            # The sender's MSS is not (yet) in the view: deliver what we
            # can locally; the view update is still in flight.
            copy = {mss_id}
        # Sorted so the fan-out order is independent of the process
        # hash seed: runs must be reproducible for a given --seed.
        for view_mss in sorted(copy):
            if view_mss == mss_id:
                continue
            self.network.mss(mss_id).send_fixed(
                view_mss, self.kind_fanout, group_message, self.scope
            )
        self._deliver_local(mss_id, group_message)
        # A member mid-move may sit outside every fanned-out cell and
        # never be reached by this message: account every non-sender as
        # provisionally missed up front; each actual delivery upgrades
        # its recipient's outcome.  This keeps the exactly-once
        # accounting invariant under arbitrary move/message races.
        for member in self.members:
            if member != group_message.sender_mh_id:
                self._record_missed_provisionally(
                    group_message.msg_id, member
                )

    def _on_fanout(self, message: Message) -> None:
        self._deliver_local(message.dst, message.payload)

    def _deliver_local(
        self, mss_id: str, group_message: GroupMessage
    ) -> None:
        mss = self.network.mss(mss_id)
        for member in sorted(self.local_members[mss_id]):
            if member == group_message.sender_mh_id:
                continue
            if mss.is_local(member):
                self.network.send_wireless_down(
                    mss_id,
                    member,
                    Message(
                        kind=self.kind_deliver,
                        src=mss_id,
                        dst=member,
                        payload=DeliveryEnvelope(
                            group_message.msg_id, group_message.payload
                        ),
                        scope=self.scope,
                    ),
                    # Departed while the frame was on the air: the same
                    # transient as arriving after the member left.
                    on_lost=lambda msg, m=member: self._record_missed(
                        group_message.msg_id, m
                    ),
                )
            else:
                # The member left this cell (or disconnected) before the
                # move notice arrived -- the transient the paper
                # disregards in its cost accounting.
                self._record_missed(group_message.msg_id, member)

    # ------------------------------------------------------------------
    # View maintenance
    # ------------------------------------------------------------------

    def _on_member_join(
        self, mss_id: str, mh_id: str, prev_mss_id: Optional[str]
    ) -> None:
        if mh_id not in self.members:
            return
        self.local_members[mss_id].add(mh_id)
        if prev_mss_id is None or prev_mss_id == mss_id:
            return
        # As part of handoff, the new MSS asks the previous MSS to
        # assess the move and notify the coordinator if it was
        # significant.
        self.network.mss(mss_id).send_fixed(
            prev_mss_id,
            self.kind_notice,
            MoveNotice(mh_id, mss_id),
            self.scope,
        )

    def _on_move_notice(self, message: Message) -> None:
        prev_mss_id = message.dst
        notice: MoveNotice = message.payload
        if self.network.mss(prev_mss_id).is_local(notice.mh_id):
            # Stale notice: the member has already bounced back to this
            # cell (a later join overtook the notice for an earlier
            # departure).  Acting on it would wipe the fresh local
            # entry and desynchronize the view from reality.
            return
        self.local_members[prev_mss_id].discard(notice.mh_id)
        my_copy = self.view_copies.get(prev_mss_id, set())
        add_needed = notice.new_mss_id not in my_copy
        delete_needed = not self.local_members[prev_mss_id]
        if not add_needed and not delete_needed:
            return  # insignificant move: no change to LV(G)
        self.stats.significant_moves += 1
        if self.network._trace_on:
            self.network._trace.emit(
                "lv.significant_move",
                scope=self.scope,
                src=prev_mss_id,
                mh_id=notice.mh_id,
                add=notice.new_mss_id if add_needed else None,
                delete=prev_mss_id if delete_needed else None,
            )
        self._send_change(
            prev_mss_id,
            add_mss_id=notice.new_mss_id if add_needed else None,
            delete_mss_id=prev_mss_id if delete_needed else None,
        )

    def _send_change(
        self,
        from_mss_id: str,
        add_mss_id: Optional[str],
        delete_mss_id: Optional[str],
    ) -> None:
        if (
            delete_mss_id is not None
            and delete_mss_id != self.coordinator_mss_id
        ):
            # The deleted MSS leaves the view; drop its copy.  The
            # coordinator keeps its copy even when its own cell leaves
            # the view -- it maintains one for its coordinating role.
            self.view_copies.pop(delete_mss_id, None)
        self.network.mss(from_mss_id).send_fixed(
            self.coordinator_mss_id,
            self.kind_change,
            ChangeRequest(
                add_mss_id=add_mss_id, delete_mss_id=delete_mss_id
            ),
            self.scope,
        )

    # ------------------------------------------------------------------
    # Membership changes (extension)
    # ------------------------------------------------------------------

    def _on_member_added(self, mh_id: str) -> None:
        # A join is like a significant "move in from nowhere" when the
        # newcomer's cell is outside the view.
        mss_id = self.current_mss_of(mh_id)
        self.local_members[mss_id].add(mh_id)
        copy = self.view_copies.get(mss_id)
        if copy is None or mss_id not in copy:
            self._send_change(mss_id, add_mss_id=mss_id,
                              delete_mss_id=None)

    def _on_member_removed(self, mh_id: str) -> None:
        # A leave is like a significant "move out to nowhere" when the
        # leaver was the only member in its cell.
        for mss_id, local in self.local_members.items():
            if mh_id in local:
                local.discard(mh_id)
                copy = self.view_copies.get(mss_id)
                in_view = copy is not None and mss_id in copy
                if not local and in_view:
                    self._send_change(mss_id, add_mss_id=None,
                                      delete_mss_id=mss_id)
                return

    def _on_change(self, message: Message) -> None:
        coordinator = message.dst
        change: ChangeRequest = message.payload
        view = self.view_copies[coordinator]
        if change.delete_mss_id is not None:
            view.discard(change.delete_mss_id)
        if change.add_mss_id is not None:
            view.add(change.add_mss_id)
        self.max_view_size = max(self.max_view_size, len(view))
        if self.network._trace_on:
            self.network._trace.emit(
                "lv.update",
                scope=self.scope,
                src=coordinator,
                add=change.add_mss_id,
                delete=change.delete_mss_id,
                view=sorted(view),
            )
        mss = self.network.mss(coordinator)
        if change.add_mss_id is not None and change.add_mss_id != coordinator:
            # The coordinator's own cell re-entering the view needs no
            # full copy: its authoritative copy is already current, and
            # a self-addressed (asynchronously delivered) snapshot would
            # overwrite concurrent updates applied in the meantime.
            mss.send_fixed(
                change.add_mss_id,
                self.kind_full,
                FullCopy(frozenset(view)),
                self.scope,
            )
        for view_mss in sorted(view):
            if view_mss in (coordinator, change.add_mss_id):
                continue
            mss.send_fixed(
                view_mss,
                self.kind_incr,
                IncrementalUpdate(change.add_mss_id, change.delete_mss_id),
                self.scope,
            )
        if change.add_mss_id is not None and self.on_view_add is not None:
            self.on_view_add(change.add_mss_id)

    def _on_full_copy(self, message: Message) -> None:
        payload: FullCopy = message.payload
        self.view_copies[message.dst] = set(payload.view)

    def _on_incremental(self, message: Message) -> None:
        copy = self.view_copies.get(message.dst)
        if copy is None:
            return  # this MSS already left the view; stale update
        update: IncrementalUpdate = message.payload
        if update.delete_mss_id is not None:
            copy.discard(update.delete_mss_id)
        if update.add_mss_id is not None:
            copy.add(update.add_mss_id)
