"""Always-inform strategy (Section 4.2).

Every member MH maintains a location directory ``LD(G)`` mapping each
member to its current MSS.  A group message consults the directory and
sends one copy to each member's MSS over the fixed network:
``(|G|-1) * (2*C_wireless + C_fixed)`` per message -- the search is
replaced by a cheap fixed hop.  The price is paid on *moves*: after
every move the mover floods a location update to all members at the
same per-copy cost, so the effective cost per group message is
``(MOB/MSG + 1) * (|G|-1) * (2*C_wireless + C_fixed)`` -- the
mobility-to-message ratio governs the scheme's efficiency.

This extends the per-MH location directory of the network-layer
protocol in the paper's reference [6] to groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.groups.base import GroupStrategy
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class DirectedCopy:
    """A copy addressed to one member at its believed location."""

    dst_mh_id: str
    dst_mss_id: str
    payload: object


@dataclass(frozen=True)
class LocationUpdate:
    """'I moved to ``new_mss_id``' -- updates the receivers' LD(G)."""

    mover_mh_id: str
    new_mss_id: str


@dataclass(frozen=True)
class Hello:
    """A joining member announces itself and its location
    (membership extension; delivered via search, the newcomer has no
    directory yet)."""

    mh_id: str
    mss_id: str


@dataclass(frozen=True)
class Welcome:
    """An existing member tells a newcomer its own location."""

    mh_id: str
    mss_id: str


@dataclass(frozen=True)
class Goodbye:
    """A leaving member asks the others to drop its directory entry."""

    mh_id: str


class AlwaysInformGroup(GroupStrategy):
    """The eager location-directory strategy."""

    def __init__(
        self,
        network: "Network",
        members: List[str],
        scope: str = "group-ai",
    ) -> None:
        super().__init__(network, members, scope)
        self.kind_route = f"{scope}.route"
        self.kind_forward = f"{scope}.forward"
        self.kind_update = f"{scope}.update"
        self.kind_hello_route = f"{scope}.hello_route"
        self.kind_hello = f"{scope}.hello"
        self.kind_welcome = f"{scope}.welcome"
        self.kind_goodbye = f"{scope}.goodbye"
        #: per-member location directory: member -> (member -> MSS).
        self.directories: Dict[str, Dict[str, str]] = {}
        self._ai_wired: set = set()
        initial = {
            member: self.current_mss_of(member) for member in members
        }
        for member in members:
            self.directories[member] = dict(initial)
            self._wire_ai_member(member)
        for mss_id in network.mss_ids():
            mss = network.mss(mss_id)
            mss.register_handler(self.kind_route, self._relay)
            mss.register_handler(self.kind_forward, self._forward)
            mss.register_handler(self.kind_hello_route, self._hello_relay)
        #: deliveries that found the directory entry stale and needed a
        #: fallback search (the race Section 4 disregards).
        self.stale_deliveries = 0

    def _wire_ai_member(self, member: str) -> None:
        if member in self._ai_wired:
            return
        self._ai_wired.add(member)
        mh = self.network.mobile_host(member)
        mh.register_handler(self.kind_update, self._on_update)
        mh.register_handler(self.kind_hello, self._on_hello)
        mh.register_handler(self.kind_welcome, self._on_welcome)
        mh.register_handler(self.kind_goodbye, self._on_goodbye)

    # ------------------------------------------------------------------
    # Sending: group messages and location updates share one path
    # ------------------------------------------------------------------

    def _send(self, sender_mh_id: str, payload: object,
              msg_id: int) -> None:
        from repro.groups.base import DeliveryEnvelope

        self._flood(
            sender_mh_id, self.kind_deliver,
            DeliveryEnvelope(msg_id, payload),
        )

    def _after_member_attached(self, mh_id: str) -> None:
        # After a move, inform every member of the new location.
        update = LocationUpdate(mh_id, self.current_mss_of(mh_id))
        self.directories[mh_id][mh_id] = update.new_mss_id
        self._flood(mh_id, self.kind_update, update)

    def _flood(self, sender_mh_id: str, kind: str, payload: object) -> None:
        mh = self.network.mobile_host(sender_mh_id)
        if not mh.is_connected:  # pragma: no cover - defensive
            return
        directory = self.directories[sender_mh_id]
        for member in self.members:
            if member == sender_mh_id:
                continue
            # A sender whose directory has no entry yet (a freshly
            # joined member whose welcomes are still in flight) routes
            # the copy via its own MSS; the fallback search finds the
            # destination.
            believed = directory.get(member, mh.current_mss_id)
            copy = DirectedCopy(member, believed, payload)
            # Tag the copy with the final kind so the relay knows what
            # to deliver.
            mh.send_to_mss(self.kind_route, (kind, copy), self.scope)

    # ------------------------------------------------------------------
    # MSS side
    # ------------------------------------------------------------------

    def _relay(self, message: Message) -> None:
        kind, copy = message.payload
        self.network.mss(message.dst).send_fixed(
            copy.dst_mss_id, self.kind_forward, (kind, copy), self.scope
        )

    def _forward(self, message: Message) -> None:
        kind, copy = message.payload
        mss = self.network.mss(message.dst)
        if mss.is_local(copy.dst_mh_id):
            self.network.send_wireless_down(
                mss.host_id,
                copy.dst_mh_id,
                Message(
                    kind=kind,
                    src=message.src,
                    dst=copy.dst_mh_id,
                    payload=copy.payload,
                    scope=self.scope,
                ),
                # The member left while the copy was on the air: recover
                # with a search, like any other stale delivery.
                on_lost=lambda msg: self._search_fallback(
                    mss.host_id, kind, copy
                ),
            )
            return
        self._search_fallback(mss.host_id, kind, copy)

    def _search_fallback(
        self, from_mss_id: str, kind: str, copy: DirectedCopy
    ) -> None:
        # Stale directory entry: the member moved while the copy was in
        # flight.  Fall back to a search so the message is not lost.
        self.stale_deliveries += 1

        def on_disconnected(outcome) -> None:
            # Only group messages are accounted; a lost location update
            # merely leaves the directory stale.
            if kind == self.kind_deliver:
                self._record_missed(
                    copy.payload.msg_id, copy.dst_mh_id
                )

        self.network.send_to_mh(
            from_mss_id,
            copy.dst_mh_id,
            Message(
                kind=kind,
                src=from_mss_id,
                dst=copy.dst_mh_id,
                payload=copy.payload,
                scope=self.scope,
            ),
            on_disconnected=on_disconnected,
        )

    # ------------------------------------------------------------------
    # Membership changes (extension)
    # ------------------------------------------------------------------

    def _on_member_added(self, mh_id: str) -> None:
        # The newcomer starts with a directory knowing only itself and
        # announces itself to every member via search (it has no
        # location knowledge yet); each member adds the entry and
        # replies with a directed welcome carrying its own location.
        here = self.current_mss_of(mh_id)
        self.directories[mh_id] = {mh_id: here}
        self._wire_ai_member(mh_id)
        mh = self.network.mobile_host(mh_id)
        hello = Hello(mh_id, here)
        for member in self.members:
            if member == mh_id:
                continue
            mh.send_to_mss(
                self.kind_hello_route, (member, hello), self.scope
            )

    def _on_member_removed(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if mh.is_connected:
            # Protocol hygiene: ask the others to drop the entry.  A
            # detached leaver simply goes stale -- the entry is never
            # consulted again because sends iterate current members.
            self._flood(mh_id, self.kind_goodbye, Goodbye(mh_id))
        self.directories.pop(mh_id, None)

    def _hello_relay(self, message: Message) -> None:
        dst_member, hello = message.payload
        self.network.send_to_mh(
            message.dst,
            dst_member,
            Message(
                kind=self.kind_hello,
                src=message.src,
                dst=dst_member,
                payload=hello,
                scope=self.scope,
            ),
        )

    # ------------------------------------------------------------------
    # MH side
    # ------------------------------------------------------------------

    def _on_update(self, message: Message) -> None:
        update: LocationUpdate = message.payload
        self.directories[message.dst][update.mover_mh_id] = (
            update.new_mss_id
        )

    def _on_hello(self, message: Message) -> None:
        hello: Hello = message.payload
        member = message.dst
        directory = self.directories.get(member)
        if directory is None:  # pragma: no cover - left the group
            return
        directory[hello.mh_id] = hello.mss_id
        # Welcome the newcomer with our own location (directed copy).
        mh = self.network.mobile_host(member)
        if not mh.is_connected:  # pragma: no cover - defensive
            return
        welcome = Welcome(member, mh.current_mss_id)
        copy = DirectedCopy(hello.mh_id, hello.mss_id, welcome)
        mh.send_to_mss(
            self.kind_route, (self.kind_welcome, copy), self.scope
        )

    def _on_welcome(self, message: Message) -> None:
        welcome: Welcome = message.payload
        directory = self.directories.get(message.dst)
        if directory is not None:
            directory[welcome.mh_id] = welcome.mss_id

    def _on_goodbye(self, message: Message) -> None:
        goodbye: Goodbye = message.payload
        directory = self.directories.get(message.dst)
        if directory is not None:
            directory.pop(goodbye.mh_id, None)
