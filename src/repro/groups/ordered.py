"""Totally ordered group messaging over the location view.

Section 4 of the paper separates *group communication* (delivery
semantics: reliability, ordering) from *group location* (where the
members are) and contributes the location view for the latter.  This
module closes the loop: it composes the location view with the
sequencing idea of the paper's reference [1] to provide **total order
+ exactly-once** delivery whose fan-out traffic is proportional to
|LV(G)|, not to M (as the all-MSS flooding of
:mod:`repro.multicast` is) nor to |G| (as per-member directories are).

Design, and the contrast with :class:`~repro.multicast.ExactlyOnceMulticast`:

* the group's coordinator MSS doubles as the *sequencer*: it stamps
  each message with a sequence number, appends it to its history, and
  fans it out to the MSSs in its copy of LV(G);
* ordering state lives **at the member MH** (expected sequence number
  plus a holdback queue), so it travels with the host for free --
  no handoff choreography needed (the multicast keeps its counters at
  the MSSs and must hand them off);
* a member that missed messages while mid-move detects the gap from
  the next delivery (or from the *sync* its new cell requests from the
  coordinator on every join) and asks the coordinator to resend --
  a classic negative-acknowledgement repair.

Cost per message: ``C_w`` uplink + at most one fixed hop to the
sequencer + ``(|LV|-1) C_f`` fan-out + one ``C_w`` per receiving
member; repairs and syncs cost a constant number of messages each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.groups.location_view import LocationViewGroup
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class Publish:
    """Member -> sequencer: order and distribute this payload."""

    sender_mh_id: str
    payload: object


@dataclass(frozen=True)
class Sequenced:
    """Sequencer -> view MSSs -> members: message ``seq``."""

    seq: int
    sender_mh_id: str
    payload: object


@dataclass(frozen=True)
class RepairRequest:
    """Member -> (MSS ->) sequencer: resend these sequence numbers."""

    mh_id: str
    missing: Tuple[int, ...]
    reply_mss_id: str


@dataclass(frozen=True)
class SyncRequest:
    """New cell -> sequencer: what is the latest sequence number?"""

    mh_id: str
    reply_mss_id: str


@dataclass
class _MemberState:
    """Ordering state carried by (conceptually *on*) the member MH."""

    expected: int = 1
    holdback: Dict[int, Sequenced] = field(default_factory=dict)


class OrderedGroup:
    """Total-order, exactly-once group messaging on a location view.

    Args:
        network: the simulated system.
        members: the group (fixed membership).
        scope: metrics scope for ordering traffic; the underlying
            location view's maintenance runs under ``{scope}-view``.
        coordinator_mss_id: sequencer MSS (default: first registered).
    """

    def __init__(
        self,
        network: "Network",
        members: List[str],
        scope: str = "group-ord",
        coordinator_mss_id: Optional[str] = None,
    ) -> None:
        self.network = network
        self.members = list(members)
        self.scope = scope
        #: the location view provides membership locations; its
        #: maintenance traffic is accounted separately.
        self.view = LocationViewGroup(
            network, members, scope=f"{scope}-view",
            coordinator_mss_id=coordinator_mss_id,
        )
        self.coordinator_mss_id = self.view.coordinator_mss_id
        self.kind_publish = f"{scope}.publish"
        self.kind_submit = f"{scope}.submit"
        self.kind_fanout = f"{scope}.fanout"
        self.kind_deliver = f"{scope}.deliver"
        self.kind_nack = f"{scope}.nack"
        self.kind_repair = f"{scope}.repair"
        self.kind_sync_req = f"{scope}.sync_req"
        self.kind_sync_rsp = f"{scope}.sync_rsp"
        self.kind_sync = f"{scope}.sync"
        self.kind_cell_sync = f"{scope}.cell_sync"
        # Messages sequenced while a view addition is in flight never
        # reach the new cell's members; the coordinator brings the cell
        # up to date the moment it applies the addition.
        self.view.on_view_add = self._on_view_add
        self._next_seq = 0
        #: full message history at the sequencer (see class docstring).
        self.history: Dict[int, Sequenced] = {}
        self._states: Dict[str, _MemberState] = {
            member: _MemberState() for member in members
        }
        #: (time, member, seq, payload) per in-order delivery.
        self.delivered: List[Tuple[float, str, int, object]] = []
        self.repairs_requested = 0
        for mss_id in network.mss_ids():
            mss = network.mss(mss_id)
            mss.register_handler(self.kind_publish, self._on_publish)
            mss.register_handler(self.kind_submit, self._on_submit)
            mss.register_handler(self.kind_fanout, self._on_fanout)
            mss.register_handler(self.kind_nack, self._on_nack_uplink)
            mss.register_handler(self.kind_repair, self._on_repair)
            mss.register_handler(self.kind_sync_req, self._on_sync_req)
            mss.register_handler(self.kind_sync_rsp, self._on_sync_rsp)
            mss.register_handler(self.kind_cell_sync, self._on_cell_sync)
            mss.add_join_listener(
                lambda mh_id, prev, m=mss_id: self._on_member_join(
                    m, mh_id
                )
            )
        for member in members:
            mh = network.mobile_host(member)
            mh.register_handler(self.kind_deliver, self._on_deliver)
            mh.register_handler(self.kind_sync, self._on_sync)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def send(self, sender_mh_id: str, payload: object) -> None:
        """Publish ``payload`` to the group in total order."""
        if sender_mh_id not in self.members:
            raise ConfigurationError(
                f"{sender_mh_id} is not a group member"
            )
        mh = self.network.mobile_host(sender_mh_id)
        mh.send_to_mss(
            self.kind_publish, Publish(sender_mh_id, payload), self.scope
        )

    def delivered_seqs(self, mh_id: str) -> List[int]:
        """Sequence numbers delivered to ``mh_id`` in delivery order."""
        return [seq for (_, m, seq, _) in self.delivered if m == mh_id]

    @property
    def messages_sent(self) -> int:
        """Messages sequenced so far."""
        return self._next_seq

    # ------------------------------------------------------------------
    # Sequencer side
    # ------------------------------------------------------------------

    def _on_publish(self, message: Message) -> None:
        mss_id = message.dst
        if mss_id == self.coordinator_mss_id:
            self._sequence(message.payload)
        else:
            self.network.mss(mss_id).send_fixed(
                self.coordinator_mss_id, self.kind_submit,
                message.payload, self.scope,
            )

    def _on_submit(self, message: Message) -> None:
        self._sequence(message.payload)

    def _sequence(self, publish: Publish) -> None:
        self._next_seq += 1
        sequenced = Sequenced(
            self._next_seq, publish.sender_mh_id, publish.payload
        )
        self.history[sequenced.seq] = sequenced
        coordinator = self.network.mss(self.coordinator_mss_id)
        view = self.view.view_copies[self.coordinator_mss_id]
        for view_mss in sorted(view):
            if view_mss == self.coordinator_mss_id:
                continue
            coordinator.send_fixed(
                view_mss, self.kind_fanout, sequenced, self.scope
            )
        # The coordinator's own cell may host members even when it is
        # not in the view; delivering locally is free either way.
        self._deliver_local(self.coordinator_mss_id, sequenced)

    # ------------------------------------------------------------------
    # Cell-side delivery
    # ------------------------------------------------------------------

    def _on_fanout(self, message: Message) -> None:
        self._deliver_local(message.dst, message.payload)

    def _deliver_local(self, mss_id: str, sequenced: Sequenced) -> None:
        mss = self.network.mss(mss_id)
        for member in sorted(self.view.local_members[mss_id]):
            if not mss.is_local(member):
                continue  # mid-move: repaired via sync-on-join later
            self.network.send_wireless_down(
                mss_id,
                member,
                Message(
                    kind=self.kind_deliver,
                    src=mss_id,
                    dst=member,
                    payload=sequenced,
                    scope=self.scope,
                ),
            )

    # ------------------------------------------------------------------
    # Member side: holdback ordering and gap repair
    # ------------------------------------------------------------------

    def _on_deliver(self, message: Message) -> None:
        member = message.dst
        sequenced: Sequenced = message.payload
        state = self._states[member]
        if sequenced.seq < state.expected:
            return  # duplicate (e.g. a repair raced a regular copy)
        state.holdback[sequenced.seq] = sequenced
        self._flush(member, state)
        if state.holdback:
            # A gap precedes the held messages: ask for a repair.
            self._request_repair(member, state)

    def _flush(self, member: str, state: _MemberState) -> None:
        while state.expected in state.holdback:
            sequenced = state.holdback.pop(state.expected)
            state.expected += 1
            self.delivered.append(
                (
                    self.network.scheduler.now,
                    member,
                    sequenced.seq,
                    sequenced.payload,
                )
            )

    def _request_repair(self, member: str, state: _MemberState) -> None:
        mh = self.network.mobile_host(member)
        if not mh.is_connected:  # pragma: no cover - defensive
            return
        highest_held = max(state.holdback)
        missing = tuple(
            seq
            for seq in range(state.expected, highest_held)
            if seq not in state.holdback
        )
        if not missing:
            return
        self.repairs_requested += 1
        mh.send_to_mss(
            self.kind_nack,
            RepairRequest(member, missing, mh.current_mss_id),
            self.scope,
        )

    def _on_nack_uplink(self, message: Message) -> None:
        request: RepairRequest = message.payload
        mss_id = message.dst
        if mss_id == self.coordinator_mss_id:
            self._repair(request)
        else:
            self.network.mss(mss_id).send_fixed(
                self.coordinator_mss_id, self.kind_repair, request,
                self.scope,
            )

    def _on_repair(self, message: Message) -> None:
        self._repair(message.payload)

    def _repair(self, request: RepairRequest) -> None:
        # Resend straight to the member's (reported) cell; if it moved
        # again, the next sync-on-join triggers another repair.
        coordinator = self.network.mss(self.coordinator_mss_id)
        for seq in request.missing:
            sequenced = self.history.get(seq)
            if sequenced is None:
                continue
            if request.reply_mss_id == self.coordinator_mss_id:
                self._deliver_repair(
                    self.coordinator_mss_id, request.mh_id, sequenced
                )
            else:
                coordinator.send_fixed(
                    request.reply_mss_id,
                    self.kind_fanout,
                    sequenced,
                    self.scope,
                )

    def _deliver_repair(self, mss_id: str, mh_id: str,
                        sequenced: Sequenced) -> None:
        mss = self.network.mss(mss_id)
        if mss.is_local(mh_id):
            mss.send_to_local_mh(
                mh_id, self.kind_deliver, sequenced, self.scope
            )

    # ------------------------------------------------------------------
    # Sync-on-join: bounded tail loss
    # ------------------------------------------------------------------

    def _on_member_join(self, mss_id: str, mh_id: str) -> None:
        if mh_id not in self._states:
            return
        self.network.mss(mss_id).send_fixed(
            self.coordinator_mss_id,
            self.kind_sync_req,
            SyncRequest(mh_id, mss_id),
            self.scope,
        )

    def _on_sync_req(self, message: Message) -> None:
        request: SyncRequest = message.payload
        # The sync request doubles as a view audit.  The paper's view
        # protocol has a (disregarded) race: a move into a cell that a
        # concurrent delete is removing can be judged insignificant
        # against a stale copy, leaving a member's cell permanently
        # outside the view.  The coordinator is the serialization
        # point, so it repairs the anomaly here: a cell reporting a
        # member join must be in the view.
        coordinator_copy = self.view.view_copies[self.coordinator_mss_id]
        if request.reply_mss_id not in coordinator_copy:
            from repro.groups.location_view import ChangeRequest
            self.view._on_change(
                Message(
                    kind=self.view.kind_change,
                    src=self.coordinator_mss_id,
                    dst=self.coordinator_mss_id,
                    payload=ChangeRequest(
                        add_mss_id=request.reply_mss_id,
                        delete_mss_id=None,
                    ),
                    scope=self.view.scope,
                )
            )
        self.network.mss(self.coordinator_mss_id).send_fixed(
            request.reply_mss_id,
            self.kind_sync_rsp,
            (request.mh_id, self._next_seq),
            self.scope,
        )

    def _on_sync_rsp(self, message: Message) -> None:
        mh_id, max_seq = message.payload
        mss = self.network.mss(message.dst)
        if mss.is_local(mh_id):
            mss.send_to_local_mh(
                mh_id, self.kind_sync, max_seq, self.scope
            )

    def _on_view_add(self, added_mss_id: str) -> None:
        if added_mss_id == self.coordinator_mss_id:
            self._on_cell_sync_at(added_mss_id, self._next_seq)
            return
        self.network.mss(self.coordinator_mss_id).send_fixed(
            added_mss_id, self.kind_cell_sync, self._next_seq, self.scope
        )

    def _on_cell_sync(self, message: Message) -> None:
        self._on_cell_sync_at(message.dst, message.payload)

    def _on_cell_sync_at(self, mss_id: str, max_seq: int) -> None:
        mss = self.network.mss(mss_id)
        for member in sorted(self.view.local_members[mss_id]):
            if member in self._states and mss.is_local(member):
                mss.send_to_local_mh(
                    member, self.kind_sync, max_seq, self.scope
                )

    def _on_sync(self, message: Message) -> None:
        member = message.dst
        max_seq = message.payload
        state = self._states[member]
        missing = tuple(
            seq
            for seq in range(state.expected, max_seq + 1)
            if seq not in state.holdback
        )
        if not missing:
            return
        mh = self.network.mobile_host(member)
        if not mh.is_connected:  # pragma: no cover - defensive
            return
        self.repairs_requested += 1
        mh.send_to_mss(
            self.kind_nack,
            RepairRequest(member, missing, mh.current_mss_id),
            self.scope,
        )
