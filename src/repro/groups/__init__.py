"""Group location management for mobile hosts (Section 4; S16-S18).

*Group location* -- the set of current locations of a group's members --
is the new problem host mobility adds to process groups.  Three
strategies manage it, trading *search* cost (finding members when a
group message is sent) against *inform* cost (propagating location
updates when members move):

* :class:`PureSearchGroup` -- no location state; every group message
  searches for every member.  Per-message cost
  ``(|G|-1)*(2*C_wireless + C_search)``, independent of mobility.
* :class:`AlwaysInformGroup` -- every member keeps a location directory
  ``LD(G)``; every move floods location updates to all members.
  Effective per-message cost
  ``(MOB/MSG + 1)*(|G|-1)*(2*C_wireless + C_fixed)``.
* :class:`LocationViewGroup` -- the location view ``LV(G)`` (the set of
  MSSs hosting at least one member) is replicated at the view MSSs and
  serialized through a coordinator; only *significant* moves update it.
  Effective per-message cost depends only on the significant fraction
  of the mobility-to-message ratio, and static-network traffic is
  proportional to ``|LV|`` rather than ``|G|``.

All three share the :class:`GroupStats` accounting of MOB (member
moves), MSG (group messages) and deliveries, so benches can compute the
paper's effective costs directly.
"""

from repro.groups.base import GroupStats, GroupStrategy
from repro.groups.pure_search import PureSearchGroup
from repro.groups.always_inform import AlwaysInformGroup
from repro.groups.location_view import LocationViewGroup
from repro.groups.ordered import OrderedGroup

__all__ = [
    "AlwaysInformGroup",
    "GroupStats",
    "GroupStrategy",
    "LocationViewGroup",
    "OrderedGroup",
    "PureSearchGroup",
]
