"""Pure search strategy (Section 4.1).

A MH only keeps the member list of G; nobody tracks anybody's location.
To send a group message, the sender transmits one point-to-point message
per member, each of which incurs a search:
``(|G|-1) * (2*C_wireless + C_search)`` per group message, independent
of MOB.  This extends the "search on demand" idea of the network-layer
protocol in the paper's reference [10] from single MHs to groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.groups.base import GroupStrategy
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


@dataclass(frozen=True)
class RoutedCopy:
    """One member's copy, relayed through the sender's local MSS."""

    dst_mh_id: str
    envelope: object


class PureSearchGroup(GroupStrategy):
    """The stateless search-everything strategy."""

    def __init__(
        self,
        network: "Network",
        members: List[str],
        scope: str = "group-ps",
    ) -> None:
        super().__init__(network, members, scope)
        self.kind_route = f"{scope}.route"
        for mss_id in network.mss_ids():
            network.mss(mss_id).register_handler(
                self.kind_route, self._relay
            )

    def _send(self, sender_mh_id: str, payload: object,
              msg_id: int) -> None:
        from repro.groups.base import DeliveryEnvelope

        mh = self.network.mobile_host(sender_mh_id)
        envelope = DeliveryEnvelope(msg_id, payload)
        for member in self.members:
            if member == sender_mh_id:
                continue
            # One separate point-to-point message per member: a wireless
            # uplink followed by a search.
            mh.send_to_mss(
                self.kind_route, RoutedCopy(member, envelope), self.scope
            )

    def _relay(self, message: Message) -> None:
        routed: RoutedCopy = message.payload
        self.network.send_to_mh(
            message.dst,
            routed.dst_mh_id,
            Message(
                kind=self.kind_deliver,
                src=message.src,
                dst=routed.dst_mh_id,
                payload=routed.envelope,
                scope=self.scope,
            ),
            on_disconnected=lambda outcome: self._record_missed(
                routed.envelope.msg_id, routed.dst_mh_id
            ),
        )
