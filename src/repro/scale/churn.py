"""A periodic crowd-churn driver over the population store.

The scale counterpart of :class:`~repro.mobility.UniformMobility` /
:class:`~repro.mobility.DisconnectionModel` (ROADMAP item 2): instead
of one Poisson process and one scheduled event per MH, a single
self-rescheduling tick applies the store's batched cohort operations
-- so the scheduler cost of crowd churn is O(ticks), not O(N).
Deterministic given its RNG, like every other driver.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.scale.store import PopulationStore
from repro.sim import Scheduler


class CrowdChurn:
    """Apply mass move/disconnect/reconnect to the crowd every ``tick``.

    Args:
        population: the store to churn.
        scheduler: the simulation scheduler.
        tick: simulated time between churn rounds.
        move_fraction: fraction of the passive connected crowd moved
            per tick.
        disconnect_fraction: fraction of the passive connected crowd
            disconnected per tick.
        reconnect_fraction: fraction of the passive *disconnected*
            crowd reconnected per tick.
        rng: randomness source (default: seeded ``Random(0)``).
    """

    def __init__(
        self,
        population: PopulationStore,
        scheduler: Scheduler,
        tick: float = 10.0,
        move_fraction: float = 0.01,
        disconnect_fraction: float = 0.0,
        reconnect_fraction: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if tick <= 0:
            raise ConfigurationError("tick must be positive")
        self.population = population
        self.scheduler = scheduler
        self.tick = tick
        self.move_fraction = move_fraction
        self.disconnect_fraction = disconnect_fraction
        self.reconnect_fraction = reconnect_fraction
        self.rng = rng if rng is not None else random.Random(0)
        self.ticks = 0
        self.moved = 0
        self.disconnected = 0
        self.reconnected = 0
        self._event = None
        self._running = False

    def start(self) -> None:
        """Schedule the first tick (idempotent)."""
        if self._running:
            return
        self._running = True
        self._event = self.scheduler.schedule(self.tick, self._fire)

    def stop(self) -> None:
        """Cancel the pending tick and stop rescheduling."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._running:
            return
        population = self.population
        rng = self.rng
        if self.move_fraction:
            self.moved += population.mass_move(self.move_fraction, rng)
        if self.disconnect_fraction:
            self.disconnected += population.mass_disconnect(
                self.disconnect_fraction, rng
            )
        if self.reconnect_fraction:
            self.reconnected += population.mass_reconnect(
                self.reconnect_fraction, rng
            )
        self.ticks += 1
        self._event = self.scheduler.schedule(self.tick, self._fire)
