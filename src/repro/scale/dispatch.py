"""Batched event dispatch for cohort operations.

ROADMAP item 2: mass events (a stadium emptying, a conference cohort
reconnecting) used to schedule one scheduler event per MH, so a
100k-MH cohort cost 100k heap pushes before a single one fired.
:func:`dispatch_coalesced` caps the scheduler footprint: when a cohort
fits inside the batch budget every operation keeps its exact delay,
and beyond the budget operations are grouped onto a quantized delay
grid -- one scheduler event per occupied grid slot, members executed
in their original draw order.

Quantization always rounds *up* (an operation never fires earlier than
requested) and the grid resolution is ``max_delay / (max_batches-1)``,
so the perturbation is bounded by one grid step.  With ``spread == 0``
(every delay identical) the whole cohort collapses to a single event
at the exact requested time, which is behaviourally identical to the
unbatched path: the scheduler's FIFO tie-break would have fired the N
separate events in insertion order anyway.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.sim import Scheduler

#: one cohort operation: (delay, callback, args tuple).
Op = Tuple[float, Callable[..., None], tuple]

#: default scheduler-event budget per cohort.
DEFAULT_MAX_BATCHES = 32


def _run_batch(ops: List[Op]) -> None:
    for _, callback, args in ops:
        callback(*args)


def dispatch_coalesced(
    scheduler: Scheduler,
    ops: Sequence[Op],
    max_batches: int = DEFAULT_MAX_BATCHES,
) -> int:
    """Schedule ``ops`` using at most ``max_batches`` scheduler events.

    Args:
        scheduler: the simulation scheduler.
        ops: ``(delay, callback, args)`` triples; ``callback(*args)``
            runs when its batch fires.  Order within a batch is the
            order of ``ops``.
        max_batches: scheduler-event budget.  Cohorts no larger than
            the budget are scheduled individually with exact delays
            (zero perturbation); larger cohorts share quantized slots.

    Returns:
        The number of scheduler events actually used.
    """
    if max_batches < 1:
        raise ValueError("max_batches must be >= 1")
    ops = list(ops)
    if not ops:
        return 0
    if len(ops) <= max_batches:
        for delay, callback, args in ops:
            scheduler.post(delay, callback, *args)
        return len(ops)
    max_delay = max(op[0] for op in ops)
    if max_delay <= 0.0:
        scheduler.post(0.0, _run_batch, ops)
        return 1
    if max_batches == 1:
        # Never early: the lone batch fires once every delay has passed.
        scheduler.post(max_delay, _run_batch, ops)
        return 1
    # Slot 0 holds exactly delay-zero ops, so the positive delays get
    # max_batches - 1 grid steps; ceil keeps every op at-or-after its
    # requested delay and the slot range 0..max_batches-1 keeps the
    # bucket count within budget.
    grid = max_delay / (max_batches - 1)
    buckets: dict = {}
    for op in ops:
        slot = math.ceil(op[0] / grid)
        if slot > max_batches - 1:  # guard against float round-up
            slot = max_batches - 1
        bucket = buckets.get(slot)
        if bucket is None:
            buckets[slot] = bucket = []
        bucket.append(op)
    for slot, batch in sorted(buckets.items()):
        scheduler.post(slot * grid, _run_batch, batch)
    return len(buckets)
