"""Struct-of-arrays population store for million-MH simulations.

ROADMAP item 2 ("scale-out to millions of MHs"): the paper's two-tier
structure keeps per-MH state tiny -- a cell, a connectivity flag, a few
counters -- so representing every MH as a full python object is pure
overhead for the *passive crowd* that no protocol is currently talking
to.  :class:`PopulationStore` keeps that crowd in parallel ``array``
buffers (~50 bytes per MH instead of ~1 KB of object graph) and
materialises a real :class:`~repro.hosts.mh.MobileHost` only when
something actually touches a host ("promotion").  Promotion is silent
-- no events, no messages, no RNG draws -- so with the abstract search
protocol a run with the store enabled is byte-identical (same event
count, same metrics) to the plain object path at any N small enough to
run both.

Demotion writes a clean object's state back into the arrays and drops
the object; hosts carrying protocol state (registered handlers, attach
listeners, in-transit moves) are never demoted -- protocols pin their
participants to the object path simply by attaching to them.

Cohort operations (:meth:`mass_move`, :meth:`mass_disconnect`,
:meth:`mass_reconnect`) mutate the arrays directly and record the same
message counts the Section 2 protocol would have charged, aggregated
under the :data:`CROWD_ID` pseudo-host so metrics stay O(1) in N.
"""

from __future__ import annotations

import random
from array import array
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, SimulationError, UnknownHostError
from repro.hosts.mh import HostState, MobileHost
from repro.hosts.system import MOBILITY_SCOPE
from repro.scale.stream import FixedHistogram, Welford

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: pseudo-host id under which batched crowd energy is aggregated.
CROWD_ID = "mh-crowd"

_CONNECTED = 0
_DISCONNECTED = 1

_F_ORPHANED = 1
_F_CRASHED = 2
_F_DOZING = 4
_F_PROMOTED = 8


class PopulationStore:
    """Array-backed state for MHs ``mh-0`` .. ``mh-{n-1}``.

    Args:
        network: the network this population lives in (the store
            installs itself via
            :meth:`~repro.net.network.Network.install_population`).
        n: population size.
        placement: iterable of initial cell indices, one per MH
            (already reduced modulo the cell count).
        max_active: soft cap on simultaneously promoted hosts; when
            exceeded, the store demotes the oldest *clean* promoted
            hosts.  Hosts that protocols attached to are never demoted,
            so the real active set may exceed the cap.
    """

    def __init__(
        self,
        network: "Network",
        n: int,
        placement: Iterable[int],
        max_active: int = 1024,
    ) -> None:
        if n < 0:
            raise ConfigurationError("population size must be nonnegative")
        if max_active < 1:
            raise ConfigurationError("max_active must be >= 1")
        self.network = network
        self.n = n
        self.max_active = max_active
        self._mss_ids: List[str] = network.mss_ids()
        self._mss_index: Dict[str, int] = {
            mss_id: i for i, mss_id in enumerate(self._mss_ids)
        }
        self._cell = array("l", placement)
        if len(self._cell) != n:
            raise ConfigurationError(
                f"placement yields {len(self._cell)} cells for {n} MHs"
            )

        def filled(typecode: str, value) -> array:
            return array(typecode, [value]) * n

        self._status = array("b", bytes(n))          # all connected
        self._flags = array("B", bytes(n))
        self._session = filled("l", 1)
        self._last_seq = filled("l", 0)
        self._disc_cell = filled("l", -1)
        self._moves = filled("l", 0)
        self._doze_ints = filled("l", 0)
        self._disc_epoch = filled("d", -1.0)
        self._last_move = filled("d", -1.0)
        self._last_search = filled("d", -1.0)
        self._occupancy = array("l", [0]) * len(self._mss_ids)
        self._recount_occupancy()
        self._passive_connected = n
        self._passive_disconnected = 0
        #: promoted ids in promotion order (dict preserves insertion).
        self._active_order: Dict[str, None] = {}
        self.promotions = 0
        self.demotions = 0
        self.batch_ops = 0
        #: streaming crowd telemetry -- O(1) memory regardless of N.
        self.move_interval = Welford()
        self.downtime = Welford()
        self.batch_size = Welford()
        self.move_interval_hist = FixedHistogram(
            (1.0, 5.0, 25.0, 100.0, 500.0)
        )
        self.downtime_hist = FixedHistogram((5.0, 25.0, 100.0, 500.0))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def _parse(self, mh_id: str) -> int:
        """Index for ``mh_id``, or -1 when the id is outside the store."""
        if not mh_id.startswith("mh-"):
            return -1
        rest = mh_id[3:]
        if not rest.isdigit():
            return -1
        index = int(rest)
        if index >= self.n or str(index) != rest:
            return -1
        return index

    def covers(self, mh_id: str) -> bool:
        """Whether ``mh_id`` belongs to this population (any state)."""
        return self._parse(mh_id) >= 0

    def owns(self, mh_id: str) -> bool:
        """Whether ``mh_id`` is currently *passive* (array-backed)."""
        index = self._parse(mh_id)
        return index >= 0 and not self._flags[index] & _F_PROMOTED

    def all_ids(self) -> List[str]:
        """Every covered id, in index order (O(N) -- avoid in loops)."""
        return [f"mh-{i}" for i in range(self.n)]

    # ------------------------------------------------------------------
    # Passive-state queries (no promotion)
    # ------------------------------------------------------------------

    def is_crashed(self, mh_id: str) -> bool:
        """Crashed flag of a passive MH, read without promoting it."""
        return bool(self._flags[self._index(mh_id)] & _F_CRASHED)

    def passive_local(self, mh_id: str, mss_id: str) -> bool:
        """Whether passive ``mh_id`` is connected in ``mss_id``'s cell."""
        index = self._parse(mh_id)
        if index < 0 or self._flags[index] & _F_PROMOTED:
            return False
        return (
            self._status[index] == _CONNECTED
            and self._mss_ids[self._cell[index]] == mss_id
        )

    def _index(self, mh_id: str) -> int:
        index = self._parse(mh_id)
        if index < 0:
            raise UnknownHostError(f"not in population: {mh_id}")
        return index

    # ------------------------------------------------------------------
    # Promotion / demotion
    # ------------------------------------------------------------------

    def ensure_object(self, mh_id: str) -> None:
        """Promote ``mh_id`` if it is passive; no-op otherwise."""
        if self.owns(mh_id):
            self.promote(mh_id)

    def promote(self, mh_id: str) -> MobileHost:
        """Materialise a passive MH as a full object.

        Silent by construction: restores exactly the state the object
        path would have (including the MSS-side ``local_mhs`` /
        ``disconnected_mhs`` entries) without scheduling events,
        sending messages, or drawing randomness.  The one observable
        side effect is :meth:`Network.notify_mh_joined` for connected
        hosts, which is a no-op under the abstract search protocol and
        lets location-maintaining protocols learn the cell.
        """
        index = self._index(mh_id)
        flags = self._flags[index]
        if flags & _F_PROMOTED:
            return self.network.mobile_host(mh_id)
        network = self.network
        mh = MobileHost(mh_id, network)
        mh.session = self._session[index]
        mh.last_received_seq = self._last_seq[index]
        mh.moves_completed = self._moves[index]
        mh.doze_interruptions = self._doze_ints[index]
        mh.orphaned = bool(flags & _F_ORPHANED)
        mh.crashed = bool(flags & _F_CRASHED)
        mh.dozing = bool(flags & _F_DOZING)
        connected = self._status[index] == _CONNECTED
        mss_id: Optional[str] = None
        # _disc_cell is sticky -- the *last* cell the host disconnected
        # in, mirroring the object path where disconnect_mss_id keeps
        # its value after a reconnect.
        disc = self._disc_cell[index]
        if disc >= 0:
            mh.disconnect_mss_id = self._mss_ids[disc]
        if connected:
            cell = self._cell[index]
            mss_id = self._mss_ids[cell]
            mh.state = HostState.CONNECTED
            mh.current_mss_id = mss_id
            network.mss(mss_id).local_mhs.add(mh_id)
            self._occupancy[cell] -= 1
            self._passive_connected -= 1
        else:
            if disc >= 0:
                network.mss(self._mss_ids[disc]).disconnected_mhs.add(
                    mh_id
                )
            self._passive_disconnected -= 1
        network.register_mh(mh)
        self._flags[index] = flags | _F_PROMOTED
        self._last_search[index] = network.scheduler.now
        self._active_order[mh_id] = None
        self.promotions += 1
        if connected:
            network.notify_mh_joined(mh_id, mss_id)
        if len(self._active_order) > self.max_active:
            self._enforce_cap()
        return mh

    def demotable(self, mh: MobileHost) -> bool:
        """Whether ``mh``'s state fits back into the arrays.

        In-transit hosts have a scheduled ``_arrive`` holding the
        object; hosts with registered handlers or attach listeners
        carry protocol state.  Both stay promoted.
        """
        return (
            mh.state is not HostState.IN_TRANSIT
            and not mh._handlers
            and not mh._attach_listeners
        )

    def demote(self, mh_id: str) -> None:
        """Write a clean promoted MH's state back and drop the object.

        Raises :class:`SimulationError` when the host is not demotable
        (see :meth:`demotable`).  The dropped object is poisoned (its
        session is bumped) so any in-flight downlink scheduled against
        it takes the normal lost-message retry path instead of
        delivering into a stale husk.
        """
        index = self._index(mh_id)
        if not self._flags[index] & _F_PROMOTED:
            raise SimulationError(f"{mh_id} is not promoted")
        network = self.network
        mh = network.mobile_host(mh_id)
        if not self.demotable(mh):
            raise SimulationError(
                f"{mh_id} is not demotable (in transit or carrying "
                f"protocol state)"
            )
        self._session[index] = mh.session
        self._last_seq[index] = mh.last_received_seq
        self._moves[index] = mh.moves_completed
        self._doze_ints[index] = mh.doze_interruptions
        flags = 0
        if mh.orphaned:
            flags |= _F_ORPHANED
        if mh.crashed:
            flags |= _F_CRASHED
        if mh.dozing:
            flags |= _F_DOZING
        self._flags[index] = flags
        # disconnect_mss_id is sticky on the object path (it survives a
        # reconnect), so persist it for connected hosts too.
        self._disc_cell[index] = (
            self._mss_index[mh.disconnect_mss_id]
            if mh.disconnect_mss_id is not None
            else -1
        )
        if mh.is_connected:
            cell = self._mss_index[mh.current_mss_id]
            self._status[index] = _CONNECTED
            self._cell[index] = cell
            network.mss(mh.current_mss_id).local_mhs.discard(mh_id)
            self._occupancy[cell] += 1
            self._passive_connected += 1
        else:
            self._status[index] = _DISCONNECTED
            self._cell[index] = -1
            if mh.disconnect_mss_id is not None:
                network.mss(mh.disconnect_mss_id).disconnected_mhs.discard(
                    mh_id
                )
            self._passive_disconnected += 1
        network.unregister_mh(mh_id)
        self._active_order.pop(mh_id, None)
        # Poison the husk: stale scheduled deliveries see a session
        # mismatch and retry via send_to_mh, which re-promotes.
        mh.session += 1
        self.demotions += 1

    def demote_idle(self) -> int:
        """Demote every currently demotable promoted host."""
        count = 0
        for mh_id in list(self._active_order):
            mh = self.network.mobile_host(mh_id)
            if self.demotable(mh):
                self.demote(mh_id)
                count += 1
        return count

    def _enforce_cap(self, scan_limit: int = 64) -> None:
        """Demote the oldest clean promoted hosts down to the cap.

        Scans at most ``scan_limit`` candidates per call so a mostly
        pinned active set cannot turn every promotion into an O(active)
        sweep; the cap is therefore *soft*.
        """
        excess = len(self._active_order) - self.max_active
        if excess <= 0:
            return
        scanned = 0
        for mh_id in list(self._active_order):
            if excess <= 0 or scanned >= scan_limit:
                break
            scanned += 1
            mh = self.network.mobile_host(mh_id)
            if self.demotable(mh):
                self.demote(mh_id)
                excess -= 1

    @property
    def active_count(self) -> int:
        """Currently promoted hosts."""
        return len(self._active_order)

    # ------------------------------------------------------------------
    # Batched cohort operations
    # ------------------------------------------------------------------

    def mass_move(self, fraction: float, rng: random.Random) -> int:
        """Move a random ~``fraction`` of the passive connected crowd.

        Each selected host hops to a uniformly chosen *other* cell.
        The arrays are updated directly -- no leave/join events are
        scheduled -- and the Section 2 message bill (leave + join
        uplinks, handoff request + reply) is recorded in bulk under
        :data:`CROWD_ID`.  Returns the number of hosts moved.
        """
        n_cells = len(self._mss_ids)
        if n_cells < 2 or self.n == 0:
            return 0
        attempts = round(fraction * self._passive_connected)
        if attempts <= 0:
            return 0
        now = self.network.scheduler.now
        cell = self._cell
        status = self._status
        flags = self._flags
        occupancy = self._occupancy
        moved = 0
        for _ in range(attempts):
            i = rng.randrange(self.n)
            if flags[i] & _F_PROMOTED or status[i] != _CONNECTED:
                continue
            old = cell[i]
            new = rng.randrange(n_cells - 1)
            if new >= old:
                new += 1
            occupancy[old] -= 1
            occupancy[new] += 1
            cell[i] = new
            self._session[i] += 1
            self._last_seq[i] = 0
            self._moves[i] += 1
            last = self._last_move[i]
            if last >= 0.0:
                gap = now - last
                self.move_interval.add(gap)
                self.move_interval_hist.add(gap)
            self._last_move[i] = now
            moved += 1
        if moved:
            metrics = self.network.metrics
            metrics.record_wireless_bulk(
                MOBILITY_SCOPE, tx=2 * moved, mh_id=CROWD_ID
            )
            metrics.record_fixed(MOBILITY_SCOPE, count=2 * moved)
        self._note_batch(moved)
        return moved

    def mass_disconnect(self, fraction: float, rng: random.Random) -> int:
        """Disconnect a random ~``fraction`` of the passive connected
        crowd (one ``disconnect(r)`` uplink each, billed in bulk)."""
        attempts = round(fraction * self._passive_connected)
        if attempts <= 0 or self.n == 0:
            return 0
        now = self.network.scheduler.now
        cell = self._cell
        status = self._status
        flags = self._flags
        dropped = 0
        for _ in range(attempts):
            i = rng.randrange(self.n)
            if flags[i] & _F_PROMOTED or status[i] != _CONNECTED:
                continue
            here = cell[i]
            self._occupancy[here] -= 1
            self._disc_cell[i] = here
            self._disc_epoch[i] = now
            cell[i] = -1
            status[i] = _DISCONNECTED
            dropped += 1
        if dropped:
            self._passive_connected -= dropped
            self._passive_disconnected += dropped
            self.network.metrics.record_wireless_bulk(
                MOBILITY_SCOPE, tx=dropped, mh_id=CROWD_ID
            )
        self._note_batch(dropped)
        return dropped

    def mass_reconnect(self, fraction: float, rng: random.Random) -> int:
        """Reconnect a random ~``fraction`` of the passive disconnected
        crowd into uniformly chosen cells.

        Bills one reconnect uplink per host, plus the handoff request/
        reply pair when the new cell differs from the disconnect cell
        (the ``supply_prev=True`` path of Section 2).
        """
        attempts = round(fraction * self._passive_disconnected)
        if attempts <= 0 or self.n == 0:
            return 0
        n_cells = len(self._mss_ids)
        now = self.network.scheduler.now
        cell = self._cell
        status = self._status
        flags = self._flags
        rejoined = 0
        handoffs = 0
        for _ in range(attempts):
            i = rng.randrange(self.n)
            if (
                flags[i] & (_F_PROMOTED | _F_CRASHED)
                or status[i] != _DISCONNECTED
            ):
                continue
            new = rng.randrange(n_cells)
            if new != self._disc_cell[i]:
                handoffs += 1
            epoch = self._disc_epoch[i]
            if epoch >= 0.0:
                down = now - epoch
                self.downtime.add(down)
                self.downtime_hist.add(down)
            cell[i] = new
            status[i] = _CONNECTED
            self._occupancy[new] += 1
            self._session[i] += 1
            self._last_seq[i] = 0
            # _disc_cell stays: it mirrors the object path's sticky
            # disconnect_mss_id, which a reconnect does not clear.
            self._disc_epoch[i] = -1.0
            rejoined += 1
        if rejoined:
            self._passive_connected += rejoined
            self._passive_disconnected -= rejoined
            metrics = self.network.metrics
            metrics.record_wireless_bulk(
                MOBILITY_SCOPE, tx=rejoined, mh_id=CROWD_ID
            )
            if handoffs:
                metrics.record_fixed(MOBILITY_SCOPE, count=2 * handoffs)
        self._note_batch(rejoined)
        return rejoined

    def _note_batch(self, size: int) -> None:
        self.batch_ops += 1
        self.batch_size.add(float(size))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _recount_occupancy(self) -> None:
        """Rebuild the per-cell passive-occupancy counts from ``_cell``.

        Uses numpy's C-speed ``bincount`` when available; the pure
        python fallback is a plain loop (init-time only either way).
        """
        n_cells = len(self._mss_ids)
        for c in range(n_cells):
            self._occupancy[c] = 0
        if self.n == 0:
            return
        if _np is not None:
            counts = _np.bincount(
                _np.asarray(self._cell), minlength=n_cells
            )
            for c in range(n_cells):
                self._occupancy[c] = int(counts[c])
        else:
            occupancy = self._occupancy
            for c in self._cell:
                occupancy[c] += 1

    def occupancy(self) -> List[int]:
        """Passive connected hosts per cell, in cell-index order."""
        return list(self._occupancy)

    @property
    def passive_connected(self) -> int:
        """Passive hosts currently connected."""
        return self._passive_connected

    @property
    def passive_disconnected(self) -> int:
        """Passive hosts currently disconnected."""
        return self._passive_disconnected

    def memory_bytes(self) -> int:
        """Bytes held by the parallel arrays (objects excluded)."""
        return sum(
            len(buf) * buf.itemsize
            for buf in (
                self._cell, self._status, self._flags, self._session,
                self._last_seq, self._disc_cell, self._moves,
                self._doze_ints, self._disc_epoch, self._last_move,
                self._last_search, self._occupancy,
            )
        )

    def summary(self) -> Dict[str, object]:
        """Plain-dict snapshot for the CLI and reports."""
        return {
            "population": self.n,
            "passive_connected": self._passive_connected,
            "passive_disconnected": self._passive_disconnected,
            "active": self.active_count,
            "max_active": self.max_active,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "batch_ops": self.batch_ops,
            "array_bytes": self.memory_bytes(),
            "move_interval": self.move_interval.as_dict(),
            "downtime": self.downtime.as_dict(),
            "batch_size": self.batch_size.as_dict(),
        }
