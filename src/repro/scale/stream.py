"""Memory-bounded streaming statistics for million-MH populations.

ROADMAP item 2 asks for "memory-bounded streaming metrics" so scale
runs never grow per-MH dictionaries: a :class:`Welford` accumulator
keeps an exact running mean/variance in O(1) space, and a
:class:`FixedHistogram` buckets samples into a fixed number of bins.
The :class:`~repro.scale.store.PopulationStore` feeds both from its
batched cohort operations (move intervals, disconnection downtimes,
batch sizes); nothing here allocates per sample.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError


class Welford:
    """Streaming mean/variance via Welford's online algorithm.

    Numerically stable, O(1) memory, exact (no sampling): the standard
    tool for "what was the average trail length across 10^6 moves"
    style questions where a list of samples would dwarf the population
    arrays themselves.
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        """Population variance of everything added so far (0 if < 2)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary for reports and JSON dumps."""
        return {
            "count": self.count,
            "mean": self.mean if self.count else 0.0,
            "stddev": self.stddev,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class FixedHistogram:
    """A histogram with a fixed set of bin edges (bounded memory).

    ``edges`` are the upper bounds of each bin; samples above the last
    edge land in a final overflow bin.  Unlike a dict-of-counts keyed
    by value, the footprint is ``len(edges) + 1`` integers no matter
    how many samples arrive -- the shape the scale substrate requires.
    """

    __slots__ = ("edges", "counts", "overflow")

    def __init__(self, edges: Sequence[float]) -> None:
        if not edges:
            raise ConfigurationError(
                "FixedHistogram needs at least one edge"
            )
        ordered = list(edges)
        if ordered != sorted(ordered):
            raise ConfigurationError("histogram edges must be ascending")
        self.edges: List[float] = ordered
        self.counts: List[int] = [0] * len(ordered)
        self.overflow = 0

    def add(self, value: float) -> None:
        """Count one sample into its bin."""
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def total(self) -> int:
        """Total samples recorded."""
        return sum(self.counts) + self.overflow

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict summary (edge -> count, plus the overflow bin)."""
        return {
            "bins": {
                f"<={edge:g}": count
                for edge, count in zip(self.edges, self.counts)
            },
            "overflow": self.overflow,
            "total": self.total,
        }
