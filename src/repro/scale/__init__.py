"""``repro.scale`` -- the million-MH scale-out substrate.

ROADMAP item 2: struct-of-arrays host state for the passive crowd
(:class:`PopulationStore`), batched cohort dispatch
(:func:`dispatch_coalesced`), memory-bounded streaming statistics
(:class:`Welford`, :class:`FixedHistogram`), and the periodic
:class:`CrowdChurn` driver.  Enabled through
``Simulation(population_store=True)``; see ``docs/scaling.md`` for the
architecture and the N=1M recipe.
"""

from repro.scale.churn import CrowdChurn
from repro.scale.dispatch import DEFAULT_MAX_BATCHES, dispatch_coalesced
from repro.scale.store import CROWD_ID, PopulationStore
from repro.scale.stream import FixedHistogram, Welford

__all__ = [
    "CROWD_ID",
    "CrowdChurn",
    "DEFAULT_MAX_BATCHES",
    "FixedHistogram",
    "PopulationStore",
    "Welford",
    "dispatch_coalesced",
]
