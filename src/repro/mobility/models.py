"""Concrete mobility and disconnection models.

They drive the move/disconnect primitives of the paper's Section 2 protocol.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim import PoissonProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class MobilityModel:
    """Base class: schedules moves for a set of MHs.

    Subclasses implement :meth:`choose_destination`; the base class
    owns the per-MH Poisson move processes and skips MHs that are not
    currently connected (mid-move or disconnected) when their move
    timer fires.
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        move_rate: float,
        rng: random.Random,
    ) -> None:
        if move_rate <= 0:
            raise ConfigurationError("move_rate must be positive")
        if not mh_ids:
            raise ConfigurationError("mobility model needs MHs to move")
        self.network = network
        self.mh_ids = list(mh_ids)
        self.rng = rng
        self.moves_started = 0
        self.moves_skipped = 0
        self._processes = [
            PoissonProcess(
                network.scheduler,
                move_rate,
                (lambda m=mh_id: self._try_move(m)),
                rng=random.Random(rng.getrandbits(64)),
            )
            for mh_id in self.mh_ids
        ]

    def stop(self) -> None:
        """Stop all move processes."""
        for process in self._processes:
            process.stop()

    def set_rate(self, move_rate: float) -> None:
        """Change the per-MH move rate (rush hours, quiet nights)."""
        for process in self._processes:
            process.set_rate(move_rate)

    def choose_destination(self, mh_id: str, current: str) -> Optional[str]:
        """Destination cell for the next move (``None`` = stay put)."""
        raise NotImplementedError

    def _try_move(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if not mh.is_connected:
            self.moves_skipped += 1
            return
        destination = self.choose_destination(mh_id, mh.current_mss_id)
        if destination is None or destination == mh.current_mss_id:
            self.moves_skipped += 1
            return
        self.moves_started += 1
        mh.move_to(destination)


class UniformMobility(MobilityModel):
    """Moves to a uniformly random *different* cell."""

    def choose_destination(self, mh_id: str, current: str) -> Optional[str]:
        options = [m for m in self.network.mss_ids() if m != current]
        if not options:
            return None
        return self.rng.choice(options)


class GraphMobility(MobilityModel):
    """Moves along the edges of a cell adjacency graph.

    Args:
        adjacency: mapping from MSS id to its neighbouring MSS ids.
            Build one from any networkx graph with
            :meth:`GraphMobility.adjacency_from_graph`.
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        move_rate: float,
        rng: random.Random,
        adjacency: Dict[str, List[str]],
    ) -> None:
        super().__init__(network, mh_ids, move_rate, rng)
        known = set(network.mss_ids())
        for cell, neighbours in adjacency.items():
            if cell not in known or not set(neighbours) <= known:
                raise ConfigurationError(
                    f"adjacency references unknown cells around {cell!r}"
                )
        self.adjacency = {
            cell: list(neighbours)
            for cell, neighbours in adjacency.items()
        }

    @staticmethod
    def adjacency_from_graph(graph, mss_ids: List[str]) -> Dict[str, List]:
        """Map an arbitrary graph's nodes onto MSS ids, in node order.

        ``graph`` is any networkx-style graph with ``nodes`` and
        ``neighbors``; node i (in iteration order) becomes
        ``mss_ids[i]``.
        """
        nodes = list(graph.nodes)
        if len(nodes) != len(mss_ids):
            raise ConfigurationError(
                f"graph has {len(nodes)} nodes for {len(mss_ids)} cells"
            )
        label = dict(zip(nodes, mss_ids))
        return {
            label[node]: sorted(label[n] for n in graph.neighbors(node))
            for node in nodes
        }

    def choose_destination(self, mh_id: str, current: str) -> Optional[str]:
        neighbours = self.adjacency.get(current, [])
        if not neighbours:
            return None
        return self.rng.choice(neighbours)


class LocalizedMobility(MobilityModel):
    """Mostly hops among a small set of home cells; rarely escapes.

    With escape probability 0 the group's location view is confined to
    ``home_cells``, making most moves insignificant -- the regime where
    the location-view strategy shines.
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        move_rate: float,
        rng: random.Random,
        home_cells: Iterable[str],
        escape_probability: float = 0.0,
    ) -> None:
        super().__init__(network, mh_ids, move_rate, rng)
        self.home_cells = list(home_cells)
        if not self.home_cells:
            raise ConfigurationError("home_cells must be nonempty")
        if not 0.0 <= escape_probability <= 1.0:
            raise ConfigurationError(
                "escape_probability must be a probability"
            )
        self.escape_probability = escape_probability

    def choose_destination(self, mh_id: str, current: str) -> Optional[str]:
        if (
            self.escape_probability > 0.0
            and self.rng.random() < self.escape_probability
        ):
            outside = [
                m
                for m in self.network.mss_ids()
                if m not in self.home_cells and m != current
            ]
            if outside:
                return self.rng.choice(outside)
        options = [m for m in self.home_cells if m != current]
        if not options:
            return None
        return self.rng.choice(options)


class TraceMobility:
    """Replays an explicit (time, mh_id, destination_mss) trace."""

    def __init__(
        self,
        network: "Network",
        trace: Iterable[Tuple[float, str, str]],
    ) -> None:
        self.network = network
        self.moves_started = 0
        self.moves_skipped = 0
        for time, mh_id, mss_id in trace:
            network.scheduler.schedule_at(
                time, self._move, mh_id, mss_id
            )

    def _move(self, mh_id: str, mss_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if not mh.is_connected or mh.current_mss_id == mss_id:
            self.moves_skipped += 1
            return
        self.moves_started += 1
        mh.move_to(mss_id)


class DisconnectionModel:
    """Random voluntary disconnect / reconnect cycles.

    Each managed MH disconnects at exponential intervals and reconnects
    after ``downtime`` at a random cell (supplying its previous MSS id,
    per the reconnect protocol).
    """

    def __init__(
        self,
        network: "Network",
        mh_ids: List[str],
        disconnect_rate: float,
        downtime: float,
        rng: random.Random,
        supply_prev: bool = True,
    ) -> None:
        if downtime <= 0:
            raise ConfigurationError("downtime must be positive")
        self.network = network
        self.rng = rng
        self.downtime = downtime
        self.supply_prev = supply_prev
        self.disconnections = 0
        self._processes = [
            PoissonProcess(
                network.scheduler,
                disconnect_rate,
                (lambda m=mh_id: self._try_disconnect(m)),
                rng=random.Random(rng.getrandbits(64)),
            )
            for mh_id in mh_ids
        ]

    def stop(self) -> None:
        """Stop initiating new disconnections."""
        for process in self._processes:
            process.stop()

    def _try_disconnect(self, mh_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if not mh.is_connected:
            return
        self.disconnections += 1
        mh.disconnect()
        target = self.rng.choice(self.network.mss_ids())
        self.network.scheduler.schedule(
            self.downtime, self._reconnect, mh_id, target
        )

    def _reconnect(self, mh_id: str, mss_id: str) -> None:
        mh = self.network.mobile_host(mh_id)
        if mh.is_disconnected:
            mh.reconnect(mss_id, supply_prev=self.supply_prev)
