"""Mobility and disconnection models (S7).

Models drive MH movement over simulated time.  The system model only
requires that a leaving MH eventually joins some cell; the models here
shape *where* and *how often*, which controls the quantities the
paper's evaluation varies: MOB (total moves), the mobility-to-message
ratio, and the significant fraction ``f`` of moves that change a
location view.

* :class:`UniformMobility` -- exponential inter-move times, uniformly
  random destination cell (high ``f``).
* :class:`GraphMobility` -- moves along the edges of a cell adjacency
  graph (e.g. a :func:`networkx.grid_2d_graph`), modelling geographic
  movement.
* :class:`LocalizedMobility` -- each MH mostly hops among a small set
  of "home" cells, rarely escaping: clustered groups, low ``f``.
* :class:`TraceMobility` -- replays an explicit (time, mh, cell) trace,
  for fully deterministic experiments.
* :class:`DisconnectionModel` -- random voluntary disconnect/reconnect
  cycles (doze/disconnect experiments).
"""

from repro.mobility.models import (
    DisconnectionModel,
    GraphMobility,
    LocalizedMobility,
    MobilityModel,
    TraceMobility,
    UniformMobility,
)

__all__ = [
    "DisconnectionModel",
    "GraphMobility",
    "LocalizedMobility",
    "MobilityModel",
    "TraceMobility",
    "UniformMobility",
]
