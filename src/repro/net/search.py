"""Search protocols: locating a mobile host within the static network.

The paper prices "locate a MH and forward a message to its current local
MSS" as the scalar ``C_search`` and notes that, in the worst case, a
source MSS must contact each of the other M-1 MSSs.  Three protocols are
provided:

* :class:`AbstractSearch` — the paper's accounting: one search operation
  is charged ``C_search`` (it *includes* the forward to the located
  MSS).  Used by every exact-match experiment.
* :class:`BroadcastSearch` — a measured protocol that actually probes
  the other MSSs and counts each probe as a fixed-network message, so
  the inequality ``C_search >= C_fixed`` is observed rather than
  assumed (ablation A1).
* :class:`HomeAgentSearch` — a measured protocol in the style of the
  mobile-IP location directories the paper cites ([6], [10]): each MH
  has a home MSS kept up to date on every move; a search costs a
  constant number of fixed messages plus per-move maintenance traffic.

A search never fails: a MH in transit between cells is re-examined until
it lands (the model guarantees it eventually joins some cell), and a
disconnected MH resolves to a *disconnected* outcome reported by the MSS
of the cell where it disconnected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import UnknownHostError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network

MAINTENANCE_SCOPE = "search-maintenance"


@dataclass(frozen=True)
class SearchOutcome:
    """Result of locating a mobile host.

    Attributes:
        mh_id: the host that was searched for.
        mss_id: current local MSS if the host is connected, else the MSS
            of the cell where it disconnected.
        disconnected: ``True`` if the host is disconnected.
        probes: number of concrete probe messages this search sent
            (0 for :class:`AbstractSearch`).
        gave_up: ``True`` when :meth:`Network.send_to_mh` exhausted its
            delivery-attempt budget instead of observing a disconnect.
    """

    mh_id: str
    mss_id: str
    disconnected: bool
    probes: int
    gave_up: bool = False


class SearchProtocol:
    """Interface implemented by all search protocols."""

    #: whether one search charge already covers forwarding the payload
    #: to the located MSS (true only for the abstract protocol).
    includes_forward = True

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        """Locate ``mh_id`` on behalf of ``src_mss_id``.

        ``callback`` fires exactly once, after a protocol-dependent
        delay, with the :class:`SearchOutcome`.
        """
        raise NotImplementedError

    def on_mh_joined(
        self, network: "Network", mh_id: str, mss_id: str
    ) -> None:
        """Hook invoked whenever a MH joins a cell.

        Protocols that maintain location state (home agents) override
        this; the default is a no-op.
        """

    def on_mh_crashed(self, network: "Network", mh_id: str) -> None:
        """Hook invoked when a MH crashes (fault injection).

        Protocols that cache location state override this to purge
        entries for the crashed host -- they point at a cell the host
        silently vanished from; the default is a no-op.
        """

    def record_forward(self, network: "Network", scope: str) -> None:
        """Account for forwarding the payload after a successful search.

        Only called when :attr:`includes_forward` is ``False``.
        """
        raise NotImplementedError


class AbstractSearch(SearchProtocol):
    """The paper's scalar-cost search: each operation costs ``C_search``.

    Location is resolved from the simulator's ground truth after
    ``search_delay``; the charge covers both the lookup and the forward,
    exactly matching the cost expressions in Sections 3-4.
    """

    includes_forward = True

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        network.metrics.record_search(scope)
        if network._trace_on:
            appender = network._batch_search_charge
            if appender is not None:
                appender(scope, src_mss_id, mh_id)
                self._resolve(
                    network, mh_id, callback, first_attempt=True
                )
                return
            gate = network._gate_search_charge
            if gate is not None:
                counter = gate[0]
                c = counter[0] - 1
                due = c <= 0
                counter[0] = gate[1] if due else c
                if due:
                    network._trace.emit_gated(
                        "search.charge",
                        True,
                        scope=scope,
                        category="search",
                        src=src_mss_id,
                        dst=mh_id,
                    )
            else:
                network._trace.emit(
                    "search.charge",
                    scope=scope,
                    category="search",
                    src=src_mss_id,
                    dst=mh_id,
                )
        self._resolve(network, mh_id, callback, first_attempt=True)

    def _resolve(
        self,
        network: "Network",
        mh_id: str,
        callback: Callable[[SearchOutcome], None],
        first_attempt: bool,
    ) -> None:
        delay = (
            network.config.search_delay
            if first_attempt
            else network.config.search_retry_delay
        )
        network.scheduler.schedule(
            delay, self._complete, network, mh_id, callback
        )

    def _complete(
        self,
        network: "Network",
        mh_id: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.disconnect_mss_id,
                    disconnected=True,
                    probes=0,
                )
            )
        elif mh.is_connected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.current_mss_id,
                    disconnected=False,
                    probes=0,
                )
            )
        else:  # in transit: poll again until the MH lands somewhere
            self._resolve(network, mh_id, callback, first_attempt=False)


class BroadcastSearch(SearchProtocol):
    """Measured search: probe the other M-1 MSSs over the fixed network.

    Every probe and the single positive reply are recorded as
    ``SEARCH_PROBE`` messages (priced at ``C_fixed``), so benchmarks can
    compare the *empirical* search cost with the abstract ``C_search``.
    The payload forward after a successful search is one more probe-priced
    message (:meth:`record_forward`).
    """

    includes_forward = False

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        self._attempt(network, src_mss_id, mh_id, scope, callback)

    def _attempt(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        others = [m for m in network.mss_ids() if m != src_mss_id]
        # All other MSSs are queried in parallel; the one hosting (or the
        # one that saw the disconnect) replies.  Probes = queries + reply.
        probes = len(others) + 1
        network.metrics.record_search_probe(scope, count=probes)
        if network._trace_on:
            appender = network._batch_search_probes
            if appender is not None:
                appender(scope, src_mss_id, mh_id, None, None,
                         {"count": probes})
            else:
                network._trace.emit(
                    "search.probes",
                    scope=scope,
                    category="search_probe",
                    src=src_mss_id,
                    dst=mh_id,
                    count=probes,
                )
        round_trip = 2 * network.config.fixed_latency(network.rng)
        network.scheduler.schedule(
            round_trip,
            self._complete,
            network,
            src_mss_id,
            mh_id,
            scope,
            callback,
            probes,
        )

    def _complete(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
        probes: int,
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.disconnect_mss_id,
                    disconnected=True,
                    probes=probes,
                )
            )
        elif mh.is_connected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.current_mss_id,
                    disconnected=False,
                    probes=probes,
                )
            )
        else:  # in transit when the probes landed: re-probe later
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self._attempt,
                network,
                src_mss_id,
                mh_id,
                scope,
                callback,
            )

    def record_forward(self, network: "Network", scope: str) -> None:
        network.metrics.record_search_probe(scope, count=1)


class HomeAgentSearch(SearchProtocol):
    """Measured search via per-MH home agents (mobile-IP style).

    Each MH is assigned a home MSS.  On every join, the new MSS updates
    the home agent (one fixed message, accounted under
    ``search-maintenance``).  A search is then query + reply to the home
    agent (two probe messages) regardless of M; the payload forward is a
    third.  This trades per-move *inform* traffic for cheap searches --
    the same search/inform trade-off Section 4 studies for groups.
    """

    includes_forward = False

    def __init__(self) -> None:
        self._home: dict[str, str] = {}
        self._last_known: dict[str, str] = {}

    def home_of(self, network: "Network", mh_id: str) -> str:
        """The home MSS for ``mh_id`` (assigned deterministically)."""
        if mh_id not in self._home:
            mss_ids = network.mss_ids()
            if not mss_ids:
                raise UnknownHostError("no MSSs registered")
            index = hash(mh_id) % len(mss_ids)
            self._home[mh_id] = sorted(mss_ids)[index]
        return self._home[mh_id]

    def on_mh_joined(
        self, network: "Network", mh_id: str, mss_id: str
    ) -> None:
        self._last_known[mh_id] = mss_id
        home = self.home_of(network, mh_id)
        if home != mss_id:
            network.metrics.record_fixed(MAINTENANCE_SCOPE)

    def on_mh_crashed(self, network: "Network", mh_id: str) -> None:
        # The home assignment is permanent, but the last-known cell is
        # now a ghost entry: drop it until the host rejoins somewhere.
        self._last_known.pop(mh_id, None)

    def record_forward(self, network: "Network", scope: str) -> None:
        network.metrics.record_search_probe(scope, count=1)

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        # Query + reply to the home agent.
        network.metrics.record_search_probe(scope, count=2)
        if network._trace_on:
            appender = network._batch_search_probes
            if appender is not None:
                appender(scope, src_mss_id, mh_id, None, None,
                         {"count": 2, "home": self.home_of(network, mh_id)})
            else:
                network._trace.emit(
                    "search.probes",
                    scope=scope,
                    category="search_probe",
                    src=src_mss_id,
                    dst=mh_id,
                    count=2,
                    home=self.home_of(network, mh_id),
                )
        round_trip = 2 * network.config.fixed_latency(network.rng)
        network.scheduler.schedule(
            round_trip, self._complete, network, mh_id, scope, callback
        )

    def _complete(
        self,
        network: "Network",
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.disconnect_mss_id,
                    disconnected=True,
                    probes=2,
                )
            )
        elif mh.is_connected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.current_mss_id,
                    disconnected=False,
                    probes=2,
                )
            )
        else:
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self._complete,
                network,
                mh_id,
                scope,
                callback,
            )
