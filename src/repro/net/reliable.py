"""Reliable FIFO-exactly-once delivery over lossy fixed links.

The paper *assumes* a reliable, sequenced fixed network; once a
:class:`~repro.faults.FaultInjector` makes links lossy, this layer
recovers the assumption so every algorithm above it keeps its
correctness proof:

* per directed MSS pair, data messages carry monotonically increasing
  sequence numbers;
* the receiver acks every data message it sees, suppresses duplicates,
  buffers out-of-order arrivals, and releases messages to the host
  strictly in sequence order (restoring FIFO);
* the sender retransmits unacked messages on a timer with exponential
  backoff, up to a retry cap;
* a message that exhausts its retries is given up (e.g. the destination
  crashed for good); data envelopes advertise the sender's lowest seq
  that may still arrive, so the receiver can skip permanent gaps instead
  of stalling the channel head-of-line forever.

The layer is transparent: :meth:`Network.send_fixed` routes through it
automatically once installed, so protocols and benchmarks run unchanged.
Every physical transmission -- originals, retransmits and acks -- is
accounted in the metrics under the wrapped message's scope, which is how
``bench_a8_fault_recovery`` prices recovery in the paper's currency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import SimulationError
from repro.net.messages import Message, allocate_msg_id
from repro.pool import Pool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hosts.mss import MobileSupportStation
    from repro.net.network import Network
    from repro.sim.scheduler import Event

KIND_DATA = "rel.data"
KIND_ACK = "rel.ack"


def _blank_ack() -> Message:
    return Message(kind=KIND_ACK, src="", dst="")


def _reset_ack(message: Message) -> None:
    # Drop the payload so the free list cannot pin RelAck objects.
    message.payload = None
    message.trace_id = None


@dataclass(frozen=True)
class RelData:
    """Payload of a reliable data envelope."""

    seq: int
    #: lowest sequence number the sender may still (re)transmit on this
    #: channel; everything below is either acked or given up, so the
    #: receiver can release buffered messages past a permanent gap.
    floor: int
    inner: Message


@dataclass(frozen=True)
class RelAck:
    """Payload of a reliable ack envelope."""

    seq: int


@dataclass
class _TxChannel:
    next_seq: int = 1
    #: seq -> (envelope, retransmit timer event, attempts so far)
    unacked: Dict[int, Tuple[Message, "Event", int]] = field(
        default_factory=dict
    )
    given_up: int = 0


@dataclass
class _RxChannel:
    next_expected: int = 1
    buffered: Dict[int, Message] = field(default_factory=dict)


class ReliableTransport:
    """Per-link sequencing, acks, retransmission and dedup for MSS pairs.

    Args:
        network: the network to wrap.
        timeout: initial retransmit timer (should exceed one round trip).
        backoff: multiplicative backoff factor applied per retry.
        max_retries: retransmissions allowed before giving a message up.
        jitter: fraction of every retransmit delay randomized -- each
            timer is scaled by a uniform draw from ``[1-jitter,
            1+jitter]``.  Without it, messages stranded by one
            partition all back off in lockstep and retransmit as a
            synchronized storm the instant the partition heals; jitter
            spreads that burst out.  ``0.0`` (the default) draws
            nothing from the RNG, keeping runs byte-identical to the
            un-jittered channel.
        max_delay: cap applied to the backed-off delay before jitter,
            so retry timers stay bounded through long outages.
            ``None`` leaves the exponential schedule uncapped.
        rng: randomness source for jitter draws (seeded by the caller
            for reproducibility; only consulted when ``jitter > 0``).
    """

    def __init__(
        self,
        network: "Network",
        timeout: float = 4.0,
        backoff: float = 1.5,
        max_retries: int = 10,
        jitter: float = 0.0,
        max_delay: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if timeout <= 0:
            raise SimulationError("retransmit timeout must be positive")
        if backoff < 1.0:
            raise SimulationError("backoff factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        if max_delay is not None and max_delay < timeout:
            raise SimulationError(
                "max_delay cannot be below the initial timeout"
            )
        self.network = network
        self.timeout = timeout
        self.backoff = backoff
        self.max_retries = max_retries
        self.jitter = jitter
        self.max_delay = max_delay
        self._rng = rng if rng is not None else random.Random(0)
        self.retransmits = 0
        self.duplicates_suppressed = 0
        self.gave_up = 0
        self.gaps_skipped = 0
        self._tx: Dict[Tuple[str, str], _TxChannel] = {}
        self._rx: Dict[Tuple[str, str], _RxChannel] = {}
        self._attached: set = set()
        # Ack envelopes have a closed lifecycle (created in _on_data,
        # consumed in _on_ack) *unless* the fault plan can duplicate a
        # transmission, in which case the same object may be delivered
        # twice and must not be recycled after the first delivery.
        self._ack_pool = Pool(
            _blank_ack, reset=_reset_ack, capacity=256, name="rel.acks"
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Attach receive handlers to every registered MSS."""
        for mss_id in self.network.mss_ids():
            self.attach(self.network.mss(mss_id))

    def attach(self, mss: "MobileSupportStation") -> None:
        """Attach receive handlers to one MSS (idempotent)."""
        if mss.host_id in self._attached:
            return
        self._attached.add(mss.host_id)
        mss.register_handler(KIND_DATA, self._on_data)
        mss.register_handler(KIND_ACK, self._on_ack)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send ``message`` between two MSSs with reliable FIFO delivery."""
        channel = (message.src, message.dst)
        tx = self._tx.setdefault(channel, _TxChannel())
        seq = tx.next_seq
        tx.next_seq += 1
        trace = self.network._trace
        if trace.enabled:
            # Logical send: the protocol-level receive at the far end
            # parents to this event, so causality survives however many
            # physical envelope transmissions the channel needs.
            message.trace_id = trace.emit(
                "rel.send",
                scope=message.scope,
                src=message.src,
                dst=message.dst,
                kind=message.kind,
                seq=seq,
            )
        self._transmit(channel, seq, message, attempt=0)

    def _transmit(
        self,
        channel: Tuple[str, str],
        seq: int,
        inner: Message,
        attempt: int,
    ) -> None:
        src, dst = channel
        tx = self._tx[channel]
        if attempt > 0:
            self.retransmits += 1
            self.network.metrics.record_fault("rel.retransmit")
            if self.network._trace_on:
                self.network._trace.emit(
                    "rel.retransmit",
                    scope=inner.scope,
                    src=src,
                    dst=dst,
                    kind=inner.kind,
                    parent=inner.trace_id,
                    seq=seq,
                    attempt=attempt,
                )
        # Floor = lowest seq that may still arrive on this channel --
        # everything unacked including the message going out right now.
        floor = min(min(tx.unacked), seq) if tx.unacked else seq
        envelope = Message(
            kind=KIND_DATA,
            src=src,
            dst=dst,
            payload=RelData(seq=seq, floor=floor, inner=inner),
            scope=inner.scope,
        )
        delay = self.retransmit_delay(attempt)
        timer = self.network.scheduler.schedule(
            delay, self._on_timeout, channel, seq
        )
        tx.unacked[seq] = (envelope, timer, attempt)
        self.network._send_fixed_raw(envelope)

    def retransmit_delay(self, attempt: int) -> float:
        """The (capped, jittered) retransmit timer for ``attempt``."""
        delay = self.timeout * (self.backoff ** attempt)
        if self.max_delay is not None and delay > self.max_delay:
            delay = self.max_delay
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def _on_timeout(self, channel: Tuple[str, str], seq: int) -> None:
        tx = self._tx.get(channel)
        if tx is None or seq not in tx.unacked:
            return
        envelope, _, attempt = tx.unacked.pop(seq)
        if attempt >= self.max_retries:
            # Destination unreachable for the whole backoff schedule
            # (e.g. crashed and never recovered): give the message up.
            tx.given_up += 1
            self.gave_up += 1
            self.network.metrics.record_fault("rel.give_up")
            if self.network._trace_on:
                inner = envelope.payload.inner
                self.network._trace.emit(
                    "rel.give_up",
                    scope=inner.scope,
                    src=channel[0],
                    dst=channel[1],
                    kind=inner.kind,
                    parent=inner.trace_id,
                    seq=seq,
                    attempts=attempt + 1,
                )
            return
        self._transmit(
            channel, seq, envelope.payload.inner, attempt + 1
        )

    def _on_ack(self, message: Message) -> None:
        # The ack travels dst -> src, so the data channel is reversed.
        channel = (message.dst, message.src)
        tx = self._tx.get(channel)
        if tx is not None:
            entry = tx.unacked.pop(message.payload.seq, None)
            if entry is not None:
                entry[1].cancel()
        # The receiving handler is the last holder of a pooled ack.
        if message.__dict__.get("_pooled"):
            self._ack_pool.release(message)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------

    def _on_data(self, message: Message) -> None:
        data: RelData = message.payload
        channel = (message.src, message.dst)
        rx = self._rx.setdefault(channel, _RxChannel())
        # Always (re-)ack: a lost ack shows up as a duplicate here.
        faults = self.network.faults
        if faults is None or not faults.may_duplicate:
            ack = self._ack_pool.acquire()
            ack.src = message.dst
            ack.dst = message.src
            ack.payload = RelAck(seq=data.seq)
            ack.scope = message.scope
            # Fresh id: keeps the global id stream — and thus any
            # output that includes message ids — byte-identical to the
            # unpooled path.
            ack.msg_id = allocate_msg_id()
            ack._pooled = True
        else:
            ack = Message(
                kind=KIND_ACK,
                src=message.dst,
                dst=message.src,
                payload=RelAck(seq=data.seq),
                scope=message.scope,
            )
        self.network._send_fixed_raw(ack)
        # The sender's floor proves everything below it will never
        # arrive; release buffered messages past the permanent gap.
        while rx.next_expected < data.floor:
            buffered = rx.buffered.pop(rx.next_expected, None)
            if buffered is not None:
                self._deliver(message.dst, buffered)
            else:
                self.gaps_skipped += 1
                self.network.metrics.record_fault("rel.gap_skipped")
                if self.network._trace_on:
                    self.network._trace.emit(
                        "rel.gap_skipped",
                        scope=message.scope,
                        src=message.src,
                        dst=message.dst,
                        seq=rx.next_expected,
                    )
            rx.next_expected += 1
        if data.seq < rx.next_expected or data.seq in rx.buffered:
            self.duplicates_suppressed += 1
            self.network.metrics.record_fault("rel.dup_suppressed")
            if self.network._trace_on:
                self.network._trace.emit(
                    "rel.dup_suppressed",
                    scope=message.scope,
                    src=message.src,
                    dst=message.dst,
                    kind=data.inner.kind,
                    seq=data.seq,
                )
            return
        rx.buffered[data.seq] = data.inner
        while rx.next_expected in rx.buffered:
            inner = rx.buffered.pop(rx.next_expected)
            rx.next_expected += 1
            self._deliver(message.dst, inner)

    def _deliver(self, dst_mss_id: str, inner: Message) -> None:
        self.network.mss(dst_mss_id).handle_message(inner)
