"""Message envelope shared by every protocol in the library.

A :class:`Message` is a routing envelope; the protocol-specific content
lives in ``payload`` (usually a small dataclass defined next to the
protocol).  ``kind`` is the dispatch key: hosts register one handler per
kind, namespaced by protocol (``"l2.request"``, ``"lv.update"``, ...).
The envelope realizes the paper's Section 2 message taxonomy (fixed, wireless, search).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_ids = itertools.count()


def allocate_msg_id() -> int:
    """Draw the next message id from the global stream.

    Envelope pools use this when recycling a :class:`Message` so the id
    stream advances exactly as if a fresh envelope had been allocated —
    keeping pooled and unpooled runs byte-identical in any output that
    includes message ids.
    """
    return next(_message_ids)


@dataclass
class Message:
    """A routable message.

    Attributes:
        kind: dispatch key, namespaced by protocol (``"l2.reply"``).
        src: id of the sending host.
        dst: id of the destination host.
        payload: protocol-specific content (any object).
        scope: metrics scope the transmission is accounted under.
        msg_id: unique id, handy in logs and tests.
        wireless_seq: sequence number stamped by the wireless downlink
            (MSS -> MH direction only); ``None`` elsewhere.
        trace_id: id of the trace event that sent this message, stamped
            by the network when tracing is enabled; the matching receive
            event uses it as its causal parent.  ``None`` when tracing
            is off (the default).
    """

    kind: str
    src: str
    dst: str
    payload: Any = None
    scope: str = "default"
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    wireless_seq: int | None = None
    trace_id: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(#{self.msg_id} {self.kind} {self.src}->{self.dst} "
            f"scope={self.scope})"
        )
