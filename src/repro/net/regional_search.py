"""Regional (two-level) search: the [3]-style search/inform compromise.

The paper cites Awerbuch & Peleg ("Concurrent online tracking of mobile
users") as the theoretical treatment of the search-vs-inform trade-off
for individual mobile users.  This protocol is a practical two-level
instance of that idea, sitting between the extremes already provided:

* :class:`~repro.net.search.HomeAgentSearch` informs on *every* move
  and searches in O(1);
* :class:`~repro.net.search.BroadcastSearch` never informs and probes
  all M-1 MSSs;
* **RegionalSearch** partitions the M MSSs into regions of size R.
  Each MH has a *home directory* (a fixed MSS) that records only which
  region the MH is in -- updated only on the fraction of moves that
  cross a region boundary.  A search asks the home directory (query +
  reply), then probes the R MSSs of the recorded region in parallel
  (plus the reply and the payload forward).

Costs: maintenance ``~ f_region * MOB`` fixed messages (``f_region`` =
fraction of region-crossing moves); search ``~ R + 4`` fixed messages.
Tuning R trades one against the other -- at R=1 this degenerates to a
per-cell home agent, at R=M to pure broadcast with a useless directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List

from repro.errors import ConfigurationError, UnknownHostError
from repro.net.search import MAINTENANCE_SCOPE, SearchOutcome, SearchProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class RegionalSearch(SearchProtocol):
    """Two-level search over a static partition of the MSSs."""

    includes_forward = False

    def __init__(self, region_size: int = 4) -> None:
        if region_size < 1:
            raise ConfigurationError("region_size must be >= 1")
        self.region_size = region_size
        #: home directory content: mh_id -> region index.
        self._region_of_mh: Dict[str, int] = {}
        #: home directory MSS per MH (assigned deterministically).
        self._home: Dict[str, str] = {}
        self.maintenance_updates = 0
        self.region_crossings = 0
        self.searches = 0

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------

    def region_index(self, network: "Network", mss_id: str) -> int:
        """Region of ``mss_id`` (consecutive blocks of ``region_size``)."""
        mss_ids = network.mss_ids()
        try:
            position = mss_ids.index(mss_id)
        except ValueError:
            raise UnknownHostError(f"unknown MSS: {mss_id}") from None
        return position // self.region_size

    def region_members(
        self, network: "Network", region: int
    ) -> List[str]:
        """The MSSs belonging to ``region``."""
        mss_ids = network.mss_ids()
        start = region * self.region_size
        return mss_ids[start:start + self.region_size]

    def home_of(self, network: "Network", mh_id: str) -> str:
        """The MH's home-directory MSS (assigned deterministically)."""
        if mh_id not in self._home:
            mss_ids = sorted(network.mss_ids())
            if not mss_ids:
                raise UnknownHostError("no MSSs registered")
            self._home[mh_id] = mss_ids[hash(mh_id) % len(mss_ids)]
        return self._home[mh_id]

    # ------------------------------------------------------------------
    # Maintenance: inform only on region-crossing joins
    # ------------------------------------------------------------------

    def on_mh_joined(
        self, network: "Network", mh_id: str, mss_id: str
    ) -> None:
        new_region = self.region_index(network, mss_id)
        old_region = self._region_of_mh.get(mh_id)
        if old_region == new_region:
            return  # intra-region move: the directory stays correct
        self._region_of_mh[mh_id] = new_region
        if old_region is not None:
            self.region_crossings += 1
        home = self.home_of(network, mh_id)
        if home != mss_id:
            self.maintenance_updates += 1
            network.metrics.record_fixed(MAINTENANCE_SCOPE)

    # ------------------------------------------------------------------
    # Search: home directory + regional probe
    # ------------------------------------------------------------------

    def record_forward(self, network: "Network", scope: str) -> None:
        network.metrics.record_search_probe(scope, count=1)

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        self.searches += 1
        # Query + reply to the home directory.
        network.metrics.record_search_probe(scope, count=2)
        round_trip = 2 * network.config.fixed_latency(network.rng)
        network.scheduler.schedule(
            round_trip, self._probe_region, network, mh_id, scope,
            callback,
        )

    def _probe_region(
        self,
        network: "Network",
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        region = self._region_of_mh.get(mh_id)
        if region is None:
            # Nothing recorded yet (never moved since setup): the
            # directory was primed at registration time, so this only
            # happens for hosts the protocol has never seen; fall back
            # to probing region 0 onwards via a full sweep.
            members = network.mss_ids()
        else:
            members = self.region_members(network, region)
        # Parallel probes within the region + one positive reply.
        probes = len(members) + 1
        network.metrics.record_search_probe(scope, count=probes)
        round_trip = 2 * network.config.fixed_latency(network.rng)
        network.scheduler.schedule(
            round_trip,
            self._complete,
            network,
            mh_id,
            scope,
            callback,
            2 + probes,
        )

    def _complete(
        self,
        network: "Network",
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
        probes: int,
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.disconnect_mss_id,
                    disconnected=True,
                    probes=probes,
                )
            )
        elif mh.is_connected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.current_mss_id,
                    disconnected=False,
                    probes=probes,
                )
            )
        else:  # in transit: re-examine once it lands
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self._probe_region,
                network,
                mh_id,
                scope,
                callback,
            )
