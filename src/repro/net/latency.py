"""Latency models for channels.

A latency model is a callable taking the channel's RNG and returning a
nonnegative delay.  FIFO ordering does not depend on the model: channels
clamp each arrival to be no earlier than the previous one, so even a
randomized model preserves sequenced delivery (the paper's "reliable,
sequenced delivery ... with arbitrary message latency").
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class ConstantLatency:
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"latency must be nonnegative: {value}")
        self.value = value

    def __call__(self, rng: random.Random) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value})"


class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(
                f"invalid latency range: [{low}, {high}]"
            )
        self.low = low
        self.high = high

    def __call__(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"
