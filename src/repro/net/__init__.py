"""Network substrates (S3-S5): fixed network, wireless cells, search.

The network implements exactly the properties postulated by Section 2 of
the paper:

* the static network provides reliable, sequenced (FIFO) delivery
  between any two MSSs with arbitrary latency;
* each wireless cell provides FIFO channels between the MSS and each
  local MH; a MH that leaves receives a *prefix* of the messages sent to
  it, and reports the sequence number of the last received message in
  its ``leave(r)``;
* a message destined for a MH is eventually delivered after incurring a
  search, regardless of how many moves the MH makes
  (:meth:`Network.send_to_mh` re-searches on loss);
* searching for a disconnected MH yields a notification from the MSS of
  the cell where the MH disconnected.
"""

from repro.net.cache_search import CachingSearch
from repro.net.config import NetworkConfig
from repro.net.latency import ConstantLatency, UniformLatency
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.regional_search import RegionalSearch
from repro.net.reliable import ReliableTransport
from repro.net.search import (
    AbstractSearch,
    BroadcastSearch,
    SearchOutcome,
    SearchProtocol,
)

__all__ = [
    "AbstractSearch",
    "BroadcastSearch",
    "CachingSearch",
    "ConstantLatency",
    "Message",
    "Network",
    "NetworkConfig",
    "RegionalSearch",
    "ReliableTransport",
    "SearchOutcome",
    "SearchProtocol",
    "UniformLatency",
]
