"""Timing configuration for the simulated network.

Parameterizes the fixed and wireless channels of the paper's Section 2 model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional
import random

from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency

LatencyModel = Callable[[random.Random], float]


@dataclass
class NetworkConfig:
    """Timing knobs of the simulated system.

    Attributes:
        fixed_latency: latency model for MSS <-> MSS channels.
        wireless_latency: latency model for MSS <-> MH hops.
        transit_time: wall time a MH spends between leaving one cell and
            joining the next (the paper only requires that it eventually
            joins *some* cell).
        search_delay: time an abstract search takes to complete.
        search_retry_delay: how long a search waits before re-examining a
            MH that is currently in transit.
        mh_delivery_max_attempts: delivery attempts (searches plus
            wireless hops) :meth:`Network.send_to_mh` makes before giving
            up and reporting the outcome through ``on_disconnected`` with
            ``gave_up=True``.  ``None`` restores the paper's unbounded
            eventual-delivery retry loop.
    """

    fixed_latency: LatencyModel = field(
        default_factory=lambda: ConstantLatency(1.0)
    )
    wireless_latency: LatencyModel = field(
        default_factory=lambda: ConstantLatency(0.5)
    )
    transit_time: float = 2.0
    search_delay: float = 1.0
    search_retry_delay: float = 1.0
    mh_delivery_max_attempts: Optional[int] = 25

    def __post_init__(self) -> None:
        if (
            self.mh_delivery_max_attempts is not None
            and self.mh_delivery_max_attempts < 1
        ):
            raise ConfigurationError(
                "mh_delivery_max_attempts must be >= 1 (or None)"
            )
        if self.transit_time < 0:
            raise ConfigurationError("transit_time must be nonnegative")
        if self.search_delay < 0:
            raise ConfigurationError("search_delay must be nonnegative")
        if self.search_retry_delay <= 0:
            raise ConfigurationError("search_retry_delay must be positive")
