"""The network core: wired channels, wireless cells, MH delivery service.

The :class:`Network` owns no protocol logic.  It transports
:class:`~repro.net.messages.Message` envelopes between registered hosts,
enforces the FIFO guarantees of the system model, accounts every
transmission in the :class:`~repro.metrics.MetricsCollector`, and offers
:meth:`Network.send_to_mh` -- the "locate then deliver, retrying across
moves" service the paper's algorithms rely on.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    NotConnectedError,
    SimulationError,
    UnknownHostError,
)
from repro.metrics import MetricsCollector
from repro.net.config import NetworkConfig
from repro.net.messages import Message
from repro.net.search import AbstractSearch, SearchOutcome, SearchProtocol
from repro.sim import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hosts.mh import MobileHost
    from repro.hosts.mss import MobileSupportStation

DeliveredCallback = Callable[[Message], None]
DisconnectedCallback = Callable[[SearchOutcome], None]


class Network:
    """Transport fabric connecting MSSs and MHs.

    Args:
        scheduler: the shared discrete-event scheduler.
        metrics: collector every transmission is recorded into.
        config: timing knobs (latencies, transit and search delays).
        search_protocol: how non-local MHs are located
            (default: the paper's abstract scalar-cost search).
        rng: source of randomness for latency models.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        metrics: Optional[MetricsCollector] = None,
        config: Optional[NetworkConfig] = None,
        search_protocol: Optional[SearchProtocol] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.config = config if config is not None else NetworkConfig()
        self.search_protocol = (
            search_protocol if search_protocol is not None else AbstractSearch()
        )
        self.rng = rng if rng is not None else random.Random(0)
        self._mss: Dict[str, "MobileSupportStation"] = {}
        self._mh: Dict[str, "MobileHost"] = {}
        # FIFO enforcement: last scheduled arrival per directed channel.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        # Downlink sequence counters per (mss, mh), reset on each join.
        self._downlink_seq: Dict[Tuple[str, str], int] = {}
        self.lost_wireless_messages = 0

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def register_mss(self, mss: "MobileSupportStation") -> None:
        """Add a mobile support station to the fixed network."""
        if mss.host_id in self._mss:
            raise SimulationError(f"duplicate MSS id: {mss.host_id}")
        self._mss[mss.host_id] = mss

    def register_mh(self, mh: "MobileHost") -> None:
        """Add a mobile host to the system."""
        if mh.host_id in self._mh:
            raise SimulationError(f"duplicate MH id: {mh.host_id}")
        if mh.host_id in self._mss:
            raise SimulationError(
                f"id {mh.host_id} already used by a MSS"
            )
        self._mh[mh.host_id] = mh

    def mss(self, mss_id: str) -> "MobileSupportStation":
        """Look up a MSS by id."""
        try:
            return self._mss[mss_id]
        except KeyError:
            raise UnknownHostError(f"unknown MSS: {mss_id}") from None

    def mobile_host(self, mh_id: str) -> "MobileHost":
        """Look up a MH by id."""
        try:
            return self._mh[mh_id]
        except KeyError:
            raise UnknownHostError(f"unknown MH: {mh_id}") from None

    def mss_ids(self) -> List[str]:
        """Ids of all registered MSSs, in registration order."""
        return list(self._mss)

    def mh_ids(self) -> List[str]:
        """Ids of all registered MHs, in registration order."""
        return list(self._mh)

    def notify_mh_joined(self, mh_id: str, mss_id: str) -> None:
        """Inform location-maintaining search protocols about a join."""
        self.search_protocol.on_mh_joined(self, mh_id, mss_id)

    # ------------------------------------------------------------------
    # Fixed network (MSS <-> MSS): reliable, sequenced, arbitrary latency
    # ------------------------------------------------------------------

    def send_fixed(self, message: Message) -> None:
        """Send ``message`` between two MSSs over the static network.

        A message a MSS sends to itself is delivered locally after zero
        delay and is not a network message (no cost recorded).
        """
        dst = self.mss(message.dst)
        if message.src == message.dst:
            self.scheduler.schedule(0.0, dst.handle_message, message)
            return
        self.mss(message.src)  # validate the source exists
        self.metrics.record_fixed(message.scope)
        arrival = self._fifo_arrival(
            (message.src, message.dst),
            self.config.fixed_latency(self.rng),
        )
        self.scheduler.schedule_at(arrival, dst.handle_message, message)

    # ------------------------------------------------------------------
    # Wireless cell (MSS <-> local MH): FIFO, prefix-loss on leave
    # ------------------------------------------------------------------

    def send_wireless_down(
        self,
        mss_id: str,
        mh_id: str,
        message: Message,
        on_lost: Optional[Callable[[Message], None]] = None,
        on_delivered: Optional[DeliveredCallback] = None,
    ) -> None:
        """Transmit ``message`` from ``mss_id`` to a MH in its cell.

        The transmission is charged immediately (the MSS uses the
        wireless medium either way); the MH's receive energy is charged
        only on successful delivery.  If the MH leaves the cell (or
        disconnects) before the message arrives, the message is lost and
        ``on_lost`` fires -- callers needing eventual delivery use
        :meth:`send_to_mh`, which retries with a fresh search.
        """
        mss = self.mss(mss_id)
        mh = self.mobile_host(mh_id)
        if mh_id not in mss.local_mhs:
            raise NotConnectedError(
                f"{mh_id} is not local to {mss_id}; use send_to_mh"
            )
        key = (mss_id, mh_id)
        seq = self._downlink_seq.get(key, 0) + 1
        self._downlink_seq[key] = seq
        message.wireless_seq = seq
        session = mh.session
        self.metrics.record_wireless_rx(mh_id, message.scope)
        arrival = self._fifo_arrival(
            key, self.config.wireless_latency(self.rng)
        )
        self.scheduler.schedule_at(
            arrival,
            self._deliver_downlink,
            mss_id,
            mh,
            message,
            session,
            on_lost,
            on_delivered,
        )

    def _deliver_downlink(
        self,
        mss_id: str,
        mh: "MobileHost",
        message: Message,
        session: int,
        on_lost: Optional[Callable[[Message], None]],
        on_delivered: Optional[DeliveredCallback],
    ) -> None:
        still_here = (
            mh.is_connected
            and mh.current_mss_id == mss_id
            and mh.session == session
        )
        if not still_here:
            self.lost_wireless_messages += 1
            if on_lost is not None:
                on_lost(message)
            return
        mh.note_downlink_delivery(message.wireless_seq)
        mh.handle_message(message)
        if on_delivered is not None:
            on_delivered(message)

    def send_wireless_up(self, mh_id: str, message: Message) -> None:
        """Transmit ``message`` from a MH to its current local MSS.

        The MH must be connected (the system model forbids sending after
        ``leave``/``disconnect``).  Uplink delivery always succeeds: the
        MSS is static.
        """
        mh = self.mobile_host(mh_id)
        if not mh.is_connected:
            raise NotConnectedError(
                f"{mh_id} cannot transmit while {mh.state.value}"
            )
        mss = self.mss(mh.current_mss_id)
        message.dst = mss.host_id
        self.metrics.record_wireless_tx(mh_id, message.scope)
        arrival = self._fifo_arrival(
            (mh_id, mss.host_id), self.config.wireless_latency(self.rng)
        )
        self.scheduler.schedule_at(arrival, mss.handle_message, message)

    # ------------------------------------------------------------------
    # Reliable MH delivery: locate, forward, retry across moves
    # ------------------------------------------------------------------

    def send_to_mh(
        self,
        src_mss_id: str,
        mh_id: str,
        message: Message,
        on_delivered: Optional[DeliveredCallback] = None,
        on_disconnected: Optional[DisconnectedCallback] = None,
    ) -> None:
        """Deliver ``message`` to ``mh_id``, wherever it currently is.

        Implements the model's eventual-delivery guarantee: if the MH is
        local, one wireless hop suffices; otherwise a search locates its
        current MSS and the message takes the final wireless hop from
        there.  If the MH moves while the message is in flight, delivery
        is retried with a fresh search.  If the MH has disconnected,
        ``on_disconnected`` fires at the source with the outcome (the
        notification from the disconnect-cell MSS), matching Section 2.
        """
        src = self.mss(src_mss_id)
        if mh_id in src.local_mhs:
            self.send_wireless_down(
                src_mss_id,
                mh_id,
                message,
                on_lost=lambda msg: self.send_to_mh(
                    src_mss_id, mh_id, msg, on_delivered, on_disconnected
                ),
                on_delivered=on_delivered,
            )
            return

        def on_outcome(outcome: SearchOutcome) -> None:
            if outcome.disconnected:
                # The MSS of the cell where the MH disconnected notifies
                # the source of the disconnected status (Section 2).
                # Measured search protocols already counted that reply
                # among their probes; the abstract protocol charges one
                # fixed message for it here.
                if self.search_protocol.includes_forward:
                    self.metrics.record_fixed(message.scope)
                if on_disconnected is not None:
                    on_disconnected(outcome)
                return
            if not self.search_protocol.includes_forward:
                self.search_protocol.record_forward(self, message.scope)
            dst_mss_id = outcome.mss_id
            dst = self.mss(dst_mss_id)
            if mh_id not in dst.local_mhs:
                # The MH moved between search resolution and forward;
                # retry from the located MSS with a fresh search.
                self.scheduler.schedule(
                    self.config.search_retry_delay,
                    self.send_to_mh,
                    dst_mss_id,
                    mh_id,
                    message,
                    on_delivered,
                    on_disconnected,
                )
                return
            self.send_wireless_down(
                dst_mss_id,
                mh_id,
                message,
                on_lost=lambda msg: self.send_to_mh(
                    dst_mss_id, mh_id, msg, on_delivered, on_disconnected
                ),
                on_delivered=on_delivered,
            )

        self.search_protocol.search(
            self, src_mss_id, mh_id, message.scope, on_outcome
        )

    # ------------------------------------------------------------------

    def _fifo_arrival(self, channel: Tuple[str, str], latency: float) -> float:
        """Arrival time respecting per-channel FIFO ordering."""
        arrival = max(
            self.scheduler.now + latency,
            self._last_arrival.get(channel, 0.0),
        )
        self._last_arrival[channel] = arrival
        return arrival
