"""The network core: wired channels, wireless cells, MH delivery service.

The :class:`Network` owns no protocol logic.  It transports
:class:`~repro.net.messages.Message` envelopes between registered hosts,
enforces the FIFO guarantees of the system model, accounts every
transmission in the :class:`~repro.metrics.MetricsCollector`, and offers
:meth:`Network.send_to_mh` -- the "locate then deliver, retrying across
moves" service the paper's algorithms rely on.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    NotConnectedError,
    SimulationError,
    UnknownHostError,
)
from repro.metrics import MetricsCollector
from repro.net.config import NetworkConfig
from repro.net.latency import ConstantLatency
from repro.net.messages import Message
from repro.net.search import AbstractSearch, SearchOutcome, SearchProtocol
from repro.sim import Scheduler
from repro.trace.events import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.hosts.mh import MobileHost
    from repro.hosts.mss import MobileSupportStation
    from repro.net.reliable import ReliableTransport
    from repro.scale.store import PopulationStore

DeliveredCallback = Callable[[Message], None]
DisconnectedCallback = Callable[[SearchOutcome], None]


class Network:
    """Transport fabric connecting MSSs and MHs.

    Args:
        scheduler: the shared discrete-event scheduler.
        metrics: collector every transmission is recorded into.
        config: timing knobs (latencies, transit and search delays).
        search_protocol: how non-local MHs are located
            (default: the paper's abstract scalar-cost search).
        rng: source of randomness for latency models.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        metrics: Optional[MetricsCollector] = None,
        config: Optional[NetworkConfig] = None,
        search_protocol: Optional[SearchProtocol] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.config = config if config is not None else NetworkConfig()
        self.search_protocol = (
            search_protocol if search_protocol is not None else AbstractSearch()
        )
        self.rng = rng if rng is not None else random.Random(0)
        self._mss: Dict[str, "MobileSupportStation"] = {}
        self._mh: Dict[str, "MobileHost"] = {}
        # FIFO enforcement: last scheduled arrival per directed channel.
        self._last_arrival: Dict[Tuple[str, str], float] = {}
        # Downlink sequence counters per (mss, mh), reset on each join.
        self._downlink_seq: Dict[Tuple[str, str], int] = {}
        self.lost_wireless_messages = 0
        #: fault injector; ``None`` keeps the paper's reliable model.
        self.faults: Optional["FaultInjector"] = None
        #: array-backed passive-crowd store (``repro.scale``); ``None``
        #: keeps every MH a full object.
        self.population: Optional["PopulationStore"] = None
        #: reliable-delivery layer wrapping :meth:`send_fixed`.
        self.reliable: Optional["ReliableTransport"] = None
        # Trace sink (behind the ``trace`` property): the shared no-op
        # tracer unless a Tracer is installed.  ``_trace_on`` mirrors
        # ``trace.enabled`` as a plain bool so per-message guards are a
        # single attribute load instead of null-object dispatch.
        self._trace = NULL_TRACER
        self._trace_on = False
        # Fast-path state derived once (refreshed on trace/faults
        # installation): constant-latency values, and the monomorphic
        # raw fixed-send implementation.
        self._fixed_const: Optional[float] = None
        self._wireless_const: Optional[float] = None
        self._refresh_fast_paths()

    # ------------------------------------------------------------------
    # Fast-path wiring
    # ------------------------------------------------------------------

    @property
    def trace(self):
        """The trace sink (a :class:`~repro.trace.Tracer` or the shared
        no-op tracer).  A pure observer: swapping it never changes
        costs, ordering, or randomness.  Assigning here rebinds the
        network's fast paths, so always install tracers via this
        attribute."""
        return self._trace

    @trace.setter
    def trace(self, tracer) -> None:
        self._trace = tracer
        self._refresh_fast_paths()

    def _refresh_fast_paths(self) -> None:
        """Re-derive the precomputed hot-path state.

        Called whenever a tracer or fault injector is installed (and
        once at construction).  Latency models are sampled from
        :attr:`config` here: replacing ``config`` or its latency models
        after construction must be followed by another call (repo code
        never does; the supported idiom is constructing a fresh
        :class:`Network`).
        """
        self._trace_on = bool(getattr(self._trace, "enabled", True))
        # Sampling hubs hand out per-etype skip gates (see
        # MonitorHub.call_site_gate): the hot instrumentation points
        # below resolve the sampling cadence inline and skip the whole
        # emit call for events no monitor would see.  ``None`` (plain
        # tracers, record mode, rate 1.0) means "always emit".
        gate_for = getattr(self._trace, "call_site_gate", None)
        if gate_for is not None and self._trace_on:
            self._gate_send_fixed = gate_for("send.fixed")
            self._gate_send_local = gate_for("send.local")
            self._gate_recv = gate_for("recv")
            self._gate_wireless_up = gate_for("send.wireless_up")
            self._gate_wireless_down = gate_for("send.wireless_down")
            self._gate_mss_handoff = gate_for("mss.handoff")
            self._gate_search_begin = gate_for("search.begin")
            self._gate_search_charge = gate_for("search.charge")
        else:
            self._gate_send_fixed = None
            self._gate_send_local = None
            self._gate_recv = None
            self._gate_wireless_up = None
            self._gate_wireless_down = None
            self._gate_mss_handoff = None
            self._gate_search_begin = None
            self._gate_search_charge = None
        # Batched hubs hand out per-etype ledger appenders instead (see
        # MonitorHub.call_site_batch): the same hot points append one
        # row tuple and skip the emit call entirely.  ``None`` (plain
        # tracers, per-event hubs, record mode) means "emit as usual";
        # batching and sampling are mutually exclusive, so at most one
        # family of fast paths is active.
        batch_for = getattr(self._trace, "call_site_batch", None)
        if batch_for is not None and self._trace_on:
            self._batch_send_fixed = batch_for("send.fixed", "fixed")
            self._batch_send_local = batch_for("send.local")
            self._batch_recv = batch_for("recv")
            self._batch_wireless_up = batch_for("send.wireless_up",
                                                "wireless")
            self._batch_wireless_down = batch_for("send.wireless_down",
                                                  "wireless")
            self._batch_mss_handoff = batch_for("mss.handoff")
            self._batch_mh_leave = batch_for("mh.leave")
            self._batch_mh_join = batch_for("mh.join")
            self._batch_search_charge = batch_for("search.charge",
                                                  "search")
            self._batch_search_probes = batch_for("search.probes",
                                                  "search_probe")
        else:
            self._batch_send_fixed = None
            self._batch_send_local = None
            self._batch_recv = None
            self._batch_wireless_up = None
            self._batch_wireless_down = None
            self._batch_mss_handoff = None
            self._batch_mh_leave = None
            self._batch_mh_join = None
            self._batch_search_charge = None
            self._batch_search_probes = None
        fixed = self.config.fixed_latency
        self._fixed_const = (
            fixed.value if isinstance(fixed, ConstantLatency) else None
        )
        wireless = self.config.wireless_latency
        self._wireless_const = (
            wireless.value if isinstance(wireless, ConstantLatency) else None
        )
        # The monomorphic raw-send: when nothing can observe or perturb
        # a fixed-network transmission (no tracer, no fault injector,
        # constant latency), bind the branch-free fast variant once
        # instead of re-deciding per message.
        if not self._trace_on and self.faults is None and (
            self._fixed_const is not None
        ):
            self._send_fixed_raw = self._send_fixed_raw_fast
        elif self._trace_on and self.faults is None and (
            self._fixed_const is not None
        ):
            # Traced but unperturbed: same dead-branch elision as the
            # fast variant (no injector means no MSS can be crashed and
            # no drop/delay/duplicate decisions), keeping only the
            # tracer gate in the loop.
            self._send_fixed_raw = self._send_fixed_raw_traced
        else:
            self._send_fixed_raw = self._send_fixed_raw_general

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def register_mss(self, mss: "MobileSupportStation") -> None:
        """Add a mobile support station to the fixed network."""
        if mss.host_id in self._mss:
            raise SimulationError(f"duplicate MSS id: {mss.host_id}")
        self._mss[mss.host_id] = mss
        if self.reliable is not None:
            self.reliable.attach(mss)

    def register_mh(self, mh: "MobileHost") -> None:
        """Add a mobile host to the system."""
        if mh.host_id in self._mh:
            raise SimulationError(f"duplicate MH id: {mh.host_id}")
        if mh.host_id in self._mss:
            raise SimulationError(
                f"id {mh.host_id} already used by a MSS"
            )
        self._mh[mh.host_id] = mh

    def mss(self, mss_id: str) -> "MobileSupportStation":
        """Look up a MSS by id."""
        try:
            return self._mss[mss_id]
        except KeyError:
            raise UnknownHostError(f"unknown MSS: {mss_id}") from None

    def unregister_mh(self, mh_id: str) -> None:
        """Drop a MH object (the population store's demotion path)."""
        self._mh.pop(mh_id, None)

    def install_population(self, population: "PopulationStore") -> None:
        """Install a bound-once array-backed population store.

        Once installed, :meth:`mobile_host` transparently promotes
        passive store entries to full objects on first touch.
        """
        if self.population is not None:
            raise SimulationError("population store already installed")
        self.population = population

    def mobile_host(self, mh_id: str) -> "MobileHost":
        """Look up a MH by id.

        With a population store installed, a passive (array-backed) MH
        is silently promoted to a full object here -- the single choke
        point that makes the store transparent to protocols, mobility
        models, and search.
        """
        try:
            return self._mh[mh_id]
        except KeyError:
            population = self.population
            if population is not None and population.owns(mh_id):
                return population.promote(mh_id)
            raise UnknownHostError(f"unknown MH: {mh_id}") from None

    def mss_ids(self) -> List[str]:
        """Ids of all registered MSSs, in registration order."""
        return list(self._mss)

    def mh_ids(self) -> List[str]:
        """Ids of all MHs: population-store ids in index order (when a
        store is installed), then any independently registered objects.

        O(N) with a store installed -- a million-entry list.  Loops
        over the whole population belong in the store's batched
        operations, not here.
        """
        ids = list(self._mh)
        population = self.population
        if population is not None:
            extras = [i for i in ids if not population.covers(i)]
            return population.all_ids() + extras
        return ids

    def notify_mh_joined(self, mh_id: str, mss_id: str) -> None:
        """Inform location-maintaining search protocols about a join."""
        self.search_protocol.on_mh_joined(self, mh_id, mss_id)

    def notify_mh_crashed(self, mh_id: str) -> None:
        """Have location-caching search protocols purge the crashed MH."""
        self.search_protocol.on_mh_crashed(self, mh_id)

    # ------------------------------------------------------------------
    # Fault injection and reliable delivery (both optional)
    # ------------------------------------------------------------------

    def install_faults(self, injector: "FaultInjector") -> None:
        """Install a bound-once fault injector on this network."""
        if self.faults is not None:
            raise SimulationError("fault injector already installed")
        self.faults = injector
        injector.bind(self)
        self._refresh_fast_paths()

    def install_reliable(self, **kwargs: object) -> "ReliableTransport":
        """Install the reliable-delivery layer over the fixed network.

        Keyword arguments are forwarded to
        :class:`~repro.net.reliable.ReliableTransport` (``timeout``,
        ``backoff``, ``max_retries``, ``jitter``, ``max_delay``,
        ``rng``).
        """
        from repro.net.reliable import ReliableTransport

        if self.reliable is not None:
            raise SimulationError("reliable transport already installed")
        self.reliable = ReliableTransport(self, **kwargs)
        self.reliable.install()
        return self.reliable

    def is_mss_crashed(self, mss_id: str) -> bool:
        """Whether ``mss_id`` is currently down (always False fault-free)."""
        return self.mss(mss_id).crashed

    def is_mh_crashed(self, mh_id: str) -> bool:
        """Whether MH ``mh_id`` is currently down (always False
        fault-free).  Reads the population store directly for passive
        MHs -- a liveness probe must not force a promotion."""
        population = self.population
        if population is not None and population.owns(mh_id):
            return population.is_crashed(mh_id)
        return self.mobile_host(mh_id).crashed

    def next_alive_mss(self, start_id: str) -> Optional[str]:
        """The first non-crashed MSS at or after ``start_id`` in
        registration order (wrapping), or ``None`` if all are down."""
        ids = self.mss_ids()
        start = ids.index(start_id)
        for offset in range(len(ids)):
            candidate = ids[(start + offset) % len(ids)]
            if not self.mss(candidate).crashed:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Fixed network (MSS <-> MSS): reliable, sequenced, arbitrary latency
    # ------------------------------------------------------------------

    def send_fixed(self, message: Message) -> None:
        """Send ``message`` between two MSSs over the static network.

        A message a MSS sends to itself is delivered locally after zero
        delay and is not a network message (no cost recorded).  When a
        reliable transport is installed, inter-MSS messages are wrapped
        in its sequenced envelopes (the transport's own envelopes pass
        through raw).
        """
        dst = self.mss(message.dst)
        if message.src == message.dst:
            if self._trace_on:
                appender = self._batch_send_local
                gate = self._gate_send_local
                if appender is not None:
                    message.trace_id = appender(
                        message.scope, message.src, message.dst,
                        message.kind,
                    )
                elif gate is None:
                    message.trace_id = self._trace.emit(
                        "send.local",
                        scope=message.scope,
                        src=message.src,
                        dst=message.dst,
                        kind=message.kind,
                    )
                else:
                    counter, stride, suffixes = gate
                    c = counter[0] - 1
                    if c <= 0:
                        counter[0] = stride
                        message.trace_id = self._trace.emit_gated(
                            "send.local",
                            True,
                            scope=message.scope,
                            src=message.src,
                            dst=message.dst,
                            kind=message.kind,
                        )
                    else:
                        counter[0] = c
                        if suffixes and message.kind.endswith(suffixes):
                            message.trace_id = self._trace.emit_gated(
                                "send.local",
                                False,
                                scope=message.scope,
                                src=message.src,
                                dst=message.dst,
                                kind=message.kind,
                            )
                        else:
                            # Skipped: clear any stale id so it cannot
                            # masquerade as this send's causal parent.
                            message.trace_id = None
            self.scheduler.post(0.0, dst.handle_message, message)
            return
        self.mss(message.src)  # validate the source exists
        if self.reliable is not None and not message.kind.startswith("rel."):
            self.reliable.send(message)
            return
        self._send_fixed_raw(message)

    def _send_fixed_raw_fast(self, message: Message) -> None:
        """Monomorphic fast raw-send (see :meth:`_refresh_fast_paths`).

        Bound as ``_send_fixed_raw`` only when no tracer is enabled, no
        fault injector is installed (so no MSS can be crashed), and the
        fixed latency is constant (so no RNG draw happens either way) --
        under those preconditions this is step-for-step identical to
        :meth:`_send_fixed_raw_general`, minus the dead branches.
        """
        try:
            dst = self._mss[message.dst]
        except KeyError:
            raise UnknownHostError(f"unknown MSS: {message.dst}") from None
        self.metrics.record_fixed(message.scope)
        key = (message.src, message.dst)
        arrival = self.scheduler.now + self._fixed_const
        last = self._last_arrival
        previous = last.get(key)
        if previous is not None and previous > arrival:
            arrival = previous
        last[key] = arrival
        self.scheduler.post_at(arrival, dst.handle_message, message)

    def _send_fixed_raw_traced(self, message: Message) -> None:
        """Monomorphic traced raw-send: tracer on, nothing perturbed.

        Bound when a tracer is enabled but no fault injector is
        installed and the fixed latency is constant.  Step-for-step
        identical to :meth:`_send_fixed_raw_general` under those
        preconditions (no MSS can be crashed without an injector, and
        no drop/delay/duplicate decisions exist), so traces and event
        timing are byte-identical -- only the dead branches are gone.
        """
        try:
            dst = self._mss[message.dst]
        except KeyError:
            raise UnknownHostError(f"unknown MSS: {message.dst}") from None
        self.metrics.record_fixed(message.scope)
        appender = self._batch_send_fixed
        gate = self._gate_send_fixed
        if appender is not None:
            message.trace_id = appender(
                message.scope, message.src, message.dst, message.kind,
            )
        elif gate is None:
            message.trace_id = self._trace.emit(
                "send.fixed",
                scope=message.scope,
                category="fixed",
                src=message.src,
                dst=message.dst,
                kind=message.kind,
            )
        else:
            counter, stride, suffixes = gate
            c = counter[0] - 1
            due = c <= 0
            counter[0] = stride if due else c
            if due or (suffixes and message.kind.endswith(suffixes)):
                message.trace_id = self._trace.emit_gated(
                    "send.fixed",
                    due,
                    scope=message.scope,
                    category="fixed",
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                )
            else:
                # Skipped: a stale id here would let FIFO / delivery
                # monitors mis-parent later receives.
                message.trace_id = None
        key = (message.src, message.dst)
        last = self._last_arrival
        arrival = self.scheduler.now + self._fixed_const
        previous = last.get(key)
        if previous is not None and previous > arrival:
            arrival = previous
        last[key] = arrival
        self.scheduler.post_at(arrival, dst.handle_message, message)

    def _send_fixed_raw_general(self, message: Message) -> None:
        """One physical transmission attempt on the fixed network.

        Records the cost, then consults the fault injector: the message
        may be dropped (source crashed, partition, lossy link), delayed,
        or duplicated.  Without an injector this is the paper's reliable
        sequenced channel.
        """
        try:
            dst = self._mss[message.dst]
        except KeyError:
            raise UnknownHostError(f"unknown MSS: {message.dst}") from None
        self.metrics.record_fixed(message.scope)
        if self._trace_on:
            appender = self._batch_send_fixed
            gate = self._gate_send_fixed
            if appender is not None:
                message.trace_id = appender(
                    message.scope, message.src, message.dst, message.kind,
                )
            elif gate is None:
                message.trace_id = self._trace.emit(
                    "send.fixed",
                    scope=message.scope,
                    category="fixed",
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                )
            else:
                counter, stride, suffixes = gate
                c = counter[0] - 1
                if c <= 0:
                    counter[0] = stride
                    message.trace_id = self._trace.emit_gated(
                        "send.fixed",
                        True,
                        scope=message.scope,
                        category="fixed",
                        src=message.src,
                        dst=message.dst,
                        kind=message.kind,
                    )
                else:
                    counter[0] = c
                    if suffixes and message.kind.endswith(suffixes):
                        message.trace_id = self._trace.emit_gated(
                            "send.fixed",
                            False,
                            scope=message.scope,
                            category="fixed",
                            src=message.src,
                            dst=message.dst,
                            kind=message.kind,
                        )
                    else:
                        # Skipped: a stale id here would let FIFO /
                        # delivery monitors mis-parent later receives.
                        message.trace_id = None
        if self._mss[message.src].crashed:
            # A crashed station transmits nothing; the message (already
            # charged) vanishes on the wire.
            self.metrics.record_fault("fixed.dropped_src_crashed")
            if self._trace_on:
                self._trace.emit(
                    "fault.drop",
                    scope=message.scope,
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                    parent=message.trace_id,
                    reason="fixed.dropped_src_crashed",
                )
            return
        extra_delay = 0.0
        duplicates = 0
        if self.faults is not None:
            decision = self.faults.decide_fixed(message)
            if decision.drop:
                self.metrics.record_fault(decision.reason)
                if self._trace_on:
                    self._trace.emit(
                        "fault.drop",
                        scope=message.scope,
                        src=message.src,
                        dst=message.dst,
                        kind=message.kind,
                        parent=message.trace_id,
                        reason=decision.reason,
                    )
                return
            extra_delay = decision.extra_delay
            duplicates = decision.duplicates
            if self._trace_on and duplicates:
                self._trace.emit(
                    "fault.duplicate",
                    scope=message.scope,
                    src=message.src,
                    dst=message.dst,
                    kind=message.kind,
                    parent=message.trace_id,
                    copies=duplicates,
                )
        latency = self._fixed_const
        if latency is None:
            latency = self.config.fixed_latency(self.rng)
        # Inline _fifo_arrival (hot even when every emit is skipped).
        key = (message.src, message.dst)
        last = self._last_arrival
        arrival = self.scheduler.now + latency + extra_delay
        previous = last.get(key)
        if previous is not None and previous > arrival:
            arrival = previous
        last[key] = arrival
        self.scheduler.post_at(arrival, dst.handle_message, message)
        for _ in range(duplicates):
            # A duplicate is a spurious extra copy on the wire; it does
            # not advance the channel's FIFO frontier.
            self.scheduler.post(
                self.config.fixed_latency(self.rng) + extra_delay,
                dst.handle_message,
                message,
            )

    # ------------------------------------------------------------------
    # Wireless cell (MSS <-> local MH): FIFO, prefix-loss on leave
    # ------------------------------------------------------------------

    def send_wireless_down(
        self,
        mss_id: str,
        mh_id: str,
        message: Message,
        on_lost: Optional[Callable[[Message], None]] = None,
        on_delivered: Optional[DeliveredCallback] = None,
    ) -> None:
        """Transmit ``message`` from ``mss_id`` to a MH in its cell.

        The transmission is charged immediately (the MSS uses the
        wireless medium either way); the MH's receive energy is charged
        only on successful delivery.  If the MH leaves the cell (or
        disconnects) before the message arrives, the message is lost and
        ``on_lost`` fires -- callers needing eventual delivery use
        :meth:`send_to_mh`, which retries with a fresh search.
        """
        mss = self.mss(mss_id)
        mh = self.mobile_host(mh_id)
        if mss.crashed:
            # A crashed station has no working transmitter; the message
            # is lost on the spot (no cost: nothing was transmitted).
            self.lost_wireless_messages += 1
            self.metrics.record_fault("wireless.dropped_src_crashed")
            if self._trace_on:
                self._trace.emit(
                    "wireless.lost",
                    scope=message.scope,
                    src=mss_id,
                    dst=mh_id,
                    kind=message.kind,
                    reason="wireless.dropped_src_crashed",
                )
            if on_lost is not None:
                on_lost(message)
            return
        if mh_id not in mss.local_mhs:
            raise NotConnectedError(
                f"{mh_id} is not local to {mss_id}; use send_to_mh"
            )
        key = (mss_id, mh_id)
        seq = self._downlink_seq.get(key, 0) + 1
        self._downlink_seq[key] = seq
        message.wireless_seq = seq
        session = mh.session
        self.metrics.record_wireless_rx(mh_id, message.scope)
        if self._trace_on:
            appender = self._batch_wireless_down
            gate = self._gate_wireless_down
            if appender is not None:
                message.trace_id = appender(
                    message.scope, mss_id, mh_id, message.kind,
                )
            elif gate is None:
                message.trace_id = self._trace.emit(
                    "send.wireless_down",
                    scope=message.scope,
                    category="wireless",
                    src=mss_id,
                    dst=mh_id,
                    kind=message.kind,
                )
            else:
                counter, stride, suffixes = gate
                c = counter[0] - 1
                due = c <= 0
                counter[0] = stride if due else c
                if due or (suffixes and message.kind.endswith(suffixes)):
                    message.trace_id = self._trace.emit_gated(
                        "send.wireless_down",
                        due,
                        scope=message.scope,
                        category="wireless",
                        src=mss_id,
                        dst=mh_id,
                        kind=message.kind,
                    )
                else:
                    # Skipped: clear any stale id so the downlink's
                    # receive cannot mis-parent to an older send.
                    message.trace_id = None
        latency = self._wireless_const
        if latency is None:
            latency = self.config.wireless_latency(self.rng)
        arrival = self._fifo_arrival(key, latency)
        self.scheduler.post_at(
            arrival,
            self._deliver_downlink,
            mss_id,
            mh,
            message,
            session,
            on_lost,
            on_delivered,
        )

    def _deliver_downlink(
        self,
        mss_id: str,
        mh: "MobileHost",
        message: Message,
        session: int,
        on_lost: Optional[Callable[[Message], None]],
        on_delivered: Optional[DeliveredCallback],
    ) -> None:
        still_here = (
            mh.is_connected
            and mh.current_mss_id == mss_id
            and mh.session == session
        )
        if not still_here:
            self.lost_wireless_messages += 1
            if self._trace_on:
                self._trace.emit(
                    "wireless.lost",
                    scope=message.scope,
                    src=mss_id,
                    dst=mh.host_id,
                    kind=message.kind,
                    parent=message.trace_id,
                    reason="mh_left_cell",
                )
            if on_lost is not None:
                on_lost(message)
            return
        mh.note_downlink_delivery(message.wireless_seq)
        mh.handle_message(message)
        if on_delivered is not None:
            on_delivered(message)

    def send_wireless_up(self, mh_id: str, message: Message) -> None:
        """Transmit ``message`` from a MH to its current local MSS.

        The MH must be connected (the system model forbids sending after
        ``leave``/``disconnect``).  Uplink delivery always succeeds: the
        MSS is static.
        """
        mh = self.mobile_host(mh_id)
        if not mh.is_connected:
            raise NotConnectedError(
                f"{mh_id} cannot transmit while {mh.state.value}"
            )
        mss = self.mss(mh.current_mss_id)
        message.dst = mss.host_id
        self.metrics.record_wireless_tx(mh_id, message.scope)
        if self._trace_on:
            appender = self._batch_wireless_up
            gate = self._gate_wireless_up
            if appender is not None:
                message.trace_id = appender(
                    message.scope, mh_id, mss.host_id, message.kind,
                )
            elif gate is None:
                message.trace_id = self._trace.emit(
                    "send.wireless_up",
                    scope=message.scope,
                    category="wireless",
                    src=mh_id,
                    dst=mss.host_id,
                    kind=message.kind,
                )
            else:
                counter, stride, suffixes = gate
                c = counter[0] - 1
                due = c <= 0
                counter[0] = stride if due else c
                if due or (suffixes and message.kind.endswith(suffixes)):
                    message.trace_id = self._trace.emit_gated(
                        "send.wireless_up",
                        due,
                        scope=message.scope,
                        category="wireless",
                        src=mh_id,
                        dst=mss.host_id,
                        kind=message.kind,
                    )
                else:
                    message.trace_id = None
        latency = self._wireless_const
        if latency is None:
            latency = self.config.wireless_latency(self.rng)
        arrival = self._fifo_arrival((mh_id, mss.host_id), latency)
        self.scheduler.post_at(arrival, mss.handle_message, message)

    # ------------------------------------------------------------------
    # Reliable MH delivery: locate, forward, retry across moves
    # ------------------------------------------------------------------

    def send_to_mh(
        self,
        src_mss_id: str,
        mh_id: str,
        message: Message,
        on_delivered: Optional[DeliveredCallback] = None,
        on_disconnected: Optional[DisconnectedCallback] = None,
        _attempts: int = 1,
    ) -> None:
        """Deliver ``message`` to ``mh_id``, wherever it currently is.

        Implements the model's eventual-delivery guarantee: if the MH is
        local, one wireless hop suffices; otherwise a search locates its
        current MSS and the message takes the final wireless hop from
        there.  If the MH moves while the message is in flight, delivery
        is retried with a fresh search.  If the MH has disconnected,
        ``on_disconnected`` fires at the source with the outcome (the
        notification from the disconnect-cell MSS), matching Section 2.

        The retry loop is bounded by
        ``config.mh_delivery_max_attempts``: past the cap, delivery is
        abandoned and ``on_disconnected`` fires with ``gave_up=True``.
        """
        cap = self.config.mh_delivery_max_attempts
        if cap is not None and _attempts > cap:
            self.metrics.record_fault("send_to_mh.gave_up")
            if self._trace_on:
                self._trace.emit(
                    "send_to_mh.gave_up",
                    scope=message.scope,
                    src=src_mss_id,
                    dst=mh_id,
                    kind=message.kind,
                    attempts=_attempts - 1,
                )
            if on_disconnected is not None:
                on_disconnected(
                    SearchOutcome(
                        mh_id=mh_id,
                        mss_id=src_mss_id,
                        disconnected=True,
                        probes=0,
                        gave_up=True,
                    )
                )
            return
        population = self.population
        if population is not None and population.owns(mh_id):
            # Promote before the local-membership check below: a
            # passive MH that is in fact local must take the one-hop
            # wireless path, not pay a spurious search (this keeps
            # store-on and store-off runs byte-identical).
            population.promote(mh_id)
        src = self.mss(src_mss_id)
        if mh_id in src.local_mhs:
            self.send_wireless_down(
                src_mss_id,
                mh_id,
                message,
                on_lost=lambda msg: self.send_to_mh(
                    src_mss_id, mh_id, msg, on_delivered, on_disconnected,
                    _attempts + 1,
                ),
                on_delivered=on_delivered,
            )
            return

        def on_outcome(outcome: SearchOutcome) -> None:
            if outcome.disconnected:
                # The MSS of the cell where the MH disconnected notifies
                # the source of the disconnected status (Section 2).
                # Measured search protocols already counted that reply
                # among their probes; the abstract protocol charges one
                # fixed message for it here.
                if self.search_protocol.includes_forward:
                    self.metrics.record_fixed(message.scope)
                if on_disconnected is not None:
                    on_disconnected(outcome)
                return
            if not self.search_protocol.includes_forward:
                self.search_protocol.record_forward(self, message.scope)
            dst_mss_id = outcome.mss_id
            dst = self.mss(dst_mss_id)
            if mh_id not in dst.local_mhs:
                # The MH moved between search resolution and forward;
                # retry from the located MSS with a fresh search.
                self.scheduler.post(
                    self.config.search_retry_delay,
                    self.send_to_mh,
                    dst_mss_id,
                    mh_id,
                    message,
                    on_delivered,
                    on_disconnected,
                    _attempts + 1,
                )
                return
            self.send_wireless_down(
                dst_mss_id,
                mh_id,
                message,
                on_lost=lambda msg: self.send_to_mh(
                    dst_mss_id, mh_id, msg, on_delivered, on_disconnected,
                    _attempts + 1,
                ),
                on_delivered=on_delivered,
            )

        traced = self._trace_on
        if traced:
            gate = self._gate_search_begin
            if gate is not None:
                counter = gate[0]
                c = counter[0] - 1
                due = c <= 0
                counter[0] = gate[1] if due else c
                # A skipped search drops the whole trace apparatus --
                # the result closure, both context pushes -- not just
                # the begin event (they only exist for its lineage).
                traced = due
        if traced:
            gate = self._gate_search_begin
            if gate is not None:
                begin_id = self._trace.emit_gated(
                    "search.begin",
                    True,
                    scope=message.scope,
                    src=src_mss_id,
                    dst=mh_id,
                    kind=message.kind,
                    attempt=_attempts,
                )
            else:
                begin_id = self._trace.emit(
                    "search.begin",
                    scope=message.scope,
                    src=src_mss_id,
                    dst=mh_id,
                    kind=message.kind,
                    attempt=_attempts,
                )
            inner_outcome = on_outcome

            def on_outcome(outcome: SearchOutcome) -> None:
                result_id = self._trace.emit(
                    "search.result",
                    scope=message.scope,
                    src=src_mss_id,
                    dst=mh_id,
                    parent=begin_id,
                    located=outcome.mss_id,
                    disconnected=outcome.disconnected,
                    probes=outcome.probes,
                )
                with self._trace.context(result_id):
                    inner_outcome(outcome)

            with self._trace.context(begin_id):
                self.search_protocol.search(
                    self, src_mss_id, mh_id, message.scope, on_outcome
                )
        else:
            self.search_protocol.search(
                self, src_mss_id, mh_id, message.scope, on_outcome
            )

    # ------------------------------------------------------------------

    def _fifo_arrival(self, channel: Tuple[str, str], latency: float) -> float:
        """Arrival time respecting per-channel FIFO ordering."""
        arrival = max(
            self.scheduler.now + latency,
            self._last_arrival.get(channel, 0.0),
        )
        self._last_arrival[channel] = arrival
        return arrival
