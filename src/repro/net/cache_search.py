"""Caching search: temporary location caches at MSSs.

The paper notes (Section 4.1) that the network-layer protocol of its
reference [10] keeps no permanent per-MH location state but "may be
cached temporarily at a MSS".  This protocol implements that idea:

* each MSS remembers where it last found each MH;
* a search first probes the cached MSS (query + reply, two probe
  messages); a hit adds just the forward;
* a miss (no cache entry, or the MH moved since) falls back to the
  broadcast sweep of the other M-1 MSSs and refreshes the cache.

No maintenance traffic is ever sent on moves -- staleness is paid at
search time, the opposite end of the search/inform spectrum from
:class:`~repro.net.search.HomeAgentSearch`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from repro.net.search import SearchOutcome, SearchProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network


class CachingSearch(SearchProtocol):
    """Broadcast search with per-MSS location caches."""

    includes_forward = False

    def __init__(self) -> None:
        #: (searching MSS, MH) -> MSS where the MH was last found.
        self._cache: Dict[Tuple[str, str], str] = {}
        self.hits = 0
        self.misses = 0

    def record_forward(self, network: "Network", scope: str) -> None:
        network.metrics.record_search_probe(scope, count=1)

    def on_mh_crashed(self, network: "Network", mh_id: str) -> None:
        # Every cached location for the crashed host points at a cell it
        # silently vanished from; purge rather than pay a guaranteed
        # 2-probe miss at every caching MSS after the host recovers.
        stale = [key for key in self._cache if key[1] == mh_id]
        for key in stale:
            del self._cache[key]

    def search(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        cached = self._cache.get((src_mss_id, mh_id))
        if cached is not None:
            # Probe the cached location first: query + reply.
            network.metrics.record_search_probe(scope, count=2)
            round_trip = 2 * network.config.fixed_latency(network.rng)
            network.scheduler.schedule(
                round_trip,
                self._check_cached,
                network,
                src_mss_id,
                mh_id,
                cached,
                scope,
                callback,
            )
        else:
            self._broadcast(network, src_mss_id, mh_id, scope, callback,
                            extra_probes=0)

    def _check_cached(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        cached_mss_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_connected and mh.current_mss_id == cached_mss_id:
            self.hits += 1
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=cached_mss_id,
                    disconnected=False,
                    probes=2,
                )
            )
            return
        # Stale entry (the MH moved, is mid-move, or disconnected):
        # fall back to the broadcast sweep.
        self.misses += 1
        self._broadcast(network, src_mss_id, mh_id, scope, callback,
                        extra_probes=2)

    def _broadcast(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
        extra_probes: int,
    ) -> None:
        others = [m for m in network.mss_ids() if m != src_mss_id]
        probes = len(others) + 1  # queries + the positive reply
        network.metrics.record_search_probe(scope, count=probes)
        round_trip = 2 * network.config.fixed_latency(network.rng)
        network.scheduler.schedule(
            round_trip,
            self._complete_broadcast,
            network,
            src_mss_id,
            mh_id,
            scope,
            callback,
            probes + extra_probes,
        )

    def _complete_broadcast(
        self,
        network: "Network",
        src_mss_id: str,
        mh_id: str,
        scope: str,
        callback: Callable[[SearchOutcome], None],
        probes: int,
    ) -> None:
        mh = network.mobile_host(mh_id)
        if mh.is_disconnected:
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.disconnect_mss_id,
                    disconnected=True,
                    probes=probes,
                )
            )
        elif mh.is_connected:
            self._cache[(src_mss_id, mh_id)] = mh.current_mss_id
            callback(
                SearchOutcome(
                    mh_id=mh_id,
                    mss_id=mh.current_mss_id,
                    disconnected=False,
                    probes=probes,
                )
            )
        else:  # in transit: re-probe once the MH has landed somewhere
            network.scheduler.schedule(
                network.config.search_retry_delay,
                self._broadcast,
                network,
                src_mss_id,
                mh_id,
                scope,
                callback,
                0,
            )
