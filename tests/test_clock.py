"""Unit tests for Lamport clocks and timestamps."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.clock import LamportClock, Timestamp
from repro.errors import ConfigurationError


def test_tick_monotonically_increases():
    clock = LamportClock("a")
    stamps = [clock.tick() for _ in range(5)]
    counters = [ts.counter for ts in stamps]
    assert counters == [1, 2, 3, 4, 5]


def test_witness_advances_past_received():
    clock = LamportClock("a")
    result = clock.witness(Timestamp(10, "b"))
    assert result.counter == 11
    assert clock.tick().counter == 12


def test_witness_of_old_timestamp_still_advances():
    clock = LamportClock("a")
    clock.witness(Timestamp(10, "b"))
    result = clock.witness(Timestamp(2, "c"))
    assert result.counter == 12


def test_timestamps_totally_ordered_by_counter_then_id():
    assert Timestamp(1, "b") < Timestamp(2, "a")
    assert Timestamp(1, "a") < Timestamp(1, "b")
    assert not Timestamp(1, "a") < Timestamp(1, "a")


def test_timestamp_equality_and_hash():
    assert Timestamp(3, "x") == Timestamp(3, "x")
    assert len({Timestamp(3, "x"), Timestamp(3, "x")}) == 1


def test_peek_does_not_advance():
    clock = LamportClock("a")
    clock.tick()
    assert clock.peek() == clock.peek()
    assert clock.counter == 1


def test_empty_node_id_rejected():
    with pytest.raises(ConfigurationError):
        LamportClock("")


@given(st.lists(st.tuples(st.integers(0, 1000),
                          st.text(min_size=1, max_size=3)), min_size=2,
                max_size=30))
def test_property_total_order_is_consistent(pairs):
    stamps = [Timestamp(counter, node) for counter, node in pairs]
    ordered = sorted(stamps)
    for first, second in zip(ordered, ordered[1:]):
        assert first < second or first == second
    # Sorting matches lexicographic order on the tuples.
    assert [(ts.counter, ts.node_id) for ts in ordered] == sorted(
        (counter, node) for counter, node in pairs
    )


@given(st.lists(st.integers(0, 100), max_size=30))
def test_property_clock_exceeds_everything_witnessed(counters):
    clock = LamportClock("me")
    for counter in counters:
        clock.witness(Timestamp(counter, "other"))
    if counters:
        assert clock.counter > max(counters)
