"""Monitors must be pure observers: the simulation is byte-identical
with them on, off, or recording.

Two golden workloads -- a faulty R2'' run (loss + duplication + a
mid-run crash + a handoff) and a fault-free L2 + location-view run
with broadcast search -- are pinned to the exact event counts, final
clocks, access counts and metric digests they produced *before* the
monitor layer existed.  Every combination of ``trace=``/``monitors=``
must reproduce those numbers exactly: if a monitor ever schedules an
event, consumes randomness, or perturbs a message, these tests break.

The digest hashes the full metrics surface (per-category counts,
per-host energy, fault counters, recovery times), so "identical" here
means the paper-facing numbers, not just the event count.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import Simulation
from repro.faults import FaultPlan, LinkFault, MssCrash
from repro.groups.location_view import LocationViewGroup
from repro.mutex import CriticalResource, L2Mutex, R2Mutex, R2Variant
from repro.trace import to_jsonl

#: golden numbers recorded at the PR 4 tree (before repro.monitor).
CHAOS_GOLDEN = {
    "events_processed": 299,
    "final_now": 135.0,
    "access_count": 6,
    "energy_total": 22,
    "fault_total": 86,
    "digest": "d5c52347083b3295936abca0d9e3f517"
              "eb3df09694bb845944b74c998384d40e",
}
GROUP_GOLDEN = {
    "events_processed": 36,
    "final_now": 13.5,
    "access_count": 4,
    "energy_total": 23,
    "digest": "6654fd78f002b10369a844efe1818967"
              "68fd504979cabce81d0c54d99d24e9c1",
}

#: every observation mode the facade supports -- including the sampled
#: hub (which must not perturb the paper-facing numbers at any rate)
#: and the calendar scheduler / pooling toggles (pure engine swaps).
MODES = [
    pytest.param(dict(trace=False, monitors=None), id="bare"),
    pytest.param(dict(trace=True, monitors=None), id="trace"),
    pytest.param(dict(trace=False, monitors=True), id="monitors"),
    pytest.param(dict(trace=True, monitors=True), id="trace+monitors"),
    pytest.param(dict(trace=False, monitors=True, monitor_sampling=1.0),
                 id="monitors@1.0"),
    pytest.param(dict(trace=False, monitors=True, monitor_sampling=0.1),
                 id="monitors@0.1"),
    pytest.param(dict(trace=True, monitors=None, scheduler="calendar"),
                 id="trace+calendar"),
    pytest.param(dict(trace=False, monitors=None, pooling=False),
                 id="bare-unpooled"),
    pytest.param(dict(trace=True, monitors=True, scheduler="calendar",
                      monitor_sampling=0.1), id="everything"),
]


def metrics_digest(sim) -> str:
    snap = sim.metrics.snapshot()
    counts = sorted(
        ((cat.value, scope), n) for (cat, scope), n in snap.counts.items()
    )
    payload = json.dumps(
        {
            "counts": counts,
            "energy_tx": sorted(snap.energy_tx.items()),
            "energy_rx": sorted(snap.energy_rx.items()),
            "faults": sorted(snap.faults.items()),
            "recovery_times": list(snap.recovery_times),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def chaos_workload(**sim_kwargs):
    plan = FaultPlan(
        link_faults=(
            LinkFault(drop=0.15, duplicate=0.05, start=0.0, end=60.0),
        ),
        crashes=(MssCrash("mss-1", at=12.0, recover_at=45.0),),
        reliable=True,
        retransmit_timeout=4.0,
        rejoin_delay=3.0,
        seed=13,
    )
    sim = Simulation(n_mss=4, n_mh=6, seed=13, fault_plan=plan,
                     **sim_kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(
        sim.network,
        resource,
        cs_duration=1.0,
        variant=R2Variant.TOKEN_LIST,
        scope="R2''",
        max_traversals=25,
        token_timeout=30.0,
    )
    for i in range(6):
        mutex.request(sim.mh_id(i))
    mutex.start()
    sim.mh(0).move_to(sim.mss_id(2))
    events = sim.drain(max_events=2_000_000)
    return sim, resource, events


def group_workload(**sim_kwargs):
    sim = Simulation(n_mss=4, n_mh=8, seed=5, search="broadcast",
                     **sim_kwargs)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=1.0, scope="L2")
    members = [sim.mh_id(i) for i in range(4)]
    group = LocationViewGroup(sim.network, members, scope="group-lv")
    for i in range(4):
        mutex.request(sim.mh_id(i))
    group.send(sim.mh_id(0), payload="hello")
    sim.run(until=6.0)
    sim.mh(1).move_to(sim.mss_id(3))
    sim.mh(5).move_to(sim.mss_id(0))
    group.send(sim.mh_id(2), payload="again")
    events = sim.drain(max_events=2_000_000)
    return sim, resource, events


def check_golden(golden, sim, resource, events):
    snap = sim.metrics.snapshot()
    assert events == golden["events_processed"]
    assert sim.now == golden["final_now"]
    assert resource.access_count == golden["access_count"]
    assert snap.energy() == golden["energy_total"]
    if "fault_total" in golden:
        assert snap.fault_total() == golden["fault_total"]
    assert metrics_digest(sim) == golden["digest"]


@pytest.mark.parametrize("mode", MODES)
def test_chaos_workload_matches_golden_in_every_mode(mode):
    sim, resource, events = chaos_workload(**mode)
    check_golden(CHAOS_GOLDEN, sim, resource, events)


@pytest.mark.parametrize("mode", MODES)
def test_group_workload_matches_golden_in_every_mode(mode):
    sim, resource, events = group_workload(**mode)
    check_golden(GROUP_GOLDEN, sim, resource, events)


@pytest.mark.parametrize("workload", [chaos_workload, group_workload],
                         ids=["chaos", "group"])
def test_monitored_trace_is_byte_identical_to_plain_trace(workload):
    """trace=True with and without monitors yields the same event
    stream, byte for byte -- the hub records exactly what a plain
    Tracer would."""
    plain, _, _ = workload(trace=True)
    monitored, _, _ = workload(trace=True, monitors=True)
    assert to_jsonl(monitored.tracer.events) == to_jsonl(plain.tracer.events)


def test_sampled_hub_at_rate_one_sees_the_full_stream():
    """monitor_sampling=1.0 compiles to stride 1: no call-site gate is
    installed and every monitor observes exactly what the full hub
    would -- same verdicts, same violation list, on a chaotic run."""
    full, _, _ = chaos_workload(monitors=True)
    sampled, _, _ = chaos_workload(monitors=True, monitor_sampling=1.0)
    full.monitor_hub.finalize()
    sampled.monitor_hub.finalize()
    assert sampled.monitor_hub.ok == full.monitor_hub.ok
    assert (
        [(v.invariant, v.time) for v in sampled.monitor_hub.violations]
        == [(v.invariant, v.time) for v in full.monitor_hub.violations]
    )


def test_unrecorded_hub_keeps_no_events():
    """monitors without trace must not grow the event list (the whole
    point of record=False on long runs)."""
    sim, _, _ = chaos_workload(monitors=True)
    assert sim.tracer is None
    assert sim.monitor_hub.events == []
    assert sim.monitor_hub.ok, sim.monitor_report()


def test_both_golden_workloads_hold_their_invariants():
    for workload in (chaos_workload, group_workload):
        sim, _, _ = workload(monitors=True)
        sim.assert_invariants()
