"""Tests for the analytic formulas and crossover comparisons."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis import comparisons, formulas
from repro.errors import ConfigurationError
from repro.metrics import CostModel

C = CostModel(c_fixed=1.0, c_wireless=5.0, c_search=10.0)


class TestMutexFormulas:
    def test_l1_execution_cost(self):
        # 3 * (N-1) * (2*5 + 10) = 3*4*20 = 240 for N=5.
        assert formulas.l1_execution_cost(5, C) == 240.0

    def test_l2_execution_cost(self):
        # 3*5 + 1 + 10 + 3*4*1 = 38 for M=5.
        assert formulas.l2_execution_cost(5, C) == 38.0

    def test_l1_energy(self):
        assert formulas.l1_energy_total(5) == 24
        assert formulas.l1_energy_initiator(5) == 12
        assert formulas.l1_energy_non_initiator() == 3

    def test_r1_traversal_cost(self):
        assert formulas.r1_traversal_cost(5, C) == 100.0

    def test_r2_traversal_cost(self):
        # K*(15+1+10) + M*1 = 3*26 + 5 = 83.
        assert formulas.r2_traversal_cost(3, 5, C) == 83.0

    def test_r2_request_bounds(self):
        assert formulas.r2_max_requests_per_traversal(10, 4) == 40
        assert formulas.r2_prime_max_requests_per_traversal(10) == 10

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            formulas.l1_execution_cost(1, C)
        with pytest.raises(ConfigurationError):
            formulas.r2_traversal_cost(-1, 4, C)

    @given(st.integers(2, 200), st.integers(2, 200))
    def test_property_l2_beats_l1_when_m_at_most_n(self, m, n):
        """The paper's claim: with C_search > C_fixed and M <= N, L2 is
        cheaper than L1."""
        if m > n:
            m, n = n, m
        assert formulas.l2_execution_cost(m, C) < \
            formulas.l1_execution_cost(n, C)


class TestGroupFormulas:
    def test_pure_search_message_cost(self):
        assert formulas.pure_search_message_cost(5, C) == 4 * 20.0

    def test_always_inform_costs(self):
        assert formulas.always_inform_message_cost(5, C) == 4 * 11.0
        assert formulas.always_inform_total_cost(5, 10, 5, C) == \
            15 * 44.0
        assert formulas.always_inform_effective_cost(5, 2.0, C) == \
            3 * 44.0

    def test_location_view_message_cost(self):
        # (3-1)*1 + 5*5 = 27.
        assert formulas.location_view_message_cost(3, 5, C) == 27.0

    def test_location_view_update_bound(self):
        assert formulas.location_view_update_cost_bound(4, C) == 7.0

    def test_location_view_total_bound_consistent_with_effective(self):
        total = formulas.location_view_total_cost_bound(
            lv_max=3, g=5, f=0.5, mob=20, msg=10, c=C
        )
        effective = formulas.location_view_effective_cost_bound(
            lv_max=3, g=5, f=0.5, mob_to_msg_ratio=2.0, c=C
        )
        assert total == pytest.approx(effective * 10)

    def test_view_size_constraint_enforced(self):
        with pytest.raises(ConfigurationError):
            formulas.location_view_message_cost(6, 5, C)

    @given(
        g=st.integers(2, 50),
        ratio=st.floats(0.0, 100.0),
    )
    def test_property_pure_search_is_mobility_independent(self, g, ratio):
        base = formulas.pure_search_message_cost(g, C)
        assert base == formulas.pure_search_message_cost(g, C)
        # Always-inform grows with the ratio; pure search does not.
        ai = formulas.always_inform_effective_cost(g, ratio, C)
        assert ai >= formulas.always_inform_effective_cost(g, 0.0, C)

    @given(
        g=st.integers(2, 50),
        f=st.floats(0.0, 1.0),
        ratio=st.floats(0.0, 50.0),
    )
    def test_property_location_view_depends_only_on_significant(
        self, g, f, ratio
    ):
        """Scaling mobility while scaling f down in proportion leaves
        the LV effective bound unchanged (it depends only on f*ratio)."""
        lv = g  # worst case: one member per cell
        a = formulas.location_view_effective_cost_bound(lv, g, f, ratio, C)
        if f > 0 and ratio > 0:
            b = formulas.location_view_effective_cost_bound(
                lv, g, f / 2, ratio * 2, C
            )
            assert a == pytest.approx(b)


class TestComparisons:
    def test_l1_vs_l2_winner(self):
        comparison = comparisons.l1_vs_l2(n_mh=20, n_mss=5, c=C)
        assert comparison.winner == "L2"
        assert comparison.factor > 1.0

    def test_r1_vs_r2_sparse_requests(self):
        comparison = comparisons.r1_vs_r2(n_mh=20, n_mss=5, k=1, c=C)
        assert comparison.winner == "R2"

    def test_r1_vs_r2_crossover(self):
        k_star = comparisons.r1_r2_crossover_k(20, 5, C)
        below = comparisons.r1_vs_r2(20, 5, int(k_star) - 1, C)
        above = comparisons.r1_vs_r2(20, 5, int(k_star) + 2, C)
        assert below.winner == "R2"
        assert above.winner == "R1"

    def test_group_strategy_cost_table(self):
        table = comparisons.group_strategy_costs(
            g=10, lv_max=3, f=0.2, mob_to_msg_ratio=1.0, c=C
        )
        assert set(table) == {
            "pure_search", "always_inform", "location_view"
        }
        # Clustered, moderately mobile group: location view wins.
        assert table["location_view"] < table["pure_search"]
        assert table["location_view"] < table["always_inform"]

    def test_always_inform_crossover_ratio(self):
        threshold = comparisons.always_inform_vs_pure_search_ratio(C)
        g = 8
        cheap = formulas.always_inform_effective_cost(
            g, threshold * 0.9, C
        )
        costly = formulas.always_inform_effective_cost(
            g, threshold * 1.1, C
        )
        ps = formulas.pure_search_message_cost(g, C)
        assert cheap < ps < costly

    def test_static_factor(self):
        assert comparisons.static_network_message_factor(10, 2) == 5.0

    def test_tie_and_zero_factor(self):
        comparison = comparisons.Comparison("a", "b", 3.0, 3.0)
        assert comparison.winner == "tie"
        zero = comparisons.Comparison("a", "b", 0.0, 1.0)
        assert zero.factor == float("inf")
