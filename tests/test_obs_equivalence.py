"""Batched-vs-per-event equivalence: the tentpole's correctness gate.

``monitor_mode="batched"`` must preserve per-event semantics exactly
(ROADMAP item 3): the same violations with the same attribution, the
same monitor reports, the same health gauge series.  These tests pin
that equivalence on the canonical loaded-system workload and on the
certified chaos pack across the certification seeds (7/19/42), the
acceptance criteria of the batched observability pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro.facade import Simulation
from repro.monitor import MonitorHub, default_monitors
from repro.mutex import CriticalResource, L2Mutex
from repro.scenario import builtin_registry, run_scenario
from repro.trace.events import TraceEvent
from repro.workload import MutexWorkload

SEEDS = (7, 19, 42)


def _scrub(report):
    """Drop the only field allowed to differ between modes."""
    report = dict(report)
    report.pop("wall_time_s", None)
    return report


def _loaded_run(monitor_mode: str, seed: int = 3):
    sim = Simulation(n_mss=4, n_mh=16, seed=seed, monitors=True,
                     monitor_mode=monitor_mode)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=0.3)
    workload = MutexWorkload(sim.network, mutex, sim.mh_ids,
                             request_rate=0.05,
                             rng=random.Random(seed + 1))
    mobility_rng = random.Random(seed + 2)
    from repro.mobility import UniformMobility

    mobility = UniformMobility(sim.network, sim.mh_ids, 0.02,
                               rng=mobility_rng)
    sim.run(until=600.0)
    workload.stop()
    mobility.stop()
    sim.drain()
    sim.monitor_hub.finalize()
    return sim


class TestCanonicalEquivalence:
    def test_loaded_system_reports_match(self):
        event = _loaded_run("event")
        batched = _loaded_run("batched")
        assert event.monitor_hub.report() == batched.monitor_hub.report()
        assert event.scheduler.events_processed == \
            batched.scheduler.events_processed

    def test_loaded_system_health_series_match(self):
        """Sample times and every exact counter are identical; only
        the instantaneous ground-truth gauges (scheduler depth, cell
        load) are read at drain time instead of emit time, a staleness
        bounded by the drain quantum (docs/observability.md)."""
        from repro.monitor.health import HealthMonitor

        event = _loaded_run("event")
        batched = _loaded_run("batched")
        h_event = event.monitor_hub.monitor(HealthMonitor).samples
        h_batched = batched.monitor_hub.monitor(HealthMonitor).samples
        assert len(h_event) == len(h_batched)
        drain_time_gauges = {
            "pending_events", "events_processed", "mss_load",
        }
        for sample_e, sample_b in zip(h_event, h_batched):
            exact_e = {k: v for k, v in sample_e.items()
                       if k not in drain_time_gauges}
            exact_b = {k: v for k, v in sample_b.items()
                       if k not in drain_time_gauges}
            assert exact_e == exact_b

    def test_violation_attribution_matches(self):
        """Induced violations carry identical time/scope/detail in
        both modes (the batched replay must not re-time or re-order
        the offending events)."""

        def feed(hub):
            hub.scheduler = type("S", (), {"now": 0.0})()
            # Out-of-order FIFO parents on an MSS-MSS channel.
            for i, (parent, t) in enumerate([(5, 1.0), (3, 2.0)]):
                hub.scheduler.now = t
                hub.emit("recv", scope="test", src="mss-0",
                         dst="mss-1", parent=parent, kind="l2.request")
            hub.finalize()
            return [str(v) for m in hub.monitors for v in m.violations]

        per_event = feed(MonitorHub(None, default_monitors()))
        batched = feed(MonitorHub(None, default_monitors(), batch=True))
        assert per_event == batched
        assert per_event  # the scenario above must actually violate

    def test_trace_ids_match(self):
        """Event ids allocated by the batched appenders line up with
        per-event mode (senders stamp them into message.trace_id)."""
        event = _loaded_run("event")
        batched = _loaded_run("batched")
        assert event.monitor_hub._next_id == batched.monitor_hub._next_id


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_pack_equivalence(seed):
    """Every certified chaos scenario produces an identical report
    (monitors, health series, costs, messages) under both dispatch
    modes, for each certification seed."""
    registry = builtin_registry()
    for name in sorted(registry.names()):
        spec = registry.get(name)
        event = run_scenario(spec, seed=seed, monitor_mode="event")
        batched = run_scenario(spec, seed=seed, monitor_mode="batched")
        assert _scrub(event.report) == _scrub(batched.report), (
            f"{name} seed={seed} diverges between monitor modes"
        )
        assert event.events == batched.events


def test_record_mode_keeps_full_trace():
    """record=True (tracing) still captures every event in batched
    mode, in emission order, so exports stay byte-identical."""
    hub_e = MonitorHub(None, default_monitors(), record=True)
    hub_b = MonitorHub(None, default_monitors(), record=True, batch=True)
    for hub in (hub_e, hub_b):
        hub.scheduler = type("S", (), {"now": 0.0})()
        for i in range(5):
            hub.scheduler.now = float(i)
            hub.emit("send.fixed", scope="t", src="mss-0", dst="mss-1",
                     kind="l2.request")
        hub.drain_batches()
    assert len(hub_e.events) == len(hub_b.events) == 5
    for a, b in zip(hub_e.events, hub_b.events):
        assert isinstance(a, TraceEvent) and isinstance(b, TraceEvent)
        assert (a.id, a.time, a.etype) == (b.id, b.time, b.etype)
