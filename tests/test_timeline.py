"""Tests for the time-resolved metrics collector."""

from __future__ import annotations

import pytest

from repro import CostModel, CriticalResource, L2Mutex, Simulation
from repro.errors import ConfigurationError
from repro.metrics.timeline import TimelineCollector
from repro.sim import Scheduler

COSTS = CostModel(c_fixed=1.0, c_wireless=5.0, c_search=10.0)


def make_collector():
    sched = Scheduler()
    return sched, TimelineCollector(sched)


def test_events_are_timestamped():
    sched, collector = make_collector()
    sched.schedule(2.0, collector.record_fixed, "a")
    sched.schedule(5.0, collector.record_search, "a")
    sched.drain()
    assert [(e.time, e.category.value) for e in collector.events] == [
        (2.0, "fixed"), (5.0, "search"),
    ]


def test_totals_still_work_like_base_collector():
    sched, collector = make_collector()
    collector.record_fixed("x")
    collector.record_wireless_tx("mh-0", "x")
    assert collector.cost(COSTS) == 6.0
    assert collector.energy("mh-0") == 1


def test_cumulative_cost_series():
    sched, collector = make_collector()
    sched.schedule(1.0, collector.record_fixed, "a")
    sched.schedule(2.0, collector.record_search, "a")
    sched.schedule(3.0, collector.record_fixed, "b")
    sched.drain()
    series = collector.cumulative_cost(COSTS)
    assert series == [(1.0, 1.0), (2.0, 11.0), (3.0, 12.0)]
    scoped = collector.cumulative_cost(COSTS, scope="a")
    assert scoped == [(1.0, 1.0), (2.0, 11.0)]


def test_bucketed_cost():
    sched, collector = make_collector()
    for t in (0.5, 1.5, 10.5, 11.0):
        sched.schedule(t, collector.record_fixed, "a")
    sched.drain()
    buckets = collector.bucketed_cost(COSTS, bucket=10.0)
    assert buckets == [(0.0, 2.0), (10.0, 2.0)]


def test_bucket_edges_are_half_open_on_the_right():
    # An event at exactly t = k*bucket belongs to bucket k, not k-1.
    sched, collector = make_collector()
    for t in (0.0, 10.0, 20.0):
        sched.schedule(t, collector.record_fixed, "a")
    sched.drain()
    buckets = collector.bucketed_cost(COSTS, bucket=10.0)
    assert buckets == [(0.0, 1.0), (10.0, 1.0), (20.0, 1.0)]


def test_bucketed_cost_skips_empty_buckets():
    sched, collector = make_collector()
    sched.schedule(0.5, collector.record_fixed, "a")
    sched.schedule(35.0, collector.record_fixed, "a")
    sched.drain()
    assert collector.bucketed_cost(COSTS, bucket=10.0) == [
        (0.0, 1.0), (30.0, 1.0),
    ]


def test_bucket_must_be_positive():
    sched, collector = make_collector()
    with pytest.raises(ConfigurationError):
        collector.bucketed_cost(COSTS, bucket=0.0)


def test_cost_between():
    sched, collector = make_collector()
    for t in (1.0, 2.0, 3.0, 4.0):
        sched.schedule(t, collector.record_fixed, "a")
    sched.drain()
    assert collector.cost_between(COSTS, 2.0, 4.0) == 2.0
    assert collector.cost_between(COSTS, 0.0, 10.0) == 4.0
    with pytest.raises(ConfigurationError):
        collector.cost_between(COSTS, 5.0, 1.0)


def test_cost_between_includes_start_excludes_end():
    # [start, end): an event exactly at start counts, one exactly at
    # end does not -- so adjacent windows tile without double counting.
    sched, collector = make_collector()
    for t in (1.0, 2.0, 3.0):
        sched.schedule(t, collector.record_fixed, "a")
    sched.drain()
    assert collector.cost_between(COSTS, 1.0, 2.0) == 1.0
    assert collector.cost_between(COSTS, 2.0, 3.0) == 1.0
    assert collector.cost_between(COSTS, 3.0, 3.0) == 0.0
    assert (
        collector.cost_between(COSTS, 1.0, 2.0)
        + collector.cost_between(COSTS, 2.0, 4.0)
        == collector.cost_between(COSTS, 1.0, 4.0)
    )


def test_scopes_over_time():
    sched, collector = make_collector()
    sched.schedule(0.5, collector.record_fixed, "a")
    sched.schedule(12.0, collector.record_fixed, "b")
    sched.schedule(13.0, collector.record_search_probe, "b", 3)
    sched.drain()
    rows = collector.scopes_over_time(bucket=10.0)
    assert rows["a"] == [1, 0]
    assert rows["b"] == [0, 4]


def test_simulation_timeline_flag():
    sim = Simulation(n_mss=4, n_mh=4, seed=1, timeline=True)
    assert isinstance(sim.metrics, TimelineCollector)
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource)
    mutex.request("mh-0")
    sim.drain()
    curve = sim.metrics.cumulative_cost(sim.cost_model, scope="L2")
    assert curve
    # Monotone nondecreasing cumulative cost; final point equals total.
    values = [cost for (_, cost) in curve]
    assert values == sorted(values)
    assert values[-1] == sim.cost("L2")


def test_timeline_off_by_default():
    sim = Simulation(n_mss=2, n_mh=1, seed=1)
    assert not isinstance(sim.metrics, TimelineCollector)
