"""Mutation tests: every safety monitor must catch its seeded bug.

Each test pairs a deliberately broken protocol variant (the *mutant*)
with the correct implementation on the same workload and asserts that
the corresponding invariant monitor fires for the mutant and stays
silent for the correct protocol.  This is the acceptance bar for the
monitoring layer: a monitor that never fires is untested code, and a
monitor that fires on correct runs is a false-positive machine.

The mutants live here, not in the library: they subclass the real
protocols and override exactly one decision point (grant scheduling,
eligibility, dedup, ...), so the monitors are exercised against the
real event stream, not synthetic events.
"""

from __future__ import annotations

import pytest

from repro import Simulation
from repro.errors import ProtocolError
from repro.faults import FaultPlan, LinkFault
from repro.groups.location_view import LocationViewGroup
from repro.monitor import (
    LivenessMonitor,
    LocationViewMonitor,
    default_monitors,
    replay_events,
)
from repro.mutex import CriticalResource, L2Mutex, R2Mutex, R2Variant
from repro.mutex.r2 import RingGrantPayload
from repro.mutex.ring_core import Token
from repro.net.messages import Message
from repro.net.reliable import KIND_ACK, RelAck, ReliableTransport


def finalized_invariants(sim):
    """The set of violated invariant ids after finalizing the hub."""
    sim.monitor_hub.finalize()
    return {v.invariant for v in sim.monitor_hub.violations}


# ---------------------------------------------------------------------
# mutex.exclusivity -- overlapping grants
# ---------------------------------------------------------------------

class TolerantResource(CriticalResource):
    """Lets a deliberately broken protocol keep running so the monitor,
    not the in-process oracle, is what catches the overlap."""

    def leave(self, holder):
        if self.holder != holder:
            self.holder = holder
        super().leave(holder)


class OverlappingR2(R2Mutex):
    """Mutant: grants the token to every queued MH at once."""

    def _service_next(self, mss_id):
        if mss_id not in self._tokens:
            return
        queue = self._grant_queues[mss_id]
        token = self._tokens[mss_id]
        if not queue:
            return super()._service_next(mss_id)
        while queue:
            request = queue.pop(0)
            self.network.mss(mss_id).send_to_mh(
                request.mh_id,
                f"{self.scope}.grant",
                RingGrantPayload(
                    request.mh_id, mss_id, token.token_val, token.epoch
                ),
                self.scope,
            )


def run_overlap(cls, **sim_kwargs):
    sim = Simulation(n_mss=2, n_mh=2, seed=1, placement="single_cell",
                     monitors=True, **sim_kwargs)
    resource = TolerantResource(sim.scheduler, raise_on_violation=False)
    mutex = cls(sim.network, resource, cs_duration=1.0, scope="R2",
                max_traversals=2, fault_tolerant=True)
    mutex.request("mh-0")
    mutex.request("mh-1")
    mutex.start()
    sim.drain()
    return sim


def test_overlapping_grants_trip_the_exclusivity_monitor():
    invariants = finalized_invariants(run_overlap(OverlappingR2))
    assert "mutex.exclusivity" in invariants
    assert "mutex.exit_mismatch" in invariants


def test_correct_r2_keeps_the_exclusivity_monitor_silent():
    assert finalized_invariants(run_overlap(R2Mutex)) == set()


# ---------------------------------------------------------------------
# token.uniqueness -- a rogue second token
# ---------------------------------------------------------------------

def run_ring(inject_rogue_token):
    sim = Simulation(n_mss=3, n_mh=2, seed=1, monitors=True)
    resource = CriticalResource(sim.scheduler, raise_on_violation=False)
    mutex = R2Mutex(sim.network, resource, cs_duration=1.0, scope="R2",
                    max_traversals=3)
    mutex.request("mh-0")
    mutex.start()
    if inject_rogue_token:
        sim.scheduler.schedule(
            0.5, lambda: mutex.node("mss-2").inject_token(Token(token_val=1))
        )
    try:
        sim.drain()
    except ProtocolError:
        # Two tokens colliding at one node is itself a protocol error;
        # the monitor must have flagged the split-brain before that.
        pass
    return sim


def test_rogue_token_trips_the_uniqueness_monitor():
    assert "token.uniqueness" in finalized_invariants(run_ring(True))


def test_single_token_keeps_the_uniqueness_monitor_silent():
    assert finalized_invariants(run_ring(False)) == set()


# ---------------------------------------------------------------------
# ring.fairness -- a lying MH double-dips in one traversal (R2')
# ---------------------------------------------------------------------

def run_fairness_dance(cls=R2Mutex, malicious=False,
                       variant=R2Variant.COUNTER, scope="R2'"):
    """The paper's Section 3.4 attack: after its first access, mh-0
    moves to the next MSS on the ring and immediately asks again.  An
    honest MH reports its access count and is deferred to the next
    traversal; a malicious one reports 0 and is served twice at the
    same token_val."""
    sim = Simulation(n_mss=3, n_mh=2, seed=3, placement="single_cell",
                     monitors=True)
    resource = CriticalResource(sim.scheduler)
    mutex = cls(sim.network, resource, cs_duration=1.0, variant=variant,
                scope=scope, max_traversals=4)
    if malicious:
        mutex.malicious_mhs.add("mh-0")
    state = {"moved": False}

    def ask_again():
        mutex.request("mh-0")

    def on_done(mh_id):
        if mh_id == "mh-0" and not state["moved"]:
            state["moved"] = True
            sim.mh(0).add_attach_listener(ask_again)
            sim.mh(0).move_to("mss-1")

    mutex.on_complete = on_done
    mutex.request("mh-0")
    mutex.request("mh-1")
    mutex.start()
    sim.drain()
    return sim


def test_malicious_mh_trips_the_fairness_monitor():
    sim = run_fairness_dance(malicious=True)
    sim.monitor_hub.finalize()
    fairness = [v for v in sim.monitor_hub.violations
                if v.invariant == "ring.fairness"]
    assert fairness, "double service in one traversal went unflagged"
    assert fairness[0].detail["mh"] == "mh-0"


def test_honest_mh_keeps_the_fairness_monitor_silent():
    assert finalized_invariants(run_fairness_dance(malicious=False)) == set()


# ---------------------------------------------------------------------
# token_list.regrant -- R2'' without the membership check
# ---------------------------------------------------------------------

class GreedyR2(R2Mutex):
    """Mutant: ignores the token_list membership rule entirely."""

    def _eligible(self, mss_id, request, token):
        return True


def test_greedy_r2pp_trips_the_token_list_monitor():
    sim = run_fairness_dance(cls=GreedyR2, malicious=False,
                             variant=R2Variant.TOKEN_LIST, scope="R2''")
    invariants = finalized_invariants(sim)
    assert "token_list.regrant" in invariants


def test_correct_r2pp_keeps_the_token_list_monitor_silent():
    sim = run_fairness_dance(malicious=False,
                             variant=R2Variant.TOKEN_LIST, scope="R2''")
    assert finalized_invariants(sim) == set()


# ---------------------------------------------------------------------
# channel.fifo / reliable.exactly_once -- duplicating links
# ---------------------------------------------------------------------

def ping_traffic(sim, n=4):
    sim.network.mss("mss-1").register_handler("ping", lambda m: None)
    for i in range(n):
        sim.scheduler.schedule(
            float(i),
            lambda i=i: sim.network.send_fixed(
                Message(kind="ping", src="mss-0", dst="mss-1",
                        payload={"i": i}, scope="demo")
            ),
        )


def run_duplicating_link(reliable, **sim_kwargs):
    plan = FaultPlan(link_faults=(LinkFault(duplicate=1.0),),
                     reliable=reliable, seed=4)
    sim = Simulation(n_mss=3, n_mh=2, seed=4, fault_plan=plan,
                     monitors=True, **sim_kwargs)
    ping_traffic(sim)
    sim.drain()
    return sim


def test_duplicating_link_trips_the_fifo_monitor():
    assert "channel.fifo" in finalized_invariants(run_duplicating_link(False))


def test_reliable_transport_masks_the_duplicating_link():
    assert finalized_invariants(run_duplicating_link(True)) == set()


# ---------------------------------------------------------------------
# sampled hub at rate 1.0 -- mutation-equivalent to the full hub
# ---------------------------------------------------------------------

def test_sampled_hub_rate_one_catches_the_overlap_mutant():
    """At sample rate 1.0 the gated dispatch must degrade to the full
    hub: the seeded exclusivity bug is still caught."""
    invariants = finalized_invariants(
        run_overlap(OverlappingR2, monitor_sampling=1.0))
    assert "mutex.exclusivity" in invariants
    assert "mutex.exit_mismatch" in invariants


def test_sampled_hub_rate_one_stays_silent_on_correct_r2():
    assert finalized_invariants(
        run_overlap(R2Mutex, monitor_sampling=1.0)) == set()


def test_sampled_hub_rate_one_catches_the_duplicating_link():
    invariants = finalized_invariants(
        run_duplicating_link(False, monitor_sampling=1.0))
    assert "channel.fifo" in invariants


def test_sampled_hub_aggressive_rate_still_catches_exact_invariants():
    """Exclusivity is an *exact* monitor (``samplable = False``): the
    compiler marks its event types must-deliver, so even an
    aggressively sampled hub (rate 0.01) cannot miss the seeded bug.
    (Samplable monitors such as fifo-order may legitimately miss
    violations under sampling -- that is the documented trade.)"""
    assert "mutex.exclusivity" in finalized_invariants(
        run_overlap(OverlappingR2, monitor_sampling=0.01))


class LeakyReliable(ReliableTransport):
    """Mutant: acks and delivers as-is -- no dedup, no reorder buffer."""

    def _on_data(self, message):
        data = message.payload
        self.network._send_fixed_raw(Message(
            kind=KIND_ACK, src=message.dst, dst=message.src,
            payload=RelAck(seq=data.seq), scope=message.scope))
        self._deliver(message.dst, data.inner)


def run_manual_reliable(cls):
    plan = FaultPlan(link_faults=(LinkFault(duplicate=1.0),),
                     reliable=False, seed=4)
    sim = Simulation(n_mss=3, n_mh=2, seed=4, fault_plan=plan,
                     monitors=True)
    rel = cls(sim.network)
    sim.network.reliable = rel
    rel.install()
    ping_traffic(sim)
    sim.drain()
    return sim


def test_leaky_transport_trips_the_exactly_once_monitor():
    invariants = finalized_invariants(run_manual_reliable(LeakyReliable))
    assert "reliable.exactly_once" in invariants


def test_correct_transport_keeps_the_exactly_once_monitor_silent():
    assert finalized_invariants(run_manual_reliable(ReliableTransport)) == set()


# ---------------------------------------------------------------------
# handoff.* -- losing handoff events from a recorded move
# ---------------------------------------------------------------------

def recorded_moves():
    sim = Simulation(n_mss=3, n_mh=2, seed=2, trace=True)
    sim.mh(0).move_to("mss-1")
    sim.run(until=5.0)
    sim.mh(0).move_to("mss-2")
    sim.drain()
    return sim, sim.tracer.events


def test_intact_handoff_trace_replays_clean():
    sim, events = recorded_moves()
    hub = replay_events(events, default_monitors(), network=sim.network)
    assert hub.ok, hub.report()


def test_dropped_join_is_a_lost_mh():
    sim, events = recorded_moves()
    last_join = [e for e in events if e.etype == "mh.join"][-1]
    hub = replay_events([e for e in events if e is not last_join],
                        default_monitors(), network=sim.network)
    invariants = {v.invariant for v in hub.violations}
    assert "handoff.lost_in_transit" in invariants


def test_dropped_leave_breaks_the_lifecycle():
    sim, events = recorded_moves()
    last_leave = [e for e in events if e.etype == "mh.leave"][-1]
    hub = replay_events([e for e in events if e is not last_leave],
                        default_monitors(), network=sim.network)
    invariants = {v.invariant for v in hub.violations}
    assert "handoff.lifecycle" in invariants


# ---------------------------------------------------------------------
# lv.* -- tampering with a location view copy
# ---------------------------------------------------------------------

def run_location_view(tamper):
    sim = Simulation(n_mss=4, n_mh=4, seed=5,
                     monitors=[LocationViewMonitor()])
    group = LocationViewGroup(sim.network, sim.mh_ids, scope="g")
    sim.monitor_hub.monitor(LocationViewMonitor).watch(group)
    group.send("mh-0", payload="x")
    sim.run(until=5.0)
    sim.mh(1).move_to("mss-3")
    sim.drain()
    if tamper:
        group.view_copies[group.coordinator_mss_id].discard(
            sim.network.mobile_host("mh-1").current_mss_id)
    return sim


def test_tampered_view_copy_trips_the_location_view_monitor():
    invariants = finalized_invariants(run_location_view(True))
    assert "lv.coverage" in invariants
    assert "lv.copy_divergence" in invariants


def test_consistent_views_keep_the_location_view_monitor_silent():
    assert finalized_invariants(run_location_view(False)) == set()


# ---------------------------------------------------------------------
# liveness.* -- a ring that never starts, and one that stalls
# ---------------------------------------------------------------------

def test_unserved_request_is_flagged_at_finalize():
    sim = Simulation(n_mss=3, n_mh=2, seed=1,
                     monitors=[LivenessMonitor(request_deadline=5.0,
                                               token_deadline=5.0)])
    resource = CriticalResource(sim.scheduler)
    mutex = R2Mutex(sim.network, resource, cs_duration=1.0, scope="R2")
    mutex.request("mh-0")  # the ring is never start()ed: no token, ever
    sim.drain()
    invariants = finalized_invariants(sim)
    assert "liveness.request_unserved" in invariants


def test_served_request_keeps_the_liveness_monitor_silent():
    sim = Simulation(n_mss=3, n_mh=2, seed=1,
                     monitors=[LivenessMonitor(request_deadline=5.0,
                                               token_deadline=5.0)])
    resource = CriticalResource(sim.scheduler)
    mutex = L2Mutex(sim.network, resource, cs_duration=1.0, scope="L2")
    mutex.request("mh-0")
    sim.drain()
    assert finalized_invariants(sim) == set()


def test_online_deadlines_fire_during_a_stalled_run():
    """Replay the crash-recovery walkthrough under watchdog deadlines
    far tighter than its recovery time: the request-age and
    token-starvation alarms must fire *online* (with event timestamps),
    not just at finalize."""
    from repro.trace.scenarios import run_scenario

    run = run_scenario("r2_crash_recovery")
    monitor = LivenessMonitor(request_deadline=8.0, token_deadline=8.0,
                              stall_gap=1e9)
    replay_events(run.events, [monitor], network=run.sim.network,
                  finalize=False)
    invariants = {v.invariant for v in monitor.violations}
    assert "liveness.request_age" in invariants
    assert "liveness.token_starvation" in invariants
