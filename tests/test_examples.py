"""Smoke tests: every shipped example runs to completion.

Each example is executed in-process (``runpy``) with stdout captured;
the examples contain their own assertions (safety checks, exactly-once
verification), so a clean exit is a meaningful signal.
"""

from __future__ import annotations

import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    captured = io.StringIO()
    original = sys.stdout
    sys.stdout = captured
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.stdout = original
    return captured.getvalue()


def test_all_examples_discovered():
    assert len(EXAMPLES) >= 9
    assert "quickstart.py" in EXAMPLES
    assert "monitoring_demo.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_quickstart_reports_verified_safety():
    output = run_example("quickstart.py")
    assert "verified" in output


def test_mutex_comparison_matches_predictions():
    output = run_example("mutex_comparison.py")
    # Every measured/predicted pair in the table is printed equal; spot
    # check the L1 row.
    line = next(l for l in output.splitlines() if l.startswith("L1"))
    fields = line.split()
    assert fields[4] == fields[5]  # measured == predicted


def test_newsfeed_is_exactly_once():
    output = run_example("field_team_newsfeed.py")
    assert "exactly-once in order: True" in output
    assert "False" not in output


def test_monitoring_demo_catches_the_fairness_violation_live():
    output = run_example("monitoring_demo.py")
    assert "all invariants held" in output
    assert "CAUGHT ring-fairness" in output
    assert "ring.fairness" in output
    assert "repro_invariant_violations 1" in output
